#!/bin/sh
# Tier-1 CI: formatting, release build, full test suite. Fully offline —
# the workspace has zero external dependencies (see Cargo.lock: workspace
# members only), so no registry access is ever needed.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo test -q --release -p pata-core --lib (fingerprint cross-check)"
# The forked-diamond fingerprint tests compare the incremental accumulators
# against the slow fold with `verify_fp` — run them in release too, where
# debug_assert-based checking is compiled out.
cargo test -q --release -p pata-core --lib

echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== telemetry overhead bench (smoke)"
cargo bench -p pata-bench --bench telemetry_overhead -- --smoke

echo "== exploration reuse + copy-on-write fork bench (smoke)"
# Enforces both stage-1 gates: caches cut live DFS steps by ≥30%, and
# copy-on-write forking delivers ≥2x the live-step throughput of the
# clone-based baseline — with report byte-identity asserted across caches
# on/off, cow on/off, and threads 1/2/4.
cargo bench -p pata-bench --bench exploration -- --smoke

echo "== persistence bench (smoke)"
cargo bench -p pata-bench --bench persistence -- --smoke

echo "== stage-1 bench summary (results/BENCH_stage1.json)"
# The smoke benches above just rewrote their sections; print the headline
# per-stage numbers on one line each.
grep -E '"(exploration|persistence)":' results/BENCH_stage1.json \
    || { echo "BENCH_stage1.json missing expected sections"; exit 1; }

echo "== stage timing summary"
# One-line per-stage wall-clock breakdown from the --stats-json telemetry
# snapshot of an end-to-end run on a small generated corpus.
tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT
cargo run -q --release --bin pata -- corpus linux --scale 0.05 --seed 7 \
    --out "$tmp_dir/corp" >/dev/null
cargo run -q --release --bin pata -- analyze "$tmp_dir"/corp/*/*.c \
    --stats-json "$tmp_dir/stats.json" >/dev/null
# Each metric serializes on one line: {"name": "stage.X", ..., "total_ns": N, ...}.
stage_ns() {
    grep "\"name\": \"stage.$1\"" "$tmp_dir/stats.json" \
        | sed 's/.*"total_ns": \([0-9]*\).*/\1/' | head -n 1
}
echo "stage timing (ns): collect=$(stage_ns collect) explore=$(stage_ns explore) filter=$(stage_ns filter)"

echo "== serve round-trip (smoke)"
# Start a daemon on a unix socket, analyze the generated corpus, touch one
# corpus function (a new file with one new root), re-analyze, and check
# that only the touched root was re-explored. Then shut the daemon down
# cleanly through the client.
sock="$tmp_dir/pata.sock"
cargo run -q --release --bin pata -- serve --socket "$sock" \
    --store "$tmp_dir/serve-store.json" &
serve_pid=$!
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    [ -S "$sock" ] && break
    sleep 0.25
done
[ -S "$sock" ] || { echo "serve: socket never appeared"; exit 1; }
first=$(cargo run -q --release --bin pata -- client --socket "$sock" \
    "$tmp_dir"/corp/*/*.c)
echo "$first" | grep -q '"ok": true' \
    || { echo "serve: first analyze failed"; exit 1; }
echo "$first" | grep -q '"clean_roots": 0' \
    || { echo "serve: first analyze was not cold"; exit 1; }
printf 'int ci_edit_probe(int *p) { if (p == NULL) { } return *p; }\n' \
    > "$tmp_dir/ci_edit.c"
second=$(cargo run -q --release --bin pata -- client --socket "$sock" \
    "$tmp_dir"/corp/*/*.c "$tmp_dir/ci_edit.c")
echo "$second" | grep -q '"ok": true' \
    || { echo "serve: second analyze failed"; exit 1; }
echo "$second" | grep -q '"dirty_roots": 1,' \
    || { echo "serve: edit must dirty exactly one root"; exit 1; }
echo "$second" | grep -q '"changed_functions": 1,' \
    || { echo "serve: edit must change exactly one function"; exit 1; }
cargo run -q --release --bin pata -- client --socket "$sock" --op shutdown \
    >/dev/null
wait "$serve_pid" || { echo "serve: daemon exited non-zero"; exit 1; }
echo "serve round-trip OK (second request re-explored 1 root)"

echo "== fault-injection smoke matrix"
# Inject a panic, a validation panic, a deadline trip, and a store IO
# error at named sites. Every run must exit zero and report the fault in
# the degraded section; degraded reports must be byte-identical across
# thread counts for a fixed plan.
printf 'int ci_fault_probe(int *p) { if (p == NULL) { } return *p; }\n' \
    > "$tmp_dir/ci_fault.c"
fault_case() {
    plan=$1
    action=$2
    # stderr silenced: contained panics still run the default panic hook,
    # and the injected backtraces would drown the CI log.
    out=$(cargo run -q --release --bin pata -- analyze "$tmp_dir/ci_fault.c" \
        --json --fault-plan "$plan" 2>/dev/null) \
        || { echo "fault smoke: --fault-plan $plan exited non-zero"; exit 1; }
    echo "$out" | grep -q '"degraded"' \
        || { echo "fault smoke: $plan produced no degraded section"; exit 1; }
    echo "$out" | grep -q "\"action\": \"$action\"" \
        || { echo "fault smoke: $plan must record action=$action"; exit 1; }
}
fault_case 'explore@1,seed=1' quarantined
fault_case 'checker@1,seed=2' quarantined
fault_case 'validate@1,seed=3' quarantined
fault_case 'deadline@1,seed=4' demoted
fault_case 'live_bytes@1,seed=5' demoted
one=$(cargo run -q --release --bin pata -- analyze "$tmp_dir/ci_fault.c" \
    --json --threads 1 --fault-plan 'explore@1,seed=1' 2>/dev/null)
four=$(cargo run -q --release --bin pata -- analyze "$tmp_dir/ci_fault.c" \
    --json --threads 4 --fault-plan 'explore@1,seed=1' 2>/dev/null)
[ "$one" = "$four" ] \
    || { echo "fault smoke: degraded report differs across threads"; exit 1; }
# A store IO error degrades to a cold start: the run still succeeds, the
# store file is simply absent; a later run without the fault saves it.
cargo run -q --release --bin pata -- analyze "$tmp_dir/ci_fault.c" --json \
    --store "$tmp_dir/fault-store.json" --fault-plan 'store.save@1,seed=6' \
    >/dev/null 2>&1 \
    || { echo "fault smoke: store.save fault must not fail"; exit 1; }
[ ! -e "$tmp_dir/fault-store.json" ] \
    || { echo "fault smoke: failed save must leave no store file"; exit 1; }
cargo run -q --release --bin pata -- analyze "$tmp_dir/ci_fault.c" --json \
    --store "$tmp_dir/fault-store.json" >/dev/null
[ -e "$tmp_dir/fault-store.json" ] \
    || { echo "fault smoke: clean run must save the store"; exit 1; }
echo "fault-injection smoke matrix OK"

echo "== serve stress round-trip (concurrent clients, malformed + oversized frames)"
# Drive the daemon through the already-built binary: concurrent
# `cargo run`s would serialize on cargo's build lock and the clients
# would never actually overlap.
pata_bin="$PWD/target/release/pata"
sock2="$tmp_dir/pata-stress.sock"
"$pata_bin" serve --socket "$sock2" --max-request-bytes 65536 &
stress_pid=$!
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    [ -S "$sock2" ] && break
    sleep 0.25
done
[ -S "$sock2" ] || { echo "stress: socket never appeared"; exit 1; }
stress_client() {
    "$pata_bin" client --socket "$sock2" "$@"
}
pids=""
for i in 1 2 3 4; do
    stress_client "$tmp_dir/ci_fault.c" > "$tmp_dir/stress_$i.out" &
    pids="$pids $!"
done
for p in $pids; do
    wait "$p" || { echo "stress: concurrent client failed"; exit 1; }
done
for i in 1 2 3 4; do
    grep -q '"ok": true' "$tmp_dir/stress_$i.out" \
        || { echo "stress: client $i got an error response"; exit 1; }
done
# A malformed frame must produce an error response (non-zero client
# exit), not a dead daemon.
if stress_client --raw 'this is not json' > "$tmp_dir/stress_bad.out" 2>&1; then
    echo "stress: malformed frame must exit non-zero"; exit 1
fi
grep -q '"ok": false' "$tmp_dir/stress_bad.out" \
    || { echo "stress: malformed frame must get an error response"; exit 1; }
# An oversized frame is refused at the configured byte limit.
big_frame=$(head -c 70000 /dev/zero | tr '\0' 'x')
if stress_client --raw "$big_frame" > "$tmp_dir/stress_big.out" 2>&1; then
    echo "stress: oversized frame must exit non-zero"; exit 1
fi
grep -q 'byte limit' "$tmp_dir/stress_big.out" \
    || { echo "stress: oversized frame must name the byte limit"; exit 1; }
# The daemon is still answering after both bad frames.
stress_client --op ping > /dev/null \
    || { echo "stress: daemon dead after bad frames"; exit 1; }
stress_client --op shutdown > /dev/null \
    || { echo "stress: shutdown failed"; exit 1; }
wait "$stress_pid" || { echo "stress: daemon exited non-zero"; exit 1; }
echo "serve stress round-trip OK"

echo "CI OK"
