#!/bin/sh
# Tier-1 CI: formatting, release build, full test suite. Fully offline —
# the workspace has zero external dependencies (see Cargo.lock: workspace
# members only), so no registry access is ever needed.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo test -q --release -p pata-core --lib (fingerprint cross-check)"
# The forked-diamond fingerprint tests compare the incremental accumulators
# against the slow fold with `verify_fp` — run them in release too, where
# debug_assert-based checking is compiled out.
cargo test -q --release -p pata-core --lib

echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== telemetry overhead bench (smoke)"
cargo bench -p pata-bench --bench telemetry_overhead -- --smoke

echo "== exploration reuse + copy-on-write fork bench (smoke)"
# Enforces both stage-1 gates: caches cut live DFS steps by ≥30%, and
# copy-on-write forking delivers ≥2x the live-step throughput of the
# clone-based baseline — with report byte-identity asserted across caches
# on/off, cow on/off, and threads 1/2/4.
cargo bench -p pata-bench --bench exploration -- --smoke

echo "== persistence bench (smoke)"
cargo bench -p pata-bench --bench persistence -- --smoke

echo "== stage-1 bench summary (results/BENCH_stage1.json)"
# The smoke benches above just rewrote their sections; print the headline
# per-stage numbers on one line each.
grep -E '"(exploration|persistence)":' results/BENCH_stage1.json \
    || { echo "BENCH_stage1.json missing expected sections"; exit 1; }

echo "== stage timing summary"
# One-line per-stage wall-clock breakdown from the --stats-json telemetry
# snapshot of an end-to-end run on a small generated corpus.
tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT
cargo run -q --release --bin pata -- corpus linux --scale 0.05 --seed 7 \
    --out "$tmp_dir/corp" >/dev/null
cargo run -q --release --bin pata -- analyze "$tmp_dir"/corp/*/*.c \
    --stats-json "$tmp_dir/stats.json" >/dev/null
# Each metric serializes on one line: {"name": "stage.X", ..., "total_ns": N, ...}.
stage_ns() {
    grep "\"name\": \"stage.$1\"" "$tmp_dir/stats.json" \
        | sed 's/.*"total_ns": \([0-9]*\).*/\1/' | head -n 1
}
echo "stage timing (ns): collect=$(stage_ns collect) explore=$(stage_ns explore) filter=$(stage_ns filter)"

echo "== serve round-trip (smoke)"
# Start a daemon on a unix socket, analyze the generated corpus, touch one
# corpus function (a new file with one new root), re-analyze, and check
# that only the touched root was re-explored. Then shut the daemon down
# cleanly through the client.
sock="$tmp_dir/pata.sock"
cargo run -q --release --bin pata -- serve --socket "$sock" \
    --store "$tmp_dir/serve-store.json" &
serve_pid=$!
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    [ -S "$sock" ] && break
    sleep 0.25
done
[ -S "$sock" ] || { echo "serve: socket never appeared"; exit 1; }
first=$(cargo run -q --release --bin pata -- client --socket "$sock" \
    "$tmp_dir"/corp/*/*.c)
echo "$first" | grep -q '"ok": true' \
    || { echo "serve: first analyze failed"; exit 1; }
echo "$first" | grep -q '"clean_roots": 0' \
    || { echo "serve: first analyze was not cold"; exit 1; }
printf 'int ci_edit_probe(int *p) { if (p == NULL) { } return *p; }\n' \
    > "$tmp_dir/ci_edit.c"
second=$(cargo run -q --release --bin pata -- client --socket "$sock" \
    "$tmp_dir"/corp/*/*.c "$tmp_dir/ci_edit.c")
echo "$second" | grep -q '"ok": true' \
    || { echo "serve: second analyze failed"; exit 1; }
echo "$second" | grep -q '"dirty_roots": 1,' \
    || { echo "serve: edit must dirty exactly one root"; exit 1; }
echo "$second" | grep -q '"changed_functions": 1,' \
    || { echo "serve: edit must change exactly one function"; exit 1; }
cargo run -q --release --bin pata -- client --socket "$sock" --op shutdown \
    >/dev/null
wait "$serve_pid" || { echo "serve: daemon exited non-zero"; exit 1; }
echo "serve round-trip OK (second request re-explored 1 root)"

echo "CI OK"
