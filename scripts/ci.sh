#!/bin/sh
# Tier-1 CI: formatting, release build, full test suite. Fully offline —
# the workspace has zero external dependencies (see Cargo.lock: workspace
# members only), so no registry access is ever needed.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== telemetry overhead bench (smoke)"
cargo bench -p pata-bench --bench telemetry_overhead -- --smoke

echo "CI OK"
