#!/bin/sh
# Tier-1 CI: formatting, release build, full test suite. Fully offline —
# the workspace has zero external dependencies (see Cargo.lock: workspace
# members only), so no registry access is ever needed.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== telemetry overhead bench (smoke)"
cargo bench -p pata-bench --bench telemetry_overhead -- --smoke

echo "== exploration reuse bench (smoke)"
cargo bench -p pata-bench --bench exploration -- --smoke

echo "== stage timing summary"
# One-line per-stage wall-clock breakdown from the --stats-json telemetry
# snapshot of an end-to-end run on a small generated corpus.
tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT
cargo run -q --release --bin pata -- corpus linux --scale 0.05 --seed 7 \
    --out "$tmp_dir/corp" >/dev/null
cargo run -q --release --bin pata -- analyze "$tmp_dir"/corp/*/*.c \
    --stats-json "$tmp_dir/stats.json" >/dev/null
# Each metric serializes on one line: {"name": "stage.X", ..., "total_ns": N, ...}.
stage_ns() {
    grep "\"name\": \"stage.$1\"" "$tmp_dir/stats.json" \
        | sed 's/.*"total_ns": \([0-9]*\).*/\1/' | head -n 1
}
echo "stage timing (ns): collect=$(stage_ns collect) explore=$(stage_ns explore) filter=$(stage_ns filter)"

echo "CI OK"
