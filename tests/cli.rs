//! Smoke tests for the `pata` command-line interface.

use std::process::Command;

fn pata() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pata"))
}

fn write_demo(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("demo.c");
    std::fs::write(
        &path,
        r#"
        struct dev { int *res; };
        static int probe(struct dev *d) {
            if (d->res == NULL) { log_warn("x"); }
            return *d->res;
        }
        static struct drv d = { .probe = probe };
        "#,
    )
    .unwrap();
    path
}

#[test]
fn analyze_reports_bug() {
    let dir = std::env::temp_dir().join("pata_cli_analyze");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let out = pata()
        .args(["analyze", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("null-pointer-dereference"), "{stdout}");
    assert!(stdout.contains("probe"));
}

#[test]
fn analyze_json_is_versioned_report() {
    let dir = std::env::temp_dir().join("pata_cli_json");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let out = pata()
        .args(["analyze", file.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The output is the versioned wire format: parse it back through the
    // library, not by string inspection.
    let report = pata::core::Report::from_json(stdout.trim()).expect("valid report document");
    assert_eq!(report.schema_version, pata::core::REPORT_SCHEMA_VERSION);
    assert_eq!(report.reports.len(), 1);
    assert_eq!(report.reports[0].kind.as_str(), "null-pointer-dereference");
    assert_eq!(report.reports[0].function, "probe");
}

#[test]
fn analyze_stats_json_matches_telemetry_schema() {
    let dir = std::env::temp_dir().join("pata_cli_stats_json");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let stats_path = dir.join("stats.json");
    let out = pata()
        .args([
            "analyze",
            file.to_str().unwrap(),
            "--stats-json",
            stats_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&stats_path).unwrap();
    let doc = pata::core::json::JsonValue::parse(&text).expect("valid JSON");
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_u64()),
        Some(u64::from(pata::core::telemetry::TELEMETRY_SCHEMA_VERSION))
    );
    let metrics = doc
        .get("metrics")
        .and_then(|v| v.as_array())
        .expect("metrics array");
    let names: Vec<&str> = metrics
        .iter()
        .filter_map(|m| m.get("name").and_then(|n| n.as_str()))
        .collect();
    for expected in [
        "collect.roots",
        "path.paths",
        "stage.explore",
        "validate.solve",
    ] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
}

#[test]
fn analyze_profile_prints_stage_breakdown() {
    let dir = std::env::temp_dir().join("pata_cli_profile");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let out = pata()
        .args(["analyze", file.to_str().unwrap(), "--profile"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stage breakdown"), "{stderr}");
    assert!(stderr.contains("slowest roots"), "{stderr}");
}

#[test]
fn analyze_checker_selection() {
    let dir = std::env::temp_dir().join("pata_cli_checkers");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    // Only the ML checker: the NPD must not be reported.
    let out = pata()
        .args(["analyze", file.to_str().unwrap(), "--checkers", "ml"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no bugs found"), "{stdout}");
}

#[test]
fn bad_input_fails_cleanly() {
    let out = pata()
        .args(["analyze", "/nonexistent/nope.c"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn unknown_command_usage() {
    let out = pata().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn fsm_lists_all_checkers() {
    let out = pata().args(["fsm"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for abbrev in ["NPD", "UVA", "ML", "DL", "AIU", "DBZ", "UAF"] {
        assert!(stdout.contains(abbrev), "missing {abbrev}: {stdout}");
    }
}

#[test]
fn corpus_writes_files_and_manifest() {
    let dir = std::env::temp_dir().join("pata_cli_corpus");
    let _ = std::fs::remove_dir_all(&dir);
    let out = pata()
        .args([
            "corpus",
            "tencent",
            "--scale",
            "0.15",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(dir.join("manifest.json").exists());
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"bugs\""));
}

#[test]
fn ir_dump_contains_functions() {
    let dir = std::env::temp_dir().join("pata_cli_ir");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let out = pata()
        .args(["ir", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fn probe"));
    assert!(stdout.contains("gep"));
}

#[test]
fn unknown_flag_is_rejected_with_usage() {
    let dir = std::env::temp_dir().join("pata_cli_badflag");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    for args in [
        vec!["analyze", file.to_str().unwrap(), "--bogus"],
        vec!["analyze", file.to_str().unwrap(), "--socket", "x"],
        vec!["serve", "--stdio", "--json"],
        vec!["corpus", "tencent", "--threads", "2"],
        vec!["client", "--socket", "x", "--store", "y"],
    ] {
        let out = pata().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown flag"), "{args:?}: {stderr}");
        assert!(stderr.contains("usage"), "{args:?}: {stderr}");
    }
}

#[test]
fn help_enumerates_every_knob() {
    let out = pata().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for knob in [
        "--checkers",
        "--na",
        "--no-validate",
        "--no-validation-cache",
        "--resolve-fptrs",
        "--loops",
        "--threads",
        "--no-exploration-cache",
        "--no-callee-memo",
        "--fork-depth",
        "--store",
        "--socket",
        "--stdio",
        "--json",
        "--stats",
        "--stats-json",
        "--profile",
        "--scale",
        "--seed",
        "--out",
        "--root-deadline-ms",
        "--max-live-bytes",
        "--fault-plan",
        "--raw",
        "--max-request-bytes",
        "--request-timeout-ms",
    ] {
        assert!(stdout.contains(knob), "help missing {knob}");
    }
}

#[test]
fn misspelled_flag_suggests_nearest_match() {
    let dir = std::env::temp_dir().join("pata_cli_typo");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    for (typo, suggestion) in [
        ("--fork-dpeth", "--fork-depth"),
        ("--theads", "--threads"),
        ("--fault-pan", "--fault-plan"),
    ] {
        let out = pata()
            .args(["analyze", file.to_str().unwrap(), typo])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{typo} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("unknown flag `{typo}`")),
            "{stderr}"
        );
        assert!(
            stderr.contains(&format!("did you mean `{suggestion}`?")),
            "{typo}: {stderr}"
        );
    }
}

#[test]
fn bad_flag_value_names_the_flag() {
    let dir = std::env::temp_dir().join("pata_cli_badvalue");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    for (flag, value, expect) in [
        (
            "--root-deadline-ms",
            "abc",
            "bad --root-deadline-ms value `abc`",
        ),
        ("--max-live-bytes", "-1", "bad --max-live-bytes value `-1`"),
        ("--threads", "lots", "bad --threads value `lots`"),
        ("--fault-plan", "nosuchsite@1", "bad --fault-plan"),
    ] {
        let out = pata()
            .args(["analyze", file.to_str().unwrap(), flag, value])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag} {value} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(expect), "{flag} {value}: {stderr}");
    }
}

#[test]
fn missing_flag_argument_is_an_error() {
    let dir = std::env::temp_dir().join("pata_cli_missing");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    for flag in ["--fault-plan", "--root-deadline-ms", "--store"] {
        let out = pata()
            .args(["analyze", file.to_str().unwrap(), flag])
            .output()
            .unwrap();
        assert!(!out.status.success(), "trailing {flag} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("{flag} expects a value")),
            "{flag}: {stderr}"
        );
    }
}

#[test]
fn analyze_store_makes_second_run_warm() {
    let dir = std::env::temp_dir().join("pata_cli_store");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let store = dir.join("store.json");
    let run = || {
        pata()
            .args([
                "analyze",
                file.to_str().unwrap(),
                "--store",
                store.to_str().unwrap(),
                "--json",
                "--stats",
            ])
            .output()
            .unwrap()
    };
    let cold = run();
    assert!(cold.status.success(), "{cold:?}");
    assert!(String::from_utf8_lossy(&cold.stderr).contains("warm start: false"));
    let warm = run();
    assert!(warm.status.success(), "{warm:?}");
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains("warm start: true"), "{stderr}");
    assert!(stderr.contains("roots dirty/clean: 0/1"), "{stderr}");
    assert_eq!(cold.stdout, warm.stdout, "cold and warm reports identical");
}

#[test]
fn serve_stdio_answers_and_shuts_down() {
    use std::io::Write as _;
    let mut child = pata()
        .args(["serve", "--stdio"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let src = "int probe(int *p) { if (p == NULL) { } return *p; }";
    let request = format!(
        "{{\"id\": 1, \"op\": \"analyze\", \"files\": [{{\"name\": \"t.c\", \"text\": {}}}]}}\n{{\"id\": 2, \"op\": \"shutdown\"}}\n",
        pata::core::json::quote(src)
    );
    child
        .stdin
        .take()
        .unwrap()
        .write_all(request.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    let first = pata::core::json::JsonValue::parse(lines[0]).unwrap();
    assert_eq!(first.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert!(lines[0].contains("null-pointer-dereference"), "{stdout}");
    assert!(lines[1].contains("\"op\": \"shutdown\""));
}

#[cfg(unix)]
#[test]
fn serve_socket_shares_warm_cache_across_clients() {
    let dir = std::env::temp_dir().join("pata_cli_daemon");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let socket = dir.join("pata.sock");
    let mut daemon = pata()
        .args(["serve", "--socket", socket.to_str().unwrap()])
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let client = |extra: &[&str]| {
        let mut args = vec!["client", "--socket", socket.to_str().unwrap()];
        args.extend_from_slice(extra);
        pata().args(&args).output().unwrap()
    };
    let first = client(&[file.to_str().unwrap()]);
    assert!(first.status.success(), "{first:?}");
    let second = client(&[file.to_str().unwrap()]);
    assert!(second.status.success(), "{second:?}");
    let doc =
        pata::core::json::JsonValue::parse(String::from_utf8_lossy(&second.stdout).trim()).unwrap();
    let serve = doc.get("serve").expect("serve block");
    assert_eq!(
        serve.get("dirty_roots").and_then(|v| v.as_u64()),
        Some(0),
        "second client fully served from the shared warm cache"
    );
    // Identical embedded report for both clients.
    let report_of = |out: &std::process::Output| {
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        let start = text.find("\"report\": ").unwrap();
        let end = text.find(", \"serve\": ").unwrap();
        text[start..end].to_string()
    };
    assert_eq!(report_of(&first), report_of(&second));
    let bye = client(&["--op", "shutdown"]);
    assert!(bye.status.success(), "{bye:?}");
    assert!(daemon.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}
