//! Smoke tests for the `pata` command-line interface.

use std::process::Command;

fn pata() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pata"))
}

fn write_demo(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("demo.c");
    std::fs::write(
        &path,
        r#"
        struct dev { int *res; };
        static int probe(struct dev *d) {
            if (d->res == NULL) { log_warn("x"); }
            return *d->res;
        }
        static struct drv d = { .probe = probe };
        "#,
    )
    .unwrap();
    path
}

#[test]
fn analyze_reports_bug() {
    let dir = std::env::temp_dir().join("pata_cli_analyze");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let out = pata()
        .args(["analyze", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("null-pointer-dereference"), "{stdout}");
    assert!(stdout.contains("probe"));
}

#[test]
fn analyze_json_is_versioned_report() {
    let dir = std::env::temp_dir().join("pata_cli_json");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let out = pata()
        .args(["analyze", file.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The output is the versioned wire format: parse it back through the
    // library, not by string inspection.
    let report = pata::core::Report::from_json(stdout.trim()).expect("valid report document");
    assert_eq!(report.schema_version, pata::core::REPORT_SCHEMA_VERSION);
    assert_eq!(report.reports.len(), 1);
    assert_eq!(report.reports[0].kind.as_str(), "null-pointer-dereference");
    assert_eq!(report.reports[0].function, "probe");
}

#[test]
fn analyze_stats_json_matches_telemetry_schema() {
    let dir = std::env::temp_dir().join("pata_cli_stats_json");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let stats_path = dir.join("stats.json");
    let out = pata()
        .args([
            "analyze",
            file.to_str().unwrap(),
            "--stats-json",
            stats_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&stats_path).unwrap();
    let doc = pata::core::json::JsonValue::parse(&text).expect("valid JSON");
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_u64()),
        Some(u64::from(pata::core::telemetry::TELEMETRY_SCHEMA_VERSION))
    );
    let metrics = doc
        .get("metrics")
        .and_then(|v| v.as_array())
        .expect("metrics array");
    let names: Vec<&str> = metrics
        .iter()
        .filter_map(|m| m.get("name").and_then(|n| n.as_str()))
        .collect();
    for expected in [
        "collect.roots",
        "path.paths",
        "stage.explore",
        "validate.solve",
    ] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
}

#[test]
fn analyze_profile_prints_stage_breakdown() {
    let dir = std::env::temp_dir().join("pata_cli_profile");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let out = pata()
        .args(["analyze", file.to_str().unwrap(), "--profile"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stage breakdown"), "{stderr}");
    assert!(stderr.contains("slowest roots"), "{stderr}");
}

#[test]
fn analyze_checker_selection() {
    let dir = std::env::temp_dir().join("pata_cli_checkers");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    // Only the ML checker: the NPD must not be reported.
    let out = pata()
        .args(["analyze", file.to_str().unwrap(), "--checkers", "ml"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no bugs found"), "{stdout}");
}

#[test]
fn bad_input_fails_cleanly() {
    let out = pata()
        .args(["analyze", "/nonexistent/nope.c"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn unknown_command_usage() {
    let out = pata().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn fsm_lists_all_checkers() {
    let out = pata().args(["fsm"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for abbrev in ["NPD", "UVA", "ML", "DL", "AIU", "DBZ", "UAF"] {
        assert!(stdout.contains(abbrev), "missing {abbrev}: {stdout}");
    }
}

#[test]
fn corpus_writes_files_and_manifest() {
    let dir = std::env::temp_dir().join("pata_cli_corpus");
    let _ = std::fs::remove_dir_all(&dir);
    let out = pata()
        .args([
            "corpus",
            "tencent",
            "--scale",
            "0.15",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(dir.join("manifest.json").exists());
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"bugs\""));
}

#[test]
fn ir_dump_contains_functions() {
    let dir = std::env::temp_dir().join("pata_cli_ir");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_demo(&dir);
    let out = pata()
        .args(["ir", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fn probe"));
    assert!(stdout.contains("gep"));
}
