//! Property-based tests (proptest) on the core data structures and the
//! solver — the invariants the whole analysis relies on.

use pata::core::alias::{AliasGraph, Label};
use pata::smt::{CmpOp, Solver, SymId, Term};
use pata_ir::{Interner, VarId};
use proptest::prelude::*;

// ====================================================================
// Alias-graph invariants
// ====================================================================

/// The operations of Fig. 5 over a small variable universe.
#[derive(Debug, Clone)]
enum Op {
    Move(u8, u8),
    Store(u8, u8),
    Load(u8, u8),
    Gep(u8, u8, u8),
    AddrOf(u8, u8),
    Const(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, 0u8..12).prop_map(|(a, b)| Op::Move(a, b)),
        (0u8..12, 0u8..12).prop_map(|(a, b)| Op::Store(a, b)),
        (0u8..12, 0u8..12).prop_map(|(a, b)| Op::Load(a, b)),
        (0u8..12, 0u8..12, 0u8..3).prop_map(|(a, b, f)| Op::Gep(a, b, f)),
        (0u8..12, 0u8..12).prop_map(|(a, b)| Op::AddrOf(a, b)),
        (0u8..12).prop_map(Op::Const),
    ]
}

fn apply(g: &mut AliasGraph, fields: &[pata_ir::Symbol], op: &Op) {
    let v = |i: u8| VarId::from_index(i as usize);
    match op {
        Op::Move(a, b) => {
            g.handle_move(v(*a), v(*b));
        }
        Op::Store(a, b) => {
            g.handle_store(v(*a), v(*b));
        }
        Op::Load(a, b) => {
            g.handle_load(v(*a), v(*b));
        }
        Op::Gep(a, b, f) => {
            g.handle_gep(v(*a), v(*b), fields[*f as usize]);
        }
        Op::AddrOf(a, b) => {
            g.handle_addr_of(v(*a), v(*b));
        }
        Op::Const(a) => {
            g.handle_const(v(*a));
        }
    }
}

/// Structural snapshot for rollback comparison.
fn snapshot(g: &AliasGraph) -> (Vec<Option<usize>>, Vec<Vec<(Label, usize)>>) {
    let residence: Vec<Option<usize>> =
        (0..12).map(|i| g.node_of_var(VarId::from_index(i)).map(|n| n.index())).collect();
    let edges: Vec<Vec<(Label, usize)>> = (0..g.node_count())
        .map(|i| {
            let n = g
                .node_of_var(VarId::from_index(0))
                .map(|_| ())
                .map(|_| i)
                .unwrap_or(i);
            let node = unsafe_node(g, n);
            node
        })
        .collect();
    (residence, edges)
}

fn unsafe_node(g: &AliasGraph, i: usize) -> Vec<(Label, usize)> {
    // Public API walk: out_edges by NodeId reconstructed through vars is
    // not possible for var-free nodes, so compare only up to node_count and
    // residence; edge sets are compared per reachable node.
    let _ = i;
    let mut out = Vec::new();
    for vi in 0..12 {
        if let Some(n) = g.node_of_var(VarId::from_index(vi)) {
            if n.index() == i {
                for (l, t) in g.out_edges(n) {
                    out.push((*l, t.index()));
                }
                break;
            }
        }
    }
    // Edge order within a node is not semantically meaningful.
    out.sort_by_key(|(l, t)| (format!("{l:?}"), *t));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Definition 1: at most one outgoing edge per label, and every
    /// variable resides in exactly one node.
    #[test]
    fn alias_graph_structural_invariants(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut interner = Interner::new();
        let fields = vec![interner.intern("f"), interner.intern("g"), interner.intern("h")];
        let mut g = AliasGraph::new();
        for op in &ops {
            apply(&mut g, &fields, op);
        }
        // One residence per var.
        for i in 0..12 {
            let v = VarId::from_index(i);
            if let Some(n) = g.node_of_var(v) {
                prop_assert!(g.vars(n).contains(&v));
                // And no other node contains it.
                let count = (0..g.node_count())
                    .filter(|&j| {
                        // reconstruct NodeId via residence check
                        g.node_of_var(v).map(|n| n.index()) == Some(j)
                    })
                    .count();
                prop_assert_eq!(count, 1);
            }
        }
        // Unique labels per node (checked through every var's node).
        for i in 0..12 {
            if let Some(n) = g.node_of_var(VarId::from_index(i)) {
                let edges = g.out_edges(n);
                let mut labels: Vec<Label> = edges.iter().map(|(l, _)| *l).collect();
                let before = labels.len();
                labels.sort_by_key(|l| format!("{l:?}"));
                labels.dedup();
                prop_assert_eq!(before, labels.len(), "duplicate label on a node");
            }
        }
    }

    /// Rollback is an exact inverse of any operation suffix.
    #[test]
    fn alias_graph_rollback_is_exact(
        prefix in prop::collection::vec(op_strategy(), 0..30),
        suffix in prop::collection::vec(op_strategy(), 1..30),
    ) {
        let mut interner = Interner::new();
        let fields = vec![interner.intern("f"), interner.intern("g"), interner.intern("h")];
        let mut g = AliasGraph::new();
        for op in &prefix {
            apply(&mut g, &fields, op);
        }
        let before = snapshot(&g);
        let nodes_before = g.node_count();
        let mark = g.mark();
        for op in &suffix {
            apply(&mut g, &fields, op);
        }
        g.rollback(mark);
        prop_assert_eq!(g.node_count(), nodes_before);
        prop_assert_eq!(snapshot(&g), before);
    }

    /// MOVE really merges alias classes: after `a = b`, both have the same
    /// node and share every subsequent field access path.
    #[test]
    fn move_merges_classes(a in 0u8..6, b in 0u8..6) {
        prop_assume!(a != b);
        let mut interner = Interner::new();
        let f = interner.intern("f");
        let mut g = AliasGraph::new();
        let (va, vb) = (VarId::from_index(a as usize), VarId::from_index(b as usize));
        g.handle_move(va, vb);
        prop_assert_eq!(g.node_of_var(va), g.node_of_var(vb));
        let (ta, tb) = (VarId::from_index(6), VarId::from_index(7));
        let na = g.handle_gep(ta, va, f);
        let nb = g.handle_gep(tb, vb, f);
        prop_assert_eq!(na, nb, "field paths of aliases must coincide");
    }
}

// ====================================================================
// Solver soundness
// ====================================================================

/// Builds constraints that are true under a random concrete assignment;
/// the conjunction must never be UNSAT.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn satisfiable_systems_never_refuted(
        values in prop::collection::vec(-50i64..50, 2..8),
        pairs in prop::collection::vec((0usize..8, 0usize..8), 1..20),
    ) {
        let mut solver = Solver::new();
        let syms: Vec<SymId> = values.iter().map(|_| solver.fresh_symbol()).collect();
        for (i, j) in pairs {
            let (i, j) = (i % values.len(), j % values.len());
            let (vi, vj) = (values[i], values[j]);
            // Assert the true relation between the two concrete values.
            let op = if vi == vj {
                CmpOp::Eq
            } else if vi < vj {
                CmpOp::Lt
            } else {
                CmpOp::Gt
            };
            solver.assert_cmp(op, Term::sym(syms[i]), Term::sym(syms[j]));
        }
        // Pin a couple of symbols to their concrete values too.
        solver.assert_cmp(CmpOp::Eq, Term::sym(syms[0]), Term::int(values[0]));
        let result = solver.check();
        prop_assert_ne!(result, pata::smt::SatResult::Unsat);
    }

    #[test]
    fn contradiction_always_refuted(v in -100i64..100, delta in 1i64..50) {
        let mut solver = Solver::new();
        let x = solver.fresh_symbol();
        solver.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(v));
        solver.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(v + delta));
        prop_assert_eq!(solver.check(), pata::smt::SatResult::Unsat);
    }

    #[test]
    fn offset_chains_consistent(offsets in prop::collection::vec(-20i64..20, 1..10)) {
        // x0 = x1 + o1, x1 = x2 + o2, … — then x0 - xn == Σo must hold and
        // its negation must be refuted.
        let mut solver = Solver::new();
        let syms: Vec<SymId> = (0..=offsets.len()).map(|_| solver.fresh_symbol()).collect();
        for (i, &o) in offsets.iter().enumerate() {
            solver.assert_cmp(
                CmpOp::Eq,
                Term::sym(syms[i]),
                Term::sym(syms[i + 1]).add(Term::int(o)),
            );
        }
        let total: i64 = offsets.iter().sum();
        solver.assert_cmp(
            CmpOp::Ne,
            Term::sym(syms[0]).sub(Term::sym(*syms.last().unwrap())),
            Term::int(total),
        );
        prop_assert_eq!(solver.check(), pata::smt::SatResult::Unsat);
    }
}

// ====================================================================
// Front-end robustness
// ====================================================================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lexer/parser never panic on arbitrary input — they either parse
    /// or return a diagnostic.
    #[test]
    fn parser_total_on_arbitrary_input(input in "[ -~\\n]{0,200}") {
        let _ = pata::cc::Parser::parse_source("fuzz.c", &input);
    }

    /// Any corpus seed produces a compiling, verifying module.
    #[test]
    fn corpus_compiles_for_any_seed(seed in 0u64..1_000_000) {
        let profile = pata::corpus::OsProfile::tencent().with_scale(0.12).with_seed(seed);
        let corpus = pata::corpus::Corpus::generate(&profile);
        let module = corpus.compile().expect("generated corpus compiles");
        prop_assert!(pata_ir::verify_module(&module).is_ok());
    }
}
