//! Randomized property tests (seeded, dependency-free) on the core data
//! structures and the solver — the invariants the whole analysis relies on.
//! Each property runs over a fixed number of deterministic cases driven by
//! the corpus crate's splitmix64 [`Prng`], so failures reproduce exactly.

use pata::core::alias::{AliasGraph, Label};
use pata::corpus::Prng;
use pata::smt::{CmpOp, SatResult, Solver, SymId, Term};
use pata_ir::{Interner, VarId};

const CASES: u64 = 128;

// ====================================================================
// Alias-graph invariants
// ====================================================================

/// The operations of Fig. 5 over a small variable universe.
#[derive(Debug, Clone)]
enum Op {
    Move(u8, u8),
    Store(u8, u8),
    Load(u8, u8),
    Gep(u8, u8, u8),
    AddrOf(u8, u8),
    Const(u8),
}

fn random_op(rng: &mut Prng) -> Op {
    let a = rng.gen_range(0, 12) as u8;
    let b = rng.gen_range(0, 12) as u8;
    match rng.gen_range(0, 6) {
        0 => Op::Move(a, b),
        1 => Op::Store(a, b),
        2 => Op::Load(a, b),
        3 => Op::Gep(a, b, rng.gen_range(0, 3) as u8),
        4 => Op::AddrOf(a, b),
        _ => Op::Const(a),
    }
}

fn random_ops(rng: &mut Prng, lo: usize, hi: usize) -> Vec<Op> {
    let n = rng.gen_range(lo, hi);
    (0..n).map(|_| random_op(rng)).collect()
}

fn apply(g: &mut AliasGraph, fields: &[pata_ir::Symbol], op: &Op) {
    let v = |i: u8| VarId::from_index(i as usize);
    match op {
        Op::Move(a, b) => {
            g.handle_move(v(*a), v(*b));
        }
        Op::Store(a, b) => {
            g.handle_store(v(*a), v(*b));
        }
        Op::Load(a, b) => {
            g.handle_load(v(*a), v(*b));
        }
        Op::Gep(a, b, f) => {
            g.handle_gep(v(*a), v(*b), fields[*f as usize]);
        }
        Op::AddrOf(a, b) => {
            g.handle_addr_of(v(*a), v(*b));
        }
        Op::Const(a) => {
            g.handle_const(v(*a));
        }
    }
}

fn test_fields(interner: &mut Interner) -> Vec<pata_ir::Symbol> {
    vec![
        interner.intern("f"),
        interner.intern("g"),
        interner.intern("h"),
    ]
}

/// Structural snapshot for rollback comparison: per-variable residence and
/// the sorted out-edge set of every variable's node.
fn snapshot(g: &AliasGraph) -> (Vec<Option<usize>>, Vec<Vec<(String, usize)>>) {
    let residence: Vec<Option<usize>> = (0..12)
        .map(|i| g.node_of_var(VarId::from_index(i)).map(|n| n.index()))
        .collect();
    let edges: Vec<Vec<(String, usize)>> = (0..12)
        .map(|i| {
            let mut out = Vec::new();
            if let Some(n) = g.node_of_var(VarId::from_index(i)) {
                for (l, t) in g.out_edges(n) {
                    out.push((format!("{l:?}"), t.index()));
                }
            }
            // Edge order within a node is not semantically meaningful.
            out.sort();
            out
        })
        .collect();
    (residence, edges)
}

/// Definition 1: at most one outgoing edge per label, and every variable
/// resides in exactly one node.
#[test]
fn alias_graph_structural_invariants() {
    let mut rng = Prng::seed_from_u64(0xa11a5);
    for case in 0..CASES {
        let mut interner = Interner::new();
        let fields = test_fields(&mut interner);
        let mut g = AliasGraph::new();
        for op in random_ops(&mut rng, 1, 60) {
            apply(&mut g, &fields, &op);
        }
        for i in 0..12 {
            let v = VarId::from_index(i);
            if let Some(n) = g.node_of_var(v) {
                assert!(g.vars(n).contains(&v), "case {case}: var not in its node");
                let edges = g.out_edges(n);
                let mut labels: Vec<Label> = edges.iter().map(|(l, _)| *l).collect();
                let before = labels.len();
                labels.sort_by_key(|l| format!("{l:?}"));
                labels.dedup();
                assert_eq!(
                    before,
                    labels.len(),
                    "case {case}: duplicate label on a node"
                );
            }
        }
    }
}

/// Rollback is an exact inverse of any operation suffix.
#[test]
fn alias_graph_rollback_is_exact() {
    let mut rng = Prng::seed_from_u64(0xb011);
    for case in 0..CASES {
        let mut interner = Interner::new();
        let fields = test_fields(&mut interner);
        let mut g = AliasGraph::new();
        for op in random_ops(&mut rng, 0, 30) {
            apply(&mut g, &fields, &op);
        }
        let before = snapshot(&g);
        let nodes_before = g.node_count();
        let mark = g.mark();
        for op in random_ops(&mut rng, 1, 30) {
            apply(&mut g, &fields, &op);
        }
        g.rollback(mark);
        assert_eq!(g.node_count(), nodes_before, "case {case}");
        assert_eq!(snapshot(&g), before, "case {case}");
    }
}

/// MOVE really merges alias classes: after `a = b`, both have the same node
/// and share every subsequent field access path.
#[test]
fn move_merges_classes() {
    let mut rng = Prng::seed_from_u64(0x30);
    for case in 0..CASES {
        let a = rng.gen_range(0, 6);
        let b = rng.gen_range(0, 6);
        if a == b {
            continue;
        }
        let mut interner = Interner::new();
        let f = interner.intern("f");
        let mut g = AliasGraph::new();
        let (va, vb) = (VarId::from_index(a), VarId::from_index(b));
        g.handle_move(va, vb);
        assert_eq!(g.node_of_var(va), g.node_of_var(vb), "case {case}");
        let (ta, tb) = (VarId::from_index(6), VarId::from_index(7));
        let na = g.handle_gep(ta, va, f);
        let nb = g.handle_gep(tb, vb, f);
        assert_eq!(na, nb, "case {case}: field paths of aliases must coincide");
    }
}

// ====================================================================
// Solver soundness
// ====================================================================

/// Constraints that are true under a random concrete assignment must never
/// be UNSAT.
#[test]
fn satisfiable_systems_never_refuted() {
    let mut rng = Prng::seed_from_u64(0x5a7);
    for case in 0..CASES {
        let n_vals = rng.gen_range(2, 8);
        let values: Vec<i64> = (0..n_vals)
            .map(|_| rng.gen_range(0, 100) as i64 - 50)
            .collect();
        let mut solver = Solver::new();
        let syms: Vec<SymId> = values.iter().map(|_| solver.fresh_symbol()).collect();
        let n_pairs = rng.gen_range(1, 20);
        for _ in 0..n_pairs {
            let i = rng.gen_range(0, values.len());
            let j = rng.gen_range(0, values.len());
            let (vi, vj) = (values[i], values[j]);
            // Assert the true relation between the two concrete values.
            let op = if vi == vj {
                CmpOp::Eq
            } else if vi < vj {
                CmpOp::Lt
            } else {
                CmpOp::Gt
            };
            solver.assert_cmp(op, Term::sym(syms[i]), Term::sym(syms[j]));
        }
        // Pin a symbol to its concrete value too.
        solver.assert_cmp(CmpOp::Eq, Term::sym(syms[0]), Term::int(values[0]));
        assert_ne!(solver.check(), SatResult::Unsat, "case {case}: {values:?}");
    }
}

/// Incremental scopes agree with batch solving on random systems: asserting
/// prefix, push, suffix must decide exactly like a fresh solver given
/// prefix + suffix — and popping must restore the prefix verdict.
#[test]
fn incremental_scopes_match_batch_solving() {
    let mut rng = Prng::seed_from_u64(0x1c4);
    let random_constraint = |rng: &mut Prng| {
        let a = SymId(rng.gen_range(0, 5) as u32);
        let b = SymId(rng.gen_range(0, 5) as u32);
        let c = rng.gen_range(0, 11) as i64 - 5;
        let op = match rng.gen_range(0, 5) {
            0 => CmpOp::Le,
            1 => CmpOp::Lt,
            2 => CmpOp::Eq,
            3 => CmpOp::Ne,
            _ => CmpOp::Ge,
        };
        pata::smt::Constraint::new(op, Term::sym(a), Term::sym(b).add(Term::int(c)))
    };
    for case in 0..CASES {
        let prefix: Vec<_> = (0..rng.gen_range(0, 8))
            .map(|_| random_constraint(&mut rng))
            .collect();
        let suffix: Vec<_> = (0..rng.gen_range(1, 6))
            .map(|_| random_constraint(&mut rng))
            .collect();

        let mut incremental = Solver::new();
        incremental.reserve_symbols(5);
        for c in &prefix {
            incremental.assert_constraint(c.clone());
        }
        let prefix_verdict = incremental.check();
        incremental.push();
        for c in &suffix {
            incremental.assert_constraint(c.clone());
        }

        let mut batch = Solver::new();
        batch.reserve_symbols(5);
        for c in prefix.iter().chain(&suffix) {
            batch.assert_constraint(c.clone());
        }
        assert_eq!(
            incremental.check(),
            batch.check(),
            "case {case}: {prefix:?} + {suffix:?}"
        );

        incremental.pop();
        assert_eq!(
            incremental.check(),
            prefix_verdict,
            "case {case}: pop must restore"
        );
    }
}

#[test]
fn contradiction_always_refuted() {
    let mut rng = Prng::seed_from_u64(0xc0);
    for _ in 0..CASES {
        let v = rng.gen_range(0, 200) as i64 - 100;
        let delta = rng.gen_range(1, 50) as i64;
        let mut solver = Solver::new();
        let x = solver.fresh_symbol();
        solver.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(v));
        solver.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(v + delta));
        assert_eq!(
            solver.check(),
            SatResult::Unsat,
            "x == {v} && x == {}",
            v + delta
        );
    }
}

#[test]
fn offset_chains_consistent() {
    let mut rng = Prng::seed_from_u64(0x0ff);
    for case in 0..CASES {
        // x0 = x1 + o1, x1 = x2 + o2, … — then x0 - xn == Σo must hold and
        // its negation must be refuted.
        let n = rng.gen_range(1, 10);
        let offsets: Vec<i64> = (0..n).map(|_| rng.gen_range(0, 40) as i64 - 20).collect();
        let mut solver = Solver::new();
        let syms: Vec<SymId> = (0..=offsets.len()).map(|_| solver.fresh_symbol()).collect();
        for (i, &o) in offsets.iter().enumerate() {
            solver.assert_cmp(
                CmpOp::Eq,
                Term::sym(syms[i]),
                Term::sym(syms[i + 1]).add(Term::int(o)),
            );
        }
        let total: i64 = offsets.iter().sum();
        solver.assert_cmp(
            CmpOp::Ne,
            Term::sym(syms[0]).sub(Term::sym(*syms.last().unwrap())),
            Term::int(total),
        );
        assert_eq!(solver.check(), SatResult::Unsat, "case {case}: {offsets:?}");
    }
}

// ====================================================================
// Front-end robustness
// ====================================================================

/// The lexer/parser never panic on arbitrary input — they either parse or
/// return a diagnostic.
#[test]
fn parser_total_on_arbitrary_input() {
    let mut rng = Prng::seed_from_u64(0xf022);
    for _ in 0..64 {
        let len = rng.gen_range(0, 200);
        let input: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline.
                match rng.gen_range(0, 96) {
                    95 => '\n',
                    c => (b' ' + c as u8) as char,
                }
            })
            .collect();
        let _ = pata::cc::Parser::parse_source("fuzz.c", &input);
    }
}

/// Any corpus seed produces a compiling, verifying module.
#[test]
fn corpus_compiles_for_any_seed() {
    let mut rng = Prng::seed_from_u64(0xc02b);
    for _ in 0..24 {
        let seed = rng.next_u64() % 1_000_000;
        let profile = pata::corpus::OsProfile::tencent()
            .with_scale(0.12)
            .with_seed(seed);
        let corpus = pata::corpus::Corpus::generate(&profile);
        let module = corpus.compile().expect("generated corpus compiles");
        assert!(pata_ir::verify_module(&module).is_ok(), "seed {seed}");
    }
}
