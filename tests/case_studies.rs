//! Integration tests reproducing the paper's motivating examples and case
//! studies (Figs. 1, 3, 9, 12) end-to-end: mini-C source → PIR → PATA →
//! validated reports.

use pata::core::{AnalysisConfig, AnalysisSession, BugKind};

fn analyze(path: &str, src: &str) -> pata::core::AnalysisOutcome {
    let module = pata::cc::compile_one(path, src).expect("case study compiles");
    AnalysisSession::new(AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    })
    .analyze_module(module)
}

fn analyze_na(path: &str, src: &str) -> pata::core::AnalysisOutcome {
    let module = pata::cc::compile_one(path, src).expect("case study compiles");
    AnalysisSession::new(AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::without_alias()
    })
    .analyze_module(module)
}

/// Fig. 1 — Linux s5p_mfc_probe: `dev->plat_dev = pdev; if (!dev->plat_dev)
/// { dev_err(&pdev->dev, …) }` — the error branch itself dereferences the
/// pointer that was just found NULL, through an alias created one line
/// earlier. The probe is only reachable through a function-pointer
/// registration (module interface function).
#[test]
fn fig1_s5p_mfc_probe() {
    let out = analyze(
        "drivers/media/s5p_mfc.c",
        r#"
        struct platform_device { int *dev; };
        struct s5p_dev { struct platform_device *plat_dev; };

        static int s5p_mfc_probe(struct s5p_dev *dev, struct platform_device *pdev) {
            dev->plat_dev = pdev;            /* create alias */
            if (!dev->plat_dev) {            /* pdev can be NULL */
                dev_err(pdev->dev);          /* NPD: pdev aliases dev->plat_dev */
                return -19;
            }
            return 0;
        }

        static struct platform_driver s5p_mfc_driver = { .probe = s5p_mfc_probe };
        "#,
    );
    let npd: Vec<_> = out
        .reports
        .iter()
        .filter(|r| r.kind == BugKind::NullPointerDeref && r.function == "s5p_mfc_probe")
        .collect();
    assert!(
        !npd.is_empty(),
        "Fig. 1 bug must be found: {:?}",
        out.reports
    );
}

/// Fig. 1 under PATA-NA: the alias between `pdev` and `dev->plat_dev` is
/// exactly what the alias-unaware variant cannot see.
#[test]
fn fig1_needs_alias_awareness() {
    let out = analyze_na(
        "drivers/media/s5p_mfc.c",
        r#"
        struct platform_device { int *dev; };
        struct s5p_dev { struct platform_device *plat_dev; };
        static int s5p_mfc_probe(struct s5p_dev *dev, struct platform_device *pdev) {
            dev->plat_dev = pdev;
            if (!dev->plat_dev) {
                dev_err(pdev->dev);
                return -19;
            }
            return 0;
        }
        static struct platform_driver s5p_mfc_driver = { .probe = s5p_mfc_probe };
        "#,
    );
    assert!(
        !out.reports
            .iter()
            .any(|r| r.kind == BugKind::NullPointerDeref),
        "PATA-NA cannot connect pdev with dev->plat_dev: {:?}",
        out.reports
    );
}

/// Fig. 3 — the Zephyr friend_set bug (see also examples/zephyr_friend_set).
#[test]
fn fig3_zephyr_friend_set() {
    let out = analyze(
        "subsys/bluetooth/cfg_srv.c",
        r#"
        struct bt_mesh_cfg_srv { int frnd; };
        struct bt_mesh_model { struct bt_mesh_cfg_srv *user_data; };
        static void send_friend_status(struct bt_mesh_model *model) {
            struct bt_mesh_cfg_srv *cfg = model->user_data;
            net_buf_simple_add_u8(cfg->frnd);
        }
        static void friend_set(struct bt_mesh_model *model) {
            struct bt_mesh_cfg_srv *cfg = model->user_data;
            if (!cfg) {
                goto send_status;
            }
            cfg->frnd = 1;
            return;
        send_status:
            send_friend_status(model);
        }
        static struct bt_mesh_model_op op = { .set = friend_set };
        "#,
    );
    assert!(
        out.reports
            .iter()
            .any(|r| r.kind == BugKind::NullPointerDeref && r.function == "send_friend_status"),
        "{:?}",
        out.reports
    );
}

/// Fig. 9 — the infeasible-path candidate that alias-aware constraint
/// merging refutes: `p->f == 0` on the NULL path contradicts `t->f != 0`
/// guarding the dereference, because p and t alias.
#[test]
fn fig9_infeasible_path_dropped() {
    let src = r#"
        struct s { int f; };
        static void func(struct s *p, int *q) {
            struct s *t;
            if (q == NULL) {
                p->f = 0;
            }
            t = p;
            if (t->f != 0) {
                *q = *q + 1;
            }
        }
        static struct ops o = { .run = func };
    "#;
    let pata = analyze("lib/fig9.c", src);
    assert!(
        !pata
            .reports
            .iter()
            .any(|r| r.kind == BugKind::NullPointerDeref),
        "PATA must drop the infeasible candidate: {:?}",
        pata.reports
    );
    assert!(pata.stats.false_bugs_dropped >= 1, "{:?}", pata.stats);

    // The same program under PATA-NA: separate SMT symbols for p->f and
    // t->f make the path look feasible — a false positive.
    let na = analyze_na("lib/fig9.c", src);
    assert!(
        na.reports
            .iter()
            .any(|r| r.kind == BugKind::NullPointerDeref),
        "PATA-NA reports the Fig. 9 false positive: {:?}",
        na.reports
    );
}

/// Fig. 12(a) — Linux MCDE: `mcde_dsi_bind` checks `d->mdsi`, then calls
/// `mcde_dsi_start` which dereferences it repeatedly.
#[test]
fn fig12a_linux_mcde() {
    let out = analyze(
        "drivers/gpu/drm/mcde/mcde_dsi.c",
        r#"
        struct mipi_dsi { int mode_flags; int lanes; };
        struct mcde_dsi { struct mipi_dsi *mdsi; int val; };
        static void mcde_dsi_start(struct mcde_dsi *d) {
            if (d->mdsi->mode_flags > 0) {
                d->val = 1;
            }
            if (d->mdsi->lanes == 2) {
                d->val = 2;
            }
        }
        static int mcde_dsi_bind(struct mcde_dsi *d) {
            if (d->mdsi) {
                mcde_dsi_attach(d);
            }
            mcde_dsi_start(d);
            return 0;
        }
        static struct component_ops ops = { .bind = mcde_dsi_bind };
        "#,
    );
    let sites: Vec<u32> = out
        .reports
        .iter()
        .filter(|r| r.kind == BugKind::NullPointerDeref && r.function == "mcde_dsi_start")
        .map(|r| r.site_line)
        .collect();
    assert!(
        sites.len() >= 2,
        "each dereference is a distinct bug: {:?}",
        out.reports
    );
}

/// Fig. 12(b) — Zephyr context_sendto: `dst_addr` can be NULL when msghdr
/// is non-NULL; the cast alias `ll_addr` is dereferenced later.
#[test]
fn fig12b_zephyr_context_sendto() {
    let out = analyze(
        "subsys/net/ip/net_context.c",
        r#"
        struct sockaddr { int sll_ifindex; };
        static int context_sendto(struct sockaddr *dst_addr, int *msghdr) {
            if (dst_addr == NULL && msghdr == NULL) {
                return -89;
            }
            struct sockaddr *ll_addr = dst_addr;          /* alias */
            if (ll_addr->sll_ifindex < 0) {               /* unsafe deref! */
                return -22;
            }
            return 0;
        }
        static struct net_ops ops = { .sendto = context_sendto };
        "#,
    );
    assert!(
        out.reports
            .iter()
            .any(|r| r.kind == BugKind::NullPointerDeref && r.function == "context_sendto"),
        "{:?}",
        out.reports
    );
}

/// Fig. 12(c) — RIOT make_message: leak on the vsnprintf error path.
#[test]
fn fig12c_riot_make_message() {
    let out = analyze(
        "cpu/native/syscall.c",
        r#"
        static int make_message(int size) {
            int *message = malloc(size);
            if (message == NULL) {
                return -1;
            }
            int n = vsnprintf_model(size);
            if (n < 0) {
                return -1;            /* no free! */
            }
            free(message);
            return n;
        }
        static struct sys_ops ops = { .fmt = make_message };
        "#,
    );
    let ml: Vec<_> = out
        .reports
        .iter()
        .filter(|r| r.kind == BugKind::MemoryLeak)
        .collect();
    assert_eq!(ml.len(), 1, "{:?}", out.reports);
    assert_eq!(ml[0].function, "make_message");
}

/// Fig. 12(d) — TencentOS pthread_create: the task-control block lives in
/// uninitialized heap memory; a field is read three calls deep.
#[test]
fn fig12d_tencent_pthread_create() {
    let out = analyze(
        "osal/posix/pthread.c",
        r#"
        struct knl_obj { int type; };
        struct k_task { struct knl_obj knl_obj; int prio; };
        struct pthread_ctl { struct k_task ktask; };

        static int knl_object_verify(struct knl_obj *obj, int expected) {
            return obj->type == expected;                 /* unsafe access! */
        }
        static int tos_task_create(struct k_task *task) {
            return knl_object_verify(&task->knl_obj, 1);
        }
        static int pthread_create(int stack_size) {
            int *stackaddr = tos_mmheap_alloc(stack_size);   /* uninitialized */
            struct pthread_ctl *the_ctl = (struct pthread_ctl *)stackaddr;
            int kerr = tos_task_create(&the_ctl->ktask);
            register_thread(stackaddr);
            return kerr;
        }
        static struct posix_ops ops = { .create = pthread_create };
        "#,
    );
    assert!(
        out.reports
            .iter()
            .any(|r| r.kind == BugKind::UninitVarAccess && r.function == "knl_object_verify"),
        "the uninitialized access surfaces in knl_object_verify: {:?}",
        out.reports
    );
}

/// The developers' fix for Fig. 12(d): memset after allocation — the
/// report must disappear.
#[test]
fn fig12d_fix_with_memset() {
    let out = analyze(
        "osal/posix/pthread_fixed.c",
        r#"
        struct knl_obj { int type; };
        struct k_task { struct knl_obj knl_obj; int prio; };
        struct pthread_ctl { struct k_task ktask; };
        static int knl_object_verify(struct knl_obj *obj, int expected) {
            return obj->type == expected;
        }
        static int tos_task_create(struct k_task *task) {
            return knl_object_verify(&task->knl_obj, 1);
        }
        static int pthread_create(int stack_size) {
            int *stackaddr = tos_mmheap_alloc(stack_size);
            memset(stackaddr, 0, stack_size);
            struct pthread_ctl *the_ctl = (struct pthread_ctl *)stackaddr;
            int kerr = tos_task_create(&the_ctl->ktask);
            register_thread(stackaddr);
            return kerr;
        }
        static struct posix_ops ops = { .create = pthread_create };
        "#,
    );
    assert!(
        !out.reports
            .iter()
            .any(|r| r.kind == BugKind::UninitVarAccess),
        "memset initializes the storage: {:?}",
        out.reports
    );
}
