//! Scenario battery: focused mini-C programs with exact expectations about
//! what PATA must and must not report. These pin down the semantics of the
//! alias rules, the checker FSMs and the validator on realistic idioms.

use pata::core::{AnalysisConfig, AnalysisOutcome, AnalysisSession, BugKind};

fn analyze(src: &str) -> AnalysisOutcome {
    let module = pata::cc::compile_one("scenario.c", src).expect("scenario compiles");
    AnalysisSession::new(AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::all_checkers()
    })
    .analyze_module(module)
}

fn kinds(out: &AnalysisOutcome) -> Vec<BugKind> {
    out.reports.iter().map(|r| r.kind).collect()
}

fn assert_reports(src: &str, expected: &[BugKind]) {
    let out = analyze(src);
    let mut got = kinds(&out);
    got.sort();
    let mut want = expected.to_vec();
    want.sort();
    assert_eq!(got, want, "reports: {:#?}", out.reports);
}

// ====================================================================
// NPD semantics
// ====================================================================

#[test]
fn npd_reassignment_clears_null_state() {
    assert_reports(
        r#"
        struct dev { int *res; int *alt; };
        int f(struct dev *d) {
            int *p = d->res;
            if (p == NULL) {
                p = d->alt;
            }
            return *p;
        }
        "#,
        &[],
    );
}

#[test]
fn npd_null_via_else_branch_of_nonnull_test() {
    assert_reports(
        r#"
        int f(int *p) {
            if (p != NULL) {
                return *p;
            }
            return *p;
        }
        "#,
        &[BugKind::NullPointerDeref],
    );
}

#[test]
fn npd_short_circuit_guard_respected() {
    // `p && *p` never dereferences NULL.
    assert_reports(
        r#"
        int f(int *p) {
            if (p != NULL && *p > 0) {
                return 1;
            }
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn npd_or_guard_insufficient() {
    // `p == NULL || mode` then deref inside: when mode is true and p NULL,
    // the branch is taken and the dereference crashes.
    assert_reports(
        r#"
        int f(int *p, int mode) {
            if (p == NULL || mode > 0) {
                return *p;
            }
            return 0;
        }
        "#,
        &[BugKind::NullPointerDeref],
    );
}

#[test]
fn npd_alias_through_double_move() {
    assert_reports(
        r#"
        int f(int *p) {
            int *q = p;
            int *r = q;
            if (r == NULL) {
                report(0);
            }
            return *p;
        }
        "#,
        &[BugKind::NullPointerDeref],
    );
}

#[test]
fn npd_guard_through_alias_suppresses() {
    // Check on the alias, early return: the deref through the original
    // name is safe — needs shared state, not per-variable state.
    assert_reports(
        r#"
        int f(int *p) {
            int *q = p;
            if (q == NULL) {
                return -1;
            }
            return *p;
        }
        "#,
        &[],
    );
}

#[test]
fn npd_two_fields_are_independent() {
    // Field sensitivity: a NULL d->a must not taint d->b.
    assert_reports(
        r#"
        struct dev { int *a; int *b; };
        int f(struct dev *d) {
            if (d->a == NULL) {
                return *d->b;
            }
            return 0;
        }
        "#,
        &[],
    );
}

#[test]
fn npd_callee_guard_does_not_leak_to_caller_path() {
    // The callee checks and returns early — caller's continued use is the
    // callee's non-null path, so no report.
    assert_reports(
        r#"
        struct dev { int *res; };
        int check(struct dev *d) {
            if (d->res == NULL) {
                return -1;
            }
            return 0;
        }
        int f(struct dev *d) {
            int rc = check(d);
            if (rc < 0) {
                return rc;
            }
            return *d->res;
        }
        "#,
        &[],
    );
}

// ====================================================================
// UVA semantics
// ====================================================================

#[test]
fn uva_both_branches_initialize() {
    assert_reports(
        r#"
        int f(int c) {
            int x;
            if (c > 0) {
                x = 1;
            } else {
                x = 2;
            }
            return x;
        }
        "#,
        &[],
    );
}

#[test]
fn uva_init_through_two_deep_out_param() {
    assert_reports(
        r#"
        void inner(int *out) { *out = 3; }
        void outer(int *out) { inner(out); }
        int f(void) {
            int v;
            outer(&v);
            return v;
        }
        "#,
        &[],
    );
}

#[test]
fn uva_partial_field_init_detected() {
    // One field written, the *other* read — field-sensitive UVA.
    assert_reports(
        r#"
        struct pair { int a; int b; };
        int f(void) {
            struct pair p;
            p.a = 1;
            return p.b;
        }
        "#,
        &[BugKind::UninitVarAccess],
    );
}

#[test]
fn uva_kzalloc_is_initialized() {
    assert_reports(
        r#"
        struct cfg { int mode; };
        int f(void) {
            struct cfg *c = kzalloc(16);
            if (c == NULL) {
                return -1;
            }
            int m = c->mode;
            free(c);
            return m;
        }
        "#,
        &[],
    );
}

#[test]
fn uva_use_in_condition_counts() {
    assert_reports(
        r#"
        int f(void) {
            int x;
            if (x > 0) {
                return 1;
            }
            return 0;
        }
        "#,
        &[BugKind::UninitVarAccess],
    );
}

// ====================================================================
// ML semantics
// ====================================================================

#[test]
fn ml_goto_error_path_leak() {
    assert_reports(
        r#"
        int f(int n) {
            int *a = malloc(8);
            if (a == NULL) {
                return -1;
            }
            int *b = malloc(8);
            if (b == NULL) {
                goto fail;
            }
            free(a);
            free(b);
            return 0;
        fail:
            return -2;
        }
        "#,
        &[BugKind::MemoryLeak],
    );
}

#[test]
fn ml_free_in_both_orders_ok() {
    assert_reports(
        r#"
        void f(void) {
            int *a = malloc(8);
            int *b = malloc(8);
            free(b);
            free(a);
        }
        "#,
        &[],
    );
}

#[test]
fn ml_escape_via_external_registration() {
    assert_reports(
        r#"
        void f(void) {
            int *a = malloc(8);
            register_buffer(a);
        }
        "#,
        &[],
    );
}

#[test]
fn ml_conditional_free_leaks_other_path() {
    assert_reports(
        r#"
        int f(int c) {
            int *a = malloc(8);
            if (a == NULL) {
                return -1;
            }
            if (c > 0) {
                free(a);
            }
            return 0;
        }
        "#,
        &[BugKind::MemoryLeak],
    );
}

// ====================================================================
// Lock / arithmetic checkers
// ====================================================================

#[test]
fn double_unlock_detected() {
    assert_reports(
        r#"
        struct lk { int w; };
        void f(struct lk *l, int c) {
            spin_lock(&l->w);
            spin_unlock(&l->w);
            if (c > 0) {
                spin_unlock(&l->w);
            }
        }
        "#,
        &[BugKind::DoubleLock],
    );
}

#[test]
fn unlock_of_caller_held_lock_silent() {
    // Unlock without local lock evidence: the caller may hold it.
    assert_reports(
        r#"
        struct lk { int w; };
        void f(struct lk *l) {
            spin_unlock(&l->w);
        }
        "#,
        &[],
    );
}

#[test]
fn lock_through_two_paths_balanced() {
    assert_reports(
        r#"
        struct lk { int w; };
        void f(struct lk *l, int c) {
            spin_lock(&l->w);
            if (c > 0) {
                spin_unlock(&l->w);
                return;
            }
            spin_unlock(&l->w);
        }
        "#,
        &[],
    );
}

#[test]
fn dbz_guarded_division_silent() {
    assert_reports(
        r#"
        int f(int n, int d) {
            if (d == 0) {
                return -1;
            }
            return n / d;
        }
        "#,
        &[],
    );
}

#[test]
fn dbz_zero_constant_assignment() {
    assert_reports(
        r#"
        int f(int n, int c) {
            int d = 0;
            if (c > 0) {
                d = c;
            }
            return n / d;
        }
        "#,
        &[BugKind::DivisionByZero],
    );
}

#[test]
fn aiu_checked_index_silent() {
    assert_reports(
        r#"
        int f(int i) {
            int a[8];
            a[0] = 1;
            if (i >= 0) {
                return a[i];
            }
            return 0;
        }
        "#,
        &[],
    );
}

// ====================================================================
// Validation semantics
// ====================================================================

#[test]
fn contradictory_int_guards_filtered() {
    // state > 5 and state < 3 cannot both hold — candidate dropped.
    let out = analyze(
        r#"
        struct dev { int *res; int state; };
        int f(struct dev *d) {
            if (d->state > 5) {
                if (d->res == NULL) {
                    if (d->state < 3) {
                        return *d->res;
                    }
                }
            }
            return 0;
        }
        "#,
    );
    assert!(
        !kinds(&out).contains(&BugKind::NullPointerDeref),
        "{:?}",
        out.reports
    );
    assert!(out.stats.false_bugs_dropped >= 1);
}

#[test]
fn arithmetic_chain_feasibility() {
    // j == i + 1 with i >= 7 makes j >= 8; the j < 4 guard is infeasible.
    let out = analyze(
        r#"
        int f(int i, int *p) {
            if (i >= 7) {
                int j = i + 1;
                if (p == NULL) {
                    log(1);
                }
                if (j < 4) {
                    return *p;
                }
            }
            return 0;
        }
        "#,
    );
    assert!(
        !kinds(&out).contains(&BugKind::NullPointerDeref),
        "{:?}",
        out.reports
    );
}

#[test]
fn feasible_arithmetic_kept() {
    let out = analyze(
        r#"
        int f(int i, int *p) {
            if (i >= 7) {
                int j = i + 1;
                if (p == NULL) {
                    log(1);
                }
                if (j > 4) {
                    return *p;
                }
            }
            return 0;
        }
        "#,
    );
    assert!(
        kinds(&out).contains(&BugKind::NullPointerDeref),
        "{:?}",
        out.reports
    );
}

// ====================================================================
// Interface functions & roots
// ====================================================================

#[test]
fn bug_in_helper_reached_only_via_root() {
    // `helper` has a caller, so it is not a root; its bug is still found
    // through the root's inlined exploration.
    let out = analyze(
        r#"
        struct dev { int *res; };
        int helper(struct dev *d) {
            return *d->res;
        }
        int entry(struct dev *d) {
            if (d->res == NULL) {
                return helper(d);
            }
            return 0;
        }
        "#,
    );
    let npd: Vec<_> = out
        .reports
        .iter()
        .filter(|r| r.kind == BugKind::NullPointerDeref)
        .collect();
    assert_eq!(npd.len(), 1, "{:?}", out.reports);
    assert_eq!(npd[0].function, "helper");
}

#[test]
fn recursion_is_cut_not_looped() {
    let out = analyze(
        r#"
        int depth(int n) {
            if (n <= 0) {
                return 0;
            }
            return 1 + depth(n - 1);
        }
        "#,
    );
    assert!(out.stats.paths_explored >= 1);
    assert!(out.reports.is_empty());
}

#[test]
fn globals_shared_across_roots() {
    // Both roots touch the same global; analyses are independent, so no
    // cross-root state pollution may occur.
    let out = analyze(
        r#"
        int g_mode;
        void seta(void) { g_mode = 1; }
        int use_it(void) {
            if (g_mode > 0) {
                return 1;
            }
            return 0;
        }
        "#,
    );
    assert!(out.reports.is_empty(), "{:?}", out.reports);
}
