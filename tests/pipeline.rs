//! End-to-end pipeline invariants on generated corpora: the qualitative
//! claims of the paper's evaluation must hold on every run.

use pata::baselines::{
    intra::IntraPatternAnalyzer, pata_na::PataNaAnalyzer, svf_null::SvfNullAnalyzer,
    value_flow::ValueFlowLeakAnalyzer, Analyzer,
};
use pata::core::{AnalysisConfig, AnalysisSession};
use pata::corpus::{Corpus, OsProfile};

fn small(profile: OsProfile) -> Corpus {
    Corpus::generate(&profile.with_scale(0.25))
}

#[test]
fn pata_finds_all_injected_main_bugs() {
    // The three main checkers find every injected NPD/UVA/ML bug (the
    // extra-checker bugs need Table 7's configuration).
    for profile in OsProfile::all() {
        let corpus = small(profile);
        let module = corpus.compile().unwrap();
        let outcome = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module);
        let score = corpus.manifest.score(&outcome.reports);
        let main_bugs = corpus
            .manifest
            .bugs
            .iter()
            .filter(|b| pata::core::BugKind::MAIN.contains(&b.kind))
            .count();
        assert_eq!(
            score.total_real(),
            main_bugs,
            "{}: real {} != injected main bugs {}",
            corpus.profile.name,
            score.total_real(),
            main_bugs
        );
    }
}

#[test]
fn pata_fp_rate_below_baselines() {
    let corpus = small(OsProfile::linux());
    let module = corpus.compile().unwrap();
    let pata = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module);
    let pata_score = corpus.manifest.score(&pata.reports);

    let baselines: Vec<Box<dyn Analyzer>> = vec![
        Box::new(IntraPatternAnalyzer),
        Box::new(SvfNullAnalyzer),
        Box::new(PataNaAnalyzer::default()),
    ];
    let module = corpus.compile().unwrap();
    for b in baselines {
        let reports = b.run(&module);
        let score = corpus.manifest.score(&reports);
        assert!(
            pata_score.total_real() >= score.total_real(),
            "{} finds more real bugs than PATA?",
            b.name()
        );
        if score.total_found() > 0 {
            assert!(
                pata_score.false_positive_rate() <= score.false_positive_rate() + 1e-9,
                "{}: PATA fp {:.2} vs {:.2}",
                b.name(),
                pata_score.false_positive_rate(),
                score.false_positive_rate()
            );
        }
    }
}

#[test]
fn na_real_bugs_are_subset_of_pata() {
    // Paper §5.4: "These 194 real bugs are all found by PATA".
    let corpus = small(OsProfile::riot());
    let module = corpus.compile().unwrap();
    let pata = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module);
    let pata_score = corpus.manifest.score(&pata.reports);

    let module = corpus.compile().unwrap();
    let na_reports = PataNaAnalyzer::default().run(&module);
    let na_score = corpus.manifest.score(&na_reports);

    assert!(na_score.total_real() <= pata_score.total_real());
    assert!(
        na_score.false_positive_rate() > pata_score.false_positive_rate(),
        "NA fp {:.2} must exceed PATA fp {:.2}",
        na_score.false_positive_rate(),
        pata_score.false_positive_rate()
    );
}

#[test]
fn value_flow_finds_only_leaks() {
    let corpus = small(OsProfile::linux());
    let module = corpus.compile().unwrap();
    let reports = ValueFlowLeakAnalyzer.run(&module);
    assert!(reports
        .iter()
        .all(|r| r.kind == pata::core::BugKind::MemoryLeak));
}

#[test]
fn alias_awareness_reduces_costs() {
    // The paper's headline efficiency claim (Table 5): alias-aware tracking
    // drops a large share of typestates and SMT constraints.
    let corpus = small(OsProfile::linux());
    let module = corpus.compile().unwrap();
    let outcome = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module);
    let s = &outcome.stats;
    assert!(
        s.typestates_dropped_ratio() > 0.30,
        "typestate reduction too small: {:.2}",
        s.typestates_dropped_ratio()
    );
    assert!(
        s.constraints_dropped_ratio() > 0.55,
        "constraint reduction too small: {:.2}",
        s.constraints_dropped_ratio()
    );
}

#[test]
fn validation_drops_false_bugs() {
    // With validation disabled, reports can only grow.
    let corpus = small(OsProfile::tencent());
    let with =
        AnalysisSession::new(AnalysisConfig::default()).analyze_module(corpus.compile().unwrap());
    let without = AnalysisSession::new(AnalysisConfig {
        validate_paths: false,
        ..AnalysisConfig::default()
    })
    .analyze_module(corpus.compile().unwrap());
    assert!(without.reports.len() >= with.reports.len());
}

#[test]
fn analysis_is_deterministic_across_runs() {
    let corpus = small(OsProfile::zephyr());
    let run = |threads: usize| {
        let outcome = AnalysisSession::new(AnalysisConfig {
            threads,
            ..AnalysisConfig::default()
        })
        .analyze_module(corpus.compile().unwrap());
        let mut keys: Vec<String> = outcome
            .reports
            .iter()
            .map(|r| format!("{}:{}:{}:{}", r.kind, r.file, r.origin_line, r.site_line))
            .collect();
        keys.sort();
        keys
    };
    let a = run(1);
    let b = run(1);
    let c = run(4);
    assert_eq!(a, b);
    assert_eq!(a, c, "parallel analysis must match sequential");
}

#[test]
fn all_checkers_config_finds_extra_bugs() {
    let corpus = small(OsProfile::linux());
    let module = corpus.compile().unwrap();
    let outcome = AnalysisSession::new(AnalysisConfig::all_checkers()).analyze_module(module);
    let score = corpus.manifest.score(&outcome.reports);
    assert_eq!(
        score.missed, 0,
        "with all six checkers every injected bug is found: {:?}",
        score
    );
}

#[test]
fn budget_exhaustion_is_graceful() {
    let corpus = small(OsProfile::linux());
    let module = corpus.compile().unwrap();
    let outcome = AnalysisSession::new(AnalysisConfig {
        budget: pata::core::PathBudget {
            max_paths: 2,
            max_insts: 500,
            max_call_depth: 3,
            ..pata::core::PathBudget::default()
        },
        ..AnalysisConfig::default()
    })
    .analyze_module(module);
    // Tiny budgets must not crash; they simply find fewer bugs.
    assert!(outcome.stats.budget_exhausted_roots > 0);
}

#[test]
fn fp_rate_stable_across_seeds() {
    // The headline FP-rate shape must not be a seed artifact.
    for seed in [7u64, 1234, 98765] {
        let corpus = Corpus::generate(&OsProfile::riot().with_scale(0.3).with_seed(seed));
        let module = corpus.compile().unwrap();
        let outcome = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module);
        let score = corpus.manifest.score(&outcome.reports);
        let fp = score.false_positive_rate();
        assert!(
            (0.0..0.55).contains(&fp),
            "seed {seed}: FP rate {fp:.2} out of plausible band ({score:?})"
        );
        assert_eq!(
            score.missed,
            {
                corpus
                    .manifest
                    .bugs
                    .iter()
                    .filter(|b| !pata::core::BugKind::MAIN.contains(&b.kind))
                    .count()
            },
            "seed {seed}: only extra-checker bugs may be missed by the default config"
        );
    }
}
