//! The mini-C lexer.

use crate::diag::{Diag, DiagKind};
use crate::token::{Token, TokenKind};

/// Lexes mini-C source text into a token stream.
///
/// Handles `//` line comments, `/* */` block comments, string and character
/// literals, decimal and hex integers, and all mini-C punctuation.
///
/// # Example
///
/// ```
/// use pata_cc::{Lexer, TokenKind};
///
/// let tokens = Lexer::new("file.c", "if (p != NULL) { }").lex().unwrap();
/// assert!(matches!(tokens[0].kind, TokenKind::KwIf));
/// assert!(matches!(tokens.last().unwrap().kind, TokenKind::Eof));
/// ```
#[derive(Debug)]
pub struct Lexer<'s> {
    file: String,
    src: &'s [u8],
    pos: usize,
    line: u32,
}

impl<'s> Lexer<'s> {
    /// Creates a lexer over `source`, attributing diagnostics to `file`.
    pub fn new(file: &str, source: &'s str) -> Self {
        Lexer {
            file: file.to_owned(),
            src: source.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn skip_trivia(&mut self) -> Result<(), Diag> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return Err(Diag::new(
                                DiagKind::Lex,
                                &self.file,
                                start,
                                "unterminated block comment",
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                b'#' => {
                    // Preprocessor-style lines are ignored wholesale.
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident_or_kw(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        match text {
            "struct" => TokenKind::KwStruct,
            "int" => TokenKind::KwInt,
            "void" => TokenKind::KwVoid,
            "char" => TokenKind::KwChar,
            "long" => TokenKind::KwLong,
            "unsigned" => TokenKind::KwUnsigned,
            "static" => TokenKind::KwStatic,
            "const" => TokenKind::KwConst,
            "inline" => TokenKind::KwInline,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "goto" => TokenKind::KwGoto,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "NULL" => TokenKind::KwNull,
            "sizeof" => TokenKind::KwSizeof,
            _ => TokenKind::Ident(text.to_owned()),
        }
    }

    fn number(&mut self) -> Result<TokenKind, Diag> {
        let start = self.pos;
        let line = self.line;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).unwrap_or("");
            return i64::from_str_radix(text, 16)
                .map(TokenKind::Int)
                .map_err(|_| Diag::new(DiagKind::Lex, &self.file, line, "bad hex literal"));
        }
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        // Swallow C suffixes (UL, LL, …).
        while matches!(self.peek(), b'u' | b'U' | b'l' | b'L') {
            self.bump();
        }
        let digits_end = self.src[start..self.pos]
            .iter()
            .position(|c| !c.is_ascii_digit())
            .map(|i| start + i)
            .unwrap_or(self.pos);
        let text = std::str::from_utf8(&self.src[start..digits_end]).unwrap_or("");
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| Diag::new(DiagKind::Lex, &self.file, line, "integer literal overflows"))
    }

    fn string(&mut self) -> Result<TokenKind, Diag> {
        let line = self.line;
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                0 => {
                    return Err(Diag::new(
                        DiagKind::Lex,
                        &self.file,
                        line,
                        "unterminated string literal",
                    ))
                }
                b'"' => break,
                b'\\' => {
                    let esc = self.bump();
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                }
                c => out.push(c as char),
            }
        }
        Ok(TokenKind::Str(out))
    }

    /// Lexes the whole input.
    ///
    /// # Errors
    ///
    /// Returns the first lexical error (unterminated comment/string, bad
    /// literal, or an unexpected byte).
    pub fn lex(mut self) -> Result<Vec<Token>, Diag> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let line = self.line;
            let kind = match self.peek() {
                0 => {
                    out.push(Token::new(TokenKind::Eof, line));
                    return Ok(out);
                }
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident_or_kw(),
                c if c.is_ascii_digit() => self.number()?,
                b'"' => self.string()?,
                b'\'' => {
                    // Character literal → its integer value.
                    self.bump();
                    let mut v = self.bump();
                    if v == b'\\' {
                        v = match self.bump() {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'0' => 0,
                            other => other,
                        };
                    }
                    if self.bump() != b'\'' {
                        return Err(Diag::new(
                            DiagKind::Lex,
                            &self.file,
                            line,
                            "unterminated char literal",
                        ));
                    }
                    TokenKind::Int(i64::from(v))
                }
                _ => {
                    let c = self.bump();
                    match c {
                        b'(' => TokenKind::LParen,
                        b')' => TokenKind::RParen,
                        b'{' => TokenKind::LBrace,
                        b'}' => TokenKind::RBrace,
                        b'[' => TokenKind::LBracket,
                        b']' => TokenKind::RBracket,
                        b';' => TokenKind::Semi,
                        b',' => TokenKind::Comma,
                        b'.' => TokenKind::Dot,
                        b':' => TokenKind::Colon,
                        b'~' => TokenKind::Tilde,
                        b'^' => TokenKind::Caret,
                        b'+' => match self.peek() {
                            b'+' => {
                                self.bump();
                                TokenKind::PlusPlus
                            }
                            b'=' => {
                                self.bump();
                                TokenKind::PlusAssign
                            }
                            _ => TokenKind::Plus,
                        },
                        b'-' => match self.peek() {
                            b'-' => {
                                self.bump();
                                TokenKind::MinusMinus
                            }
                            b'=' => {
                                self.bump();
                                TokenKind::MinusAssign
                            }
                            b'>' => {
                                self.bump();
                                TokenKind::Arrow
                            }
                            _ => TokenKind::Minus,
                        },
                        b'*' => TokenKind::Star,
                        b'/' => TokenKind::Slash,
                        b'%' => TokenKind::Percent,
                        b'=' => {
                            if self.peek() == b'=' {
                                self.bump();
                                TokenKind::EqEq
                            } else {
                                TokenKind::Assign
                            }
                        }
                        b'!' => {
                            if self.peek() == b'=' {
                                self.bump();
                                TokenKind::NotEq
                            } else {
                                TokenKind::Not
                            }
                        }
                        b'<' => match self.peek() {
                            b'=' => {
                                self.bump();
                                TokenKind::Le
                            }
                            b'<' => {
                                self.bump();
                                TokenKind::Shl
                            }
                            _ => TokenKind::Lt,
                        },
                        b'>' => match self.peek() {
                            b'=' => {
                                self.bump();
                                TokenKind::Ge
                            }
                            b'>' => {
                                self.bump();
                                TokenKind::Shr
                            }
                            _ => TokenKind::Gt,
                        },
                        b'&' => {
                            if self.peek() == b'&' {
                                self.bump();
                                TokenKind::AndAnd
                            } else {
                                TokenKind::Amp
                            }
                        }
                        b'|' => {
                            if self.peek() == b'|' {
                                self.bump();
                                TokenKind::OrOr
                            } else {
                                TokenKind::Pipe
                            }
                        }
                        other => {
                            return Err(Diag::new(
                                DiagKind::Lex,
                                &self.file,
                                line,
                                format!("unexpected character `{}`", other as char),
                            ))
                        }
                    }
                }
            };
            out.push(Token::new(kind, line));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new("t.c", src)
            .lex()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        let ks = kinds("struct dev probe");
        assert_eq!(
            ks,
            vec![
                TokenKind::KwStruct,
                TokenKind::Ident("dev".into()),
                TokenKind::Ident("probe".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn punctuation_pairs() {
        let ks = kinds("-> != == <= >= && || << >> ++ -- += -=");
        assert_eq!(
            ks,
            vec![
                TokenKind::Arrow,
                TokenKind::NotEq,
                TokenKind::EqEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::PlusPlus,
                TokenKind::MinusMinus,
                TokenKind::PlusAssign,
                TokenKind::MinusAssign,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        let ks = kinds("42 0x1f 7UL");
        assert_eq!(
            ks,
            vec![
                TokenKind::Int(42),
                TokenKind::Int(31),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let ks = kinds("#include <x.h>\n// line\nint /* block\nspanning */ x");
        assert_eq!(
            ks,
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = Lexer::new("t.c", "int\nx\n=\n1;").lex().unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 4, 4, 4]);
    }

    #[test]
    fn string_and_char_literals() {
        let ks = kinds(r#""hi\n" 'a'"#);
        assert_eq!(
            ks,
            vec![
                TokenKind::Str("hi\n".into()),
                TokenKind::Int(97),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(Lexer::new("t.c", "/* oops").lex().is_err());
        assert!(Lexer::new("t.c", "\"oops").lex().is_err());
    }
}
