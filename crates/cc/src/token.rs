//! Tokens of the mini-C language.

use std::fmt;

/// The kind of one lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (`dev`, `probe`, …).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `struct`
    KwStruct,
    /// `int`
    KwInt,
    /// `void`
    KwVoid,
    /// `char` (treated as `int`)
    KwChar,
    /// `long` (treated as `int`)
    KwLong,
    /// `unsigned` (modifier, ignored)
    KwUnsigned,
    /// `static`
    KwStatic,
    /// `const` (ignored qualifier)
    KwConst,
    /// `inline` (ignored qualifier)
    KwInline,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `goto`
    KwGoto,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `NULL`
    KwNull,
    /// `sizeof`
    KwSizeof,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `:`
    Colon,
    /// A string literal (kept only for call arguments like format strings).
    Str(String),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(_) => "string literal".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.literal()),
        }
    }

    fn literal(&self) -> &'static str {
        match self {
            TokenKind::KwStruct => "struct",
            TokenKind::KwInt => "int",
            TokenKind::KwVoid => "void",
            TokenKind::KwChar => "char",
            TokenKind::KwLong => "long",
            TokenKind::KwUnsigned => "unsigned",
            TokenKind::KwStatic => "static",
            TokenKind::KwConst => "const",
            TokenKind::KwInline => "inline",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwWhile => "while",
            TokenKind::KwFor => "for",
            TokenKind::KwReturn => "return",
            TokenKind::KwGoto => "goto",
            TokenKind::KwBreak => "break",
            TokenKind::KwContinue => "continue",
            TokenKind::KwNull => "NULL",
            TokenKind::KwSizeof => "sizeof",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Arrow => "->",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Not => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Tilde => "~",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::PlusPlus => "++",
            TokenKind::MinusMinus => "--",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::Colon => ":",
            _ => "?",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, line: u32) -> Self {
        Token { kind, line }
    }
}
