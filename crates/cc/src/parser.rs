//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::diag::{Diag, DiagKind};
use crate::lexer::Lexer;
use crate::token::{Token, TokenKind};

/// Parses one mini-C translation unit.
///
/// # Example
///
/// ```
/// use pata_cc::Parser;
///
/// let unit = Parser::parse_source("u.c", "int f(int x) { return x + 1; }").unwrap();
/// assert_eq!(unit.functions.len(), 1);
/// assert_eq!(unit.functions[0].name, "f");
/// ```
#[derive(Debug)]
pub struct Parser {
    file: String,
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lexes and parses `source` into a [`Unit`].
    ///
    /// # Errors
    ///
    /// Returns the first lexical or syntactic error.
    pub fn parse_source(file: &str, source: &str) -> Result<Unit, Diag> {
        let tokens = Lexer::new(file, source).lex()?;
        let lines = source.lines().count() as u32;
        let mut parser = Parser {
            file: file.to_owned(),
            tokens,
            pos: 0,
        };
        let mut unit = parser.parse_unit()?;
        unit.lines = lines;
        Ok(unit)
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), Diag> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, Diag> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn err(&self, message: impl Into<String>) -> Diag {
        Diag::new(DiagKind::Parse, &self.file, self.line(), message)
    }

    fn parse_unit(&mut self) -> Result<Unit, Diag> {
        let mut unit = Unit {
            file: self.file.clone(),
            ..Unit::default()
        };
        while self.peek() != &TokenKind::Eof {
            self.parse_top_level(&mut unit)?;
        }
        Ok(unit)
    }

    fn skip_qualifiers(&mut self) {
        while matches!(
            self.peek(),
            TokenKind::KwStatic | TokenKind::KwConst | TokenKind::KwInline | TokenKind::KwUnsigned
        ) {
            self.bump();
        }
    }

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt
                | TokenKind::KwVoid
                | TokenKind::KwChar
                | TokenKind::KwLong
                | TokenKind::KwUnsigned
                | TokenKind::KwStruct
                | TokenKind::KwConst
        )
    }

    /// Parses a base type plus pointer stars.
    fn parse_type(&mut self) -> Result<TypeExpr, Diag> {
        self.skip_qualifiers();
        let base = match self.bump() {
            TokenKind::KwInt | TokenKind::KwChar | TokenKind::KwLong => TypeExpr::Int,
            TokenKind::KwVoid => TypeExpr::Void,
            TokenKind::KwStruct => {
                let name = self.expect_ident()?;
                TypeExpr::Struct(name)
            }
            other => return Err(self.err(format!("expected type, found {other}"))),
        };
        let mut levels = 0;
        loop {
            self.skip_qualifiers();
            if self.eat(&TokenKind::Star) {
                levels += 1;
            } else {
                break;
            }
        }
        Ok(base.with_pointers(levels))
    }

    fn parse_top_level(&mut self, unit: &mut Unit) -> Result<(), Diag> {
        self.skip_qualifiers();
        let line = self.line();
        // struct definition: `struct name { … };`
        if self.peek() == &TokenKind::KwStruct
            && matches!(self.peek_at(1), TokenKind::Ident(_))
            && self.peek_at(2) == &TokenKind::LBrace
        {
            self.bump();
            let name = self.expect_ident()?;
            self.expect(TokenKind::LBrace)?;
            let mut fields = Vec::new();
            while self.peek() != &TokenKind::RBrace {
                let fty = self.parse_type()?;
                let fname = self.expect_ident()?;
                // Fixed-size array fields become the element type (the
                // analysis is array-insensitive anyway).
                if self.eat(&TokenKind::LBracket) {
                    while self.peek() != &TokenKind::RBracket {
                        self.bump();
                    }
                    self.expect(TokenKind::RBracket)?;
                }
                self.expect(TokenKind::Semi)?;
                fields.push((fname, fty));
            }
            self.expect(TokenKind::RBrace)?;
            self.expect(TokenKind::Semi)?;
            unit.structs.push(StructDecl { name, fields, line });
            return Ok(());
        }

        let ty = self.parse_type()?;
        let name = self.expect_ident()?;

        if self.peek() == &TokenKind::LParen {
            // Function definition or prototype.
            self.bump();
            let mut params = Vec::new();
            if self.peek() != &TokenKind::RParen {
                loop {
                    if self.peek() == &TokenKind::KwVoid && self.peek_at(1) == &TokenKind::RParen {
                        self.bump();
                        break;
                    }
                    let pty = self.parse_type()?;
                    let pname = match self.peek() {
                        TokenKind::Ident(_) => self.expect_ident()?,
                        // Unnamed parameter (prototype) — synthesize.
                        _ => format!("__arg{}", params.len()),
                    };
                    if self.eat(&TokenKind::LBracket) {
                        self.expect(TokenKind::RBracket)?;
                    }
                    params.push(ParamDecl {
                        name: pname,
                        ty: pty,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
            if self.eat(&TokenKind::Semi) {
                // Prototype: declaration only, no body — ignore.
                return Ok(());
            }
            self.expect(TokenKind::LBrace)?;
            let body = self.parse_block_body()?;
            unit.functions.push(FuncDecl {
                name,
                ret: ty,
                params,
                body,
                line,
            });
            return Ok(());
        }

        // Global variable, possibly with designated initializers.
        let mut registered = Vec::new();
        if self.eat(&TokenKind::Assign) {
            if self.eat(&TokenKind::LBrace) {
                while self.peek() != &TokenKind::RBrace {
                    if self.eat(&TokenKind::Dot) {
                        let _field = self.expect_ident()?;
                        self.expect(TokenKind::Assign)?;
                        if let TokenKind::Ident(f) = self.peek().clone() {
                            self.bump();
                            registered.push(f);
                        } else {
                            // Non-function initializer value.
                            let _ = self.parse_assignment()?;
                        }
                    } else {
                        let _ = self.parse_assignment()?;
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RBrace)?;
            } else {
                let _ = self.parse_assignment()?;
            }
        }
        self.expect(TokenKind::Semi)?;
        unit.globals.push(GlobalDecl {
            name,
            ty,
            registered_funcs: registered,
            line,
        });
        Ok(())
    }

    /// Parses statements until the closing `}` (which is consumed).
    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, Diag> {
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, Diag> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::LBrace => {
                self.bump();
                let body = self.parse_block_body()?;
                Ok(Stmt::new(StmtKind::Block(body), line))
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.parse_assignment()?;
                self.expect(TokenKind::RParen)?;
                let then_body = self.parse_stmt_as_block()?;
                let else_body = if self.eat(&TokenKind::KwElse) {
                    self.parse_stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::new(
                    StmtKind::If {
                        cond,
                        then_body,
                        else_body,
                    },
                    line,
                ))
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.parse_assignment()?;
                self.expect(TokenKind::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::new(StmtKind::While { cond, body }, line))
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = if self.peek() == &TokenKind::Semi {
                    self.bump();
                    None
                } else {
                    let s = self.parse_simple_stmt()?;
                    self.expect(TokenKind::Semi)?;
                    Some(Box::new(s))
                };
                let cond = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.parse_assignment()?)
                };
                self.expect(TokenKind::Semi)?;
                let step = if self.peek() == &TokenKind::RParen {
                    None
                } else {
                    Some(Box::new(self.parse_simple_stmt()?))
                };
                self.expect(TokenKind::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::new(
                    StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    line,
                ))
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.parse_assignment()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(StmtKind::Return(value), line))
            }
            TokenKind::KwGoto => {
                self.bump();
                let label = self.expect_ident()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(StmtKind::Goto(label), line))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(StmtKind::Break, line))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(StmtKind::Continue, line))
            }
            TokenKind::Ident(_) if self.peek_at(1) == &TokenKind::Colon => {
                let label = self.expect_ident()?;
                self.expect(TokenKind::Colon)?;
                Ok(Stmt::new(StmtKind::Label(label), line))
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::new(StmtKind::Block(Vec::new()), line))
            }
            _ => {
                let s = self.parse_simple_stmt()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>, Diag> {
        if self.eat(&TokenKind::LBrace) {
            self.parse_block_body()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    /// A declaration or expression statement, *without* the trailing `;`
    /// (shared between statement and `for`-clause positions).
    fn parse_simple_stmt(&mut self) -> Result<Stmt, Diag> {
        let line = self.line();
        if self.at_type_start() {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            let mut is_array = false;
            if self.eat(&TokenKind::LBracket) {
                while self.peek() != &TokenKind::RBracket {
                    self.bump();
                }
                self.expect(TokenKind::RBracket)?;
                is_array = true;
            }
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.parse_assignment()?)
            } else {
                None
            };
            return Ok(Stmt::new(
                StmtKind::Decl {
                    ty,
                    name,
                    init,
                    is_array,
                },
                line,
            ));
        }
        let expr = self.parse_assignment()?;
        match expr.kind {
            ExprKind::Assign(lhs, rhs) => Ok(Stmt::new(
                StmtKind::Assign {
                    lhs: *lhs,
                    rhs: *rhs,
                },
                line,
            )),
            _ => Ok(Stmt::new(StmtKind::Expr(expr), line)),
        }
    }

    /// assignment := logical-or (`=` assignment)? | compound/incdec sugar
    fn parse_assignment(&mut self) -> Result<Expr, Diag> {
        let line = self.line();
        let lhs = self.parse_binary(0)?;
        match self.peek() {
            TokenKind::Assign => {
                self.bump();
                let rhs = self.parse_assignment()?;
                Ok(Expr::new(
                    ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
                    line,
                ))
            }
            TokenKind::PlusAssign => {
                self.bump();
                let rhs = self.parse_assignment()?;
                let sum = Expr::new(
                    ExprKind::Bin(AstBinOp::Add, Box::new(lhs.clone()), Box::new(rhs)),
                    line,
                );
                Ok(Expr::new(
                    ExprKind::Assign(Box::new(lhs), Box::new(sum)),
                    line,
                ))
            }
            TokenKind::MinusAssign => {
                self.bump();
                let rhs = self.parse_assignment()?;
                let diff = Expr::new(
                    ExprKind::Bin(AstBinOp::Sub, Box::new(lhs.clone()), Box::new(rhs)),
                    line,
                );
                Ok(Expr::new(
                    ExprKind::Assign(Box::new(lhs), Box::new(diff)),
                    line,
                ))
            }
            TokenKind::PlusPlus => {
                self.bump();
                let one = Expr::new(ExprKind::Int(1), line);
                let sum = Expr::new(
                    ExprKind::Bin(AstBinOp::Add, Box::new(lhs.clone()), Box::new(one)),
                    line,
                );
                Ok(Expr::new(
                    ExprKind::Assign(Box::new(lhs), Box::new(sum)),
                    line,
                ))
            }
            TokenKind::MinusMinus => {
                self.bump();
                let one = Expr::new(ExprKind::Int(1), line);
                let diff = Expr::new(
                    ExprKind::Bin(AstBinOp::Sub, Box::new(lhs.clone()), Box::new(one)),
                    line,
                );
                Ok(Expr::new(
                    ExprKind::Assign(Box::new(lhs), Box::new(diff)),
                    line,
                ))
            }
            _ => Ok(lhs),
        }
    }

    fn binop_at(&self, level: usize) -> Option<AstBinOp> {
        let op = match (level, self.peek()) {
            (0, TokenKind::OrOr) => AstBinOp::LogOr,
            (1, TokenKind::AndAnd) => AstBinOp::LogAnd,
            (2, TokenKind::Pipe) => AstBinOp::BitOr,
            (3, TokenKind::Caret) => AstBinOp::BitXor,
            (4, TokenKind::Amp) => AstBinOp::BitAnd,
            (5, TokenKind::EqEq) => AstBinOp::Eq,
            (5, TokenKind::NotEq) => AstBinOp::Ne,
            (6, TokenKind::Lt) => AstBinOp::Lt,
            (6, TokenKind::Le) => AstBinOp::Le,
            (6, TokenKind::Gt) => AstBinOp::Gt,
            (6, TokenKind::Ge) => AstBinOp::Ge,
            (7, TokenKind::Shl) => AstBinOp::Shl,
            (7, TokenKind::Shr) => AstBinOp::Shr,
            (8, TokenKind::Plus) => AstBinOp::Add,
            (8, TokenKind::Minus) => AstBinOp::Sub,
            (9, TokenKind::Star) => AstBinOp::Mul,
            (9, TokenKind::Slash) => AstBinOp::Div,
            (9, TokenKind::Percent) => AstBinOp::Rem,
            _ => return None,
        };
        Some(op)
    }

    const MAX_LEVEL: usize = 9;

    fn parse_binary(&mut self, level: usize) -> Result<Expr, Diag> {
        if level > Self::MAX_LEVEL {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1)?;
        loop {
            let line = self.line();
            let Some(op) = self.binop_at(level) else {
                break;
            };
            self.bump();
            let rhs = self.parse_binary(level + 1)?;
            lhs = Expr::new(ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, Diag> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Star => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Deref(Box::new(e)), line))
            }
            TokenKind::Amp => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::AddrOf(Box::new(e)), line))
            }
            TokenKind::Not => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Not(Box::new(e)), line))
            }
            TokenKind::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Neg(Box::new(e)), line))
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::BitNot(Box::new(e)), line))
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                // Prefix increment/decrement as statement sugar.
                let is_inc = self.bump() == TokenKind::PlusPlus;
                let e = self.parse_unary()?;
                let one = Expr::new(ExprKind::Int(1), line);
                let op = if is_inc { AstBinOp::Add } else { AstBinOp::Sub };
                let upd = Expr::new(ExprKind::Bin(op, Box::new(e.clone()), Box::new(one)), line);
                Ok(Expr::new(
                    ExprKind::Assign(Box::new(e), Box::new(upd)),
                    line,
                ))
            }
            TokenKind::KwSizeof => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    // sizeof(type) or sizeof(expr) — skip to matching paren.
                    let mut depth = 1;
                    while depth > 0 {
                        match self.bump() {
                            TokenKind::LParen => depth += 1,
                            TokenKind::RParen => depth -= 1,
                            TokenKind::Eof => return Err(self.err("unterminated sizeof")),
                            _ => {}
                        }
                    }
                } else {
                    let _ = self.parse_unary()?;
                }
                Ok(Expr::new(ExprKind::Sizeof, line))
            }
            TokenKind::LParen if self.is_cast_start() => {
                self.bump();
                let ty = self.parse_type()?;
                self.expect(TokenKind::RParen)?;
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Cast(ty, Box::new(e)), line))
            }
            _ => self.parse_postfix(),
        }
    }

    /// Whether the upcoming `(`-token starts a cast like `(struct s *)`.
    fn is_cast_start(&self) -> bool {
        debug_assert_eq!(self.peek(), &TokenKind::LParen);
        matches!(
            self.peek_at(1),
            TokenKind::KwInt
                | TokenKind::KwVoid
                | TokenKind::KwChar
                | TokenKind::KwLong
                | TokenKind::KwUnsigned
                | TokenKind::KwStruct
                | TokenKind::KwConst
        )
    }

    fn parse_postfix(&mut self) -> Result<Expr, Diag> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                TokenKind::Arrow => {
                    self.bump();
                    let field = self.expect_ident()?;
                    e = Expr::new(ExprKind::Arrow(Box::new(e), field), line);
                }
                TokenKind::Dot => {
                    self.bump();
                    let field = self.expect_ident()?;
                    e = Expr::new(ExprKind::Dot(Box::new(e), field), line);
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.parse_assignment()?;
                    self.expect(TokenKind::RBracket)?;
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), line);
                }
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.parse_assignment()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    e = Expr::new(ExprKind::Call(Box::new(e), args), line);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, Diag> {
        let line = self.line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::new(ExprKind::Int(v), line)),
            TokenKind::KwNull => Ok(Expr::new(ExprKind::Null, line)),
            TokenKind::Str(s) => Ok(Expr::new(ExprKind::Str(s), line)),
            TokenKind::Ident(name) => Ok(Expr::new(ExprKind::Ident(name), line)),
            TokenKind::LParen => {
                let e = self.parse_assignment()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(Diag::new(
                DiagKind::Parse,
                &self.file,
                line,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Unit {
        Parser::parse_source("t.c", src).unwrap()
    }

    #[test]
    fn struct_definition() {
        let u = parse("struct dev { int *data; struct dev *next; };");
        assert_eq!(u.structs.len(), 1);
        assert_eq!(u.structs[0].fields.len(), 2);
        assert_eq!(
            u.structs[0].fields[1].1,
            TypeExpr::Ptr(Box::new(TypeExpr::Struct("dev".into())))
        );
    }

    #[test]
    fn driver_registration_global() {
        let u = parse(
            "static struct platform_driver s5p_mfc_driver = {\
              .probe = s5p_mfc_probe, .remove = s5p_mfc_remove };",
        );
        assert_eq!(u.globals.len(), 1);
        assert_eq!(
            u.globals[0].registered_funcs,
            vec!["s5p_mfc_probe", "s5p_mfc_remove"]
        );
    }

    #[test]
    fn function_with_control_flow() {
        let u = parse(
            "int f(struct a *p, int n) {\n\
               int i;\n\
               for (i = 0; i < n; i++) {\n\
                 if (p->data == NULL) { goto fail; }\n\
               }\n\
               return 0;\n\
             fail:\n\
               return -1;\n\
             }",
        );
        assert_eq!(u.functions.len(), 1);
        let f = &u.functions[0];
        assert_eq!(f.params.len(), 2);
        assert!(matches!(f.body[1].kind, StmtKind::For { .. }));
        assert!(matches!(f.body[3].kind, StmtKind::Label(_)));
    }

    #[test]
    fn prototypes_are_skipped() {
        let u = parse("int declared_only(int x);\nint real(void) { return 0; }");
        assert_eq!(u.functions.len(), 1);
        assert_eq!(u.functions[0].name, "real");
    }

    #[test]
    fn expression_forms() {
        let u = parse(
            "int f(struct s *p, int *a, int i) {\n\
               int x = p->f + a[i] * 2;\n\
               x += *a;\n\
               x = (int)x << 3 & 7;\n\
               if (!p || p->g != NULL && x >= 0) { x = -x; }\n\
               return sizeof(struct s) + x;\n\
             }",
        );
        assert_eq!(u.functions.len(), 1);
    }

    #[test]
    fn assign_in_condition() {
        let u =
            parse("int g(void) { int *m; if ((m = alloc(4)) == NULL) { return -1; } return 0; }");
        let f = &u.functions[0];
        assert!(matches!(f.body[1].kind, StmtKind::If { .. }));
    }

    #[test]
    fn increments_desugar_to_assign() {
        let u = parse("void f(void) { int i = 0; i++; --i; i += 2; }");
        let f = &u.functions[0];
        assert!(f.body[1..]
            .iter()
            .all(|s| matches!(s.kind, StmtKind::Assign { .. })));
    }

    #[test]
    fn error_reports_line() {
        let err = Parser::parse_source("t.c", "int f(void) {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn line_count_recorded() {
        let u = parse("int f(void)\n{\n return 0;\n}\n");
        assert_eq!(u.lines, 4);
    }
}
