//! # pata-cc — a mini-C front-end for the PATA pipeline
//!
//! The paper's phase P1 compiles OS source with Clang 9 into LLVM bytecode
//! and records function information in a database for cross-file
//! interprocedural analysis (§4). This crate plays that role for *mini-C*,
//! a C subset rich enough to express every pattern the paper's analysis and
//! case studies rely on:
//!
//! * structs with named fields, pointers, arrays and globals;
//! * field access chains (`model->user_data`, `(&obj->knl_obj)->type`);
//! * `if`/`else`, `while`, `for`, `goto`/labels, `break`/`continue`,
//!   short-circuit `&&`/`||`;
//! * calls, address-of, dereference;
//! * OS idioms: `malloc`/`kmalloc`/`kzalloc`/`free`/`kfree`, `memset`,
//!   `spin_lock`/`spin_unlock`/`mutex_lock`/`mutex_unlock`;
//! * **function-pointer registration structs** (`.probe = s5p_mfc_probe`)
//!   that create *module interface functions* with no explicit caller —
//!   the pattern behind the paper's difficulty D1.
//!
//! All added sources are compiled into one [`pata_ir::Module`], so direct
//! calls resolve across files exactly as PATA's information collector
//! enables.
//!
//! # Example
//!
//! ```
//! use pata_cc::Compiler;
//!
//! let mut cc = Compiler::new();
//! cc.add_source(
//!     "demo.c",
//!     r#"
//!     struct dev { int *data; };
//!     int read_dev(struct dev *d) {
//!         if (d->data == NULL)
//!             return -1;
//!         return *d->data;
//!     }
//!     "#,
//! );
//! let module = cc.compile().expect("compiles");
//! assert!(module.function_by_name("read_dev").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod diag;
mod lexer;
mod lower;
mod parser;
mod token;

pub use ast::*;
pub use diag::{Diag, DiagKind};
pub use lexer::Lexer;
pub use lower::Compiler;
pub use parser::Parser;
pub use token::{Token, TokenKind};

/// Compiles a single mini-C source string into a fresh module.
///
/// Convenience wrapper over [`Compiler`] for tests and examples.
///
/// # Errors
///
/// Returns the accumulated diagnostics if the source does not parse or
/// lower cleanly.
pub fn compile_one(name: &str, source: &str) -> Result<pata_ir::Module, Vec<Diag>> {
    let mut cc = Compiler::new();
    cc.add_source(name, source);
    cc.compile()
}
