//! Lowering from the mini-C AST to PIR.
//!
//! The [`Compiler`] gathers any number of source files, parses them, merges
//! struct definitions and function signatures across files (the paper's
//! "information collector" making inter-procedural analysis possible across
//! source files, §4 P1), and lowers every function body to PIR.
//!
//! Lowering conventions:
//!
//! * `p->f` reads become `GEP` + `LOAD`; `p->f = e` becomes `GEP` + `STORE`
//!   — exactly the instruction shapes PATA's alias rules consume (Fig. 5).
//! * Struct-valued locals are modeled as a pointer to fresh storage (their
//!   `Alloca`), so `s.f` is `GEP` on that pointer.
//! * `&&`/`||` in branch conditions become short-circuit CFG; in value
//!   position they degrade to bitwise operators (sound for the checkers).
//! * OS allocation/locking idioms (`kmalloc`, `kzalloc`, `kfree`,
//!   `spin_lock`, …) lower to dedicated PIR instructions so the typestate
//!   checkers see canonical events.

use crate::ast::*;
use crate::diag::{Diag, DiagKind};
use crate::parser::Parser;
use pata_ir::{
    BinOp, BlockId, Callee, Category, CmpOp, ConstVal, FileId, FuncId, FunctionBuilder, Module,
    Operand, StructDef, Type, VarId,
};
use std::collections::{HashMap, HashSet};

/// Compiles a set of mini-C sources into one [`Module`].
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Default)]
pub struct Compiler {
    sources: Vec<(String, String, Option<Category>)>,
}

impl Compiler {
    /// Creates an empty compiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a source file; its category is inferred from the path prefix
    /// (`drivers/` → drivers, `net/` → network, `fs/` → filesystem,
    /// `subsys/` → subsystem, `third_party/` → third-party, `kernel/` →
    /// core-kernel).
    pub fn add_source(&mut self, name: &str, text: &str) {
        self.sources.push((name.to_owned(), text.to_owned(), None));
    }

    /// Adds a source file with an explicit category.
    pub fn add_source_with_category(&mut self, name: &str, text: &str, category: Category) {
        self.sources
            .push((name.to_owned(), text.to_owned(), Some(category)));
    }

    /// Number of added sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Parses and lowers all sources.
    ///
    /// # Errors
    ///
    /// Returns every diagnostic collected across all files; the module is
    /// only produced when the whole program is clean.
    pub fn compile(self) -> Result<Module, Vec<Diag>> {
        let mut diags = Vec::new();
        let mut units = Vec::new();
        for (name, text, category) in &self.sources {
            match Parser::parse_source(name, text) {
                Ok(unit) => units.push((unit, *category)),
                Err(d) => diags.push(d),
            }
        }
        if !diags.is_empty() {
            return Err(diags);
        }

        let mut module = Module::new();
        let mut files = Vec::new();
        for (unit, category) in &units {
            let cat = category.unwrap_or_else(|| infer_category(&unit.file));
            files.push(module.add_file_with_meta(&unit.file, unit.lines, cat));
        }

        // Pass 1: declare all struct names (allows recursive/forward refs),
        // then fill in fields.
        for (unit, _) in &units {
            for s in &unit.structs {
                if module.struct_by_name(&s.name).is_none() {
                    module.add_struct(StructDef {
                        name: s.name.clone(),
                        fields: Vec::new(),
                    });
                }
            }
        }
        for (unit, _) in &units {
            for s in &unit.structs {
                let fields: Vec<_> = s
                    .fields
                    .iter()
                    .map(|(fname, fty)| {
                        let sym = module.interner.intern(fname);
                        let ty = resolve_type(&mut module, fty);
                        (sym, ty)
                    })
                    .collect();
                module.add_struct(StructDef {
                    name: s.name.clone(),
                    fields,
                });
            }
        }

        // Pass 2: globals.
        let mut globals: HashMap<String, VarId> = HashMap::new();
        let mut registered: HashSet<String> = HashSet::new();
        for (unit, _) in &units {
            for g in &unit.globals {
                let ty = resolve_type(&mut module, &g.ty);
                let id = module.add_global(&g.name, ty);
                globals.insert(g.name.clone(), id);
                registered.extend(g.registered_funcs.iter().cloned());
            }
        }

        // Pass 3: assign function ids in declaration order so direct calls
        // across files resolve (the information collector's database).
        let mut func_ids: HashMap<String, FuncId> = HashMap::new();
        let mut all_funcs: Vec<(usize, &FuncDecl, FileId, Category)> = Vec::new();
        for ((unit, category), &file) in units.iter().zip(&files) {
            let cat = category.unwrap_or_else(|| infer_category(&unit.file));
            for f in &unit.functions {
                if func_ids.contains_key(&f.name) {
                    diags.push(Diag::new(
                        DiagKind::Sema,
                        &unit.file,
                        f.line,
                        format!("duplicate definition of function `{}`", f.name),
                    ));
                    continue;
                }
                func_ids.insert(f.name.clone(), FuncId::from_index(all_funcs.len()));
                all_funcs.push((all_funcs.len(), f, file, cat));
            }
        }
        if !diags.is_empty() {
            return Err(diags);
        }

        // Pass 4: lower bodies in id order.
        for (idx, decl, file, cat) in &all_funcs {
            let lowerer = LowerFn::new(
                &mut module,
                decl,
                *file,
                *cat,
                &func_ids,
                &globals,
                &mut diags,
            );
            let got = lowerer.lower();
            debug_assert_eq!(got.index(), *idx);
        }
        if !diags.is_empty() {
            return Err(diags);
        }
        Ok(module)
    }
}

fn infer_category(path: &str) -> Category {
    let p = path.trim_start_matches('/');
    if p.starts_with("drivers/") {
        Category::Drivers
    } else if p.starts_with("net/") {
        Category::Network
    } else if p.starts_with("fs/") {
        Category::Filesystem
    } else if p.starts_with("subsys/") {
        Category::Subsystem
    } else if p.starts_with("third_party/") || p.starts_with("thirdparty/") {
        Category::ThirdParty
    } else if p.starts_with("kernel/") || p.starts_with("core/") {
        Category::CoreKernel
    } else {
        Category::Other
    }
}

fn resolve_type(module: &mut Module, t: &TypeExpr) -> Type {
    match t {
        TypeExpr::Int => Type::Int,
        TypeExpr::Void => Type::Void,
        TypeExpr::Struct(name) => {
            let id = module.struct_by_name(name).unwrap_or_else(|| {
                module.add_struct(StructDef {
                    name: name.clone(),
                    fields: Vec::new(),
                })
            });
            Type::Struct(id)
        }
        TypeExpr::Ptr(inner) => Type::ptr(resolve_type(module, inner)),
    }
}

/// Per-function lowering state.
struct LowerFn<'a, 'm> {
    b: FunctionBuilder<'m>,
    file: String,
    decl: &'a FuncDecl,
    func_ids: &'a HashMap<String, FuncId>,
    globals: &'a HashMap<String, VarId>,
    diags: &'a mut Vec<Diag>,
    scopes: Vec<HashMap<String, VarId>>,
    /// Locals declared as struct *values*: the VarId is the address of the
    /// storage, so `&x` is the variable itself.
    struct_locals: HashSet<VarId>,
    labels: HashMap<String, BlockId>,
    loop_stack: Vec<(BlockId, BlockId)>, // (continue target, break target)
}

impl<'a, 'm> LowerFn<'a, 'm> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        module: &'m mut Module,
        decl: &'a FuncDecl,
        file: FileId,
        category: Category,
        func_ids: &'a HashMap<String, FuncId>,
        globals: &'a HashMap<String, VarId>,
        diags: &'a mut Vec<Diag>,
    ) -> Self {
        let file_name = module.file(file).name.clone();
        let mut b = FunctionBuilder::new(module, &decl.name, file);
        b.set_category(category);
        LowerFn {
            b,
            file: file_name,
            decl,
            func_ids,
            globals,
            diags,
            scopes: vec![HashMap::new()],
            struct_locals: HashSet::new(),
            labels: HashMap::new(),
            loop_stack: Vec::new(),
        }
    }

    fn error(&mut self, line: u32, msg: impl Into<String>) {
        self.diags
            .push(Diag::new(DiagKind::Sema, &self.file, line, msg));
    }

    fn lower(mut self) -> FuncId {
        let ret = resolve_type(self.b.module(), &self.decl.ret);
        self.b.set_ret_ty(ret);
        for p in &self.decl.params.clone() {
            let ty = resolve_type(self.b.module(), &p.ty);
            let v = self.b.param(&p.name, ty);
            self.scopes[0].insert(p.name.clone(), v);
        }
        let body = self.decl.body.clone();
        self.lower_stmts(&body);
        if !self.b.is_terminated() {
            let line = body.last().map(|s| s.line).unwrap_or(self.decl.line);
            self.b.ret(None, line);
        }
        self.b.finish()
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        for scope in self.scopes.iter().rev() {
            if let Some(&v) = scope.get(name) {
                return Some(v);
            }
        }
        self.globals.get(name).copied()
    }

    fn var_ty(&mut self, v: VarId) -> Type {
        self.b.module().var(v).ty.clone()
    }

    /// Materializes an operand into a variable.
    fn as_var(&mut self, op: Operand, ty: Type, line: u32) -> VarId {
        match op {
            Operand::Var(v) => v,
            Operand::Const(c) => {
                let t = self.b.temp(ty);
                self.b.assign_const(t, c, line);
                t
            }
        }
    }

    /// Infers the static type of an expression (best effort; defaults keep
    /// lowering tolerant rather than precise).
    fn infer_ty(&mut self, e: &Expr) -> Type {
        match &e.kind {
            ExprKind::Int(_) | ExprKind::Sizeof => Type::Int,
            ExprKind::Null => Type::ptr(Type::Void),
            ExprKind::Str(_) => Type::ptr(Type::Int),
            ExprKind::Ident(name) => self
                .lookup(name)
                .map(|v| self.var_ty(v))
                .unwrap_or(Type::Int),
            ExprKind::Arrow(base, field) => {
                let bt = self.infer_ty(base);
                self.field_ty(&bt, field)
            }
            ExprKind::Dot(base, field) => {
                let bt = self.infer_ty(base);
                self.field_ty(&bt, field)
            }
            ExprKind::Index(base, _) => {
                let bt = self.infer_ty(base);
                bt.element().cloned().unwrap_or(Type::Int)
            }
            ExprKind::Deref(inner) => {
                let it = self.infer_ty(inner);
                it.pointee().cloned().unwrap_or(Type::Int)
            }
            ExprKind::AddrOf(inner) => Type::ptr(self.infer_ty(inner)),
            ExprKind::Not(_) | ExprKind::BitNot(_) => Type::Int,
            ExprKind::Neg(_) => Type::Int,
            ExprKind::Bin(op, lhs, _) => {
                if op.is_comparison() || op.is_logical() {
                    Type::Bool
                } else {
                    self.infer_ty(lhs)
                }
            }
            ExprKind::Call(callee, _) => {
                if let ExprKind::Ident(name) = &callee.kind {
                    match name.as_str() {
                        "malloc" | "kmalloc" | "kzalloc" | "vmalloc" => {
                            return Type::ptr(Type::Void)
                        }
                        _ => {}
                    }
                    if let Some(&fid) = self.func_ids.get(name) {
                        if fid.index() < self.b.module().functions().len() {
                            return self.b.module().function(fid).ret_ty().clone();
                        }
                        // Not lowered yet — fall back to the declared AST type
                        // is unavailable here; assume pointer-sized int.
                        return Type::Int;
                    }
                }
                Type::Int
            }
            ExprKind::Cast(ty, _) => {
                let t = ty.clone();
                resolve_type(self.b.module(), &t)
            }
            ExprKind::Assign(_, rhs) => self.infer_ty(rhs),
        }
    }

    fn field_ty(&mut self, base_ty: &Type, field: &str) -> Type {
        if let Some(sid) = base_ty.struct_id() {
            let sym = self.b.module().interner.intern(field);
            if let Some(t) = self.b.module().struct_def(sid).field_ty(sym) {
                return t.clone();
            }
        }
        Type::Int
    }

    /// The constant that means "zero/false/null" for a comparison against
    /// the value of `e`.
    fn zero_for(&mut self, e: &Expr) -> ConstVal {
        if self.infer_ty(e).is_pointer() {
            ConstVal::Null
        } else {
            ConstVal::Int(0)
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.lower_stmt(s);
        }
    }

    fn label_block(&mut self, name: &str) -> BlockId {
        if let Some(&b) = self.labels.get(name) {
            return b;
        }
        let b = self.b.new_block();
        self.labels.insert(name.to_owned(), b);
        b
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        let line = s.line;
        match &s.kind {
            StmtKind::Decl {
                ty,
                name,
                init,
                is_array,
            } => {
                let resolved = resolve_type(self.b.module(), ty);
                let (var_ty, is_struct_value) = if *is_array {
                    (Type::array(resolved), false)
                } else if matches!(resolved, Type::Struct(_)) {
                    (Type::ptr(resolved), true)
                } else {
                    (resolved, false)
                };
                let v = self.b.local(name, var_ty);
                self.scopes.last_mut().unwrap().insert(name.clone(), v);
                if is_struct_value {
                    self.struct_locals.insert(v);
                    // The storage itself is fresh and uninitialized.
                    self.b.alloca(v, true, line);
                    return;
                }
                match init {
                    Some(e) => {
                        let rv = self.lower_expr(e);
                        self.assign_into_var(v, rv, line);
                    }
                    None => {
                        if !*is_array {
                            self.b.alloca(v, false, line);
                        }
                    }
                }
            }
            StmtKind::Assign { lhs, rhs } => self.lower_assign(lhs, rhs, line),
            StmtKind::Expr(e) => {
                let _ = self.lower_expr(e);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let then_bb = self.b.new_block();
                let else_bb = self.b.new_block();
                let join = self.b.new_block();
                self.lower_cond(cond, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.scoped(|this| this.lower_stmts(then_body));
                self.b.jump(join, line);
                self.b.switch_to(else_bb);
                self.scoped(|this| this.lower_stmts(else_body));
                self.b.jump(join, line);
                self.b.switch_to(join);
            }
            StmtKind::While { cond, body } => {
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.jump(header, line);
                self.b.switch_to(header);
                self.lower_cond(cond, body_bb, exit);
                self.b.switch_to(body_bb);
                self.loop_stack.push((header, exit));
                self.scoped(|this| this.lower_stmts(body));
                self.loop_stack.pop();
                self.b.jump(header, line);
                self.b.switch_to(exit);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(i);
                }
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let step_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.jump(header, line);
                self.b.switch_to(header);
                match cond {
                    Some(c) => self.lower_cond(c, body_bb, exit),
                    None => self.b.jump(body_bb, line),
                }
                self.b.switch_to(body_bb);
                self.loop_stack.push((step_bb, exit));
                self.scoped(|this| this.lower_stmts(body));
                self.loop_stack.pop();
                self.b.jump(step_bb, line);
                self.b.switch_to(step_bb);
                if let Some(st) = step {
                    self.lower_stmt(st);
                }
                self.b.jump(header, line);
                self.b.switch_to(exit);
                self.scopes.pop();
            }
            StmtKind::Return(value) => {
                let op = value.as_ref().map(|e| self.lower_expr(e));
                self.b.ret(op, line);
            }
            StmtKind::Goto(label) => {
                let target = self.label_block(label);
                self.b.jump(target, line);
            }
            StmtKind::Label(label) => {
                let target = self.label_block(label);
                self.b.jump(target, line);
                self.b.switch_to(target);
            }
            StmtKind::Break => match self.loop_stack.last() {
                Some(&(_, exit)) => self.b.jump(exit, line),
                None => self.error(line, "`break` outside of a loop"),
            },
            StmtKind::Continue => match self.loop_stack.last() {
                Some(&(cont, _)) => self.b.jump(cont, line),
                None => self.error(line, "`continue` outside of a loop"),
            },
            StmtKind::Block(body) => self.scoped(|this| this.lower_stmts(body)),
        }
    }

    fn scoped(&mut self, f: impl FnOnce(&mut Self)) {
        self.scopes.push(HashMap::new());
        f(self);
        self.scopes.pop();
    }

    fn assign_into_var(&mut self, dst: VarId, rv: Operand, line: u32) {
        match rv {
            Operand::Var(v) => self.b.mov(dst, v, line),
            Operand::Const(c) => self.b.assign_const(dst, c, line),
        }
    }

    fn lower_assign(&mut self, lhs: &Expr, rhs: &Expr, line: u32) {
        match &lhs.kind {
            ExprKind::Ident(name) => {
                let Some(v) = self.lookup(name) else {
                    self.error(line, format!("assignment to unknown variable `{name}`"));
                    return;
                };
                if self.struct_locals.contains(&v) {
                    // Struct copy — out of scope for mini-C; treat as memset.
                    let _ = self.lower_expr(rhs);
                    self.b.memset(v, line);
                    return;
                }
                let rv = self.lower_expr(rhs);
                self.assign_into_var(v, rv, line);
            }
            ExprKind::Deref(inner) => {
                let pv = self.lower_expr_as_var(inner);
                let rv = self.lower_expr(rhs);
                self.b.store(pv, rv, line);
            }
            ExprKind::Arrow(base, field) => {
                let addr = self.lower_field_addr_arrow(base, field, line);
                let rv = self.lower_expr(rhs);
                self.b.store(addr, rv, line);
            }
            ExprKind::Dot(base, field) => {
                let addr = self.lower_field_addr_dot(base, field, line);
                let rv = self.lower_expr(rhs);
                self.b.store(addr, rv, line);
            }
            ExprKind::Index(base, idx) => {
                let addr = self.lower_index_addr(base, idx, line);
                let rv = self.lower_expr(rhs);
                self.b.store(addr, rv, line);
            }
            _ => self.error(line, "unsupported assignment target"),
        }
    }

    // ------------------------------------------------------------------
    // Addresses of lvalues
    // ------------------------------------------------------------------

    /// `&base->field`.
    fn lower_field_addr_arrow(&mut self, base: &Expr, field: &str, line: u32) -> VarId {
        let bv = self.lower_expr_as_var(base);
        let fty = {
            let bt = self.var_ty(bv);
            self.field_ty(&bt, field)
        };
        let sym = self.b.module().interner.intern(field);
        let t = self.b.temp(Type::ptr(fty));
        self.b.gep(t, bv, sym, line);
        t
    }

    /// `&base.field` — base must itself be addressable.
    fn lower_field_addr_dot(&mut self, base: &Expr, field: &str, line: u32) -> VarId {
        let addr = self.lower_addr(base, line);
        let fty = {
            let bt = self.var_ty(addr);
            self.field_ty(&bt, field)
        };
        let sym = self.b.module().interner.intern(field);
        let t = self.b.temp(Type::ptr(fty));
        self.b.gep(t, addr, sym, line);
        t
    }

    /// `&base[idx]`.
    fn lower_index_addr(&mut self, base: &Expr, idx: &Expr, line: u32) -> VarId {
        let bv = self.lower_expr_as_var(base);
        let ety = {
            let bt = self.var_ty(bv);
            bt.element().cloned().unwrap_or(Type::Int)
        };
        let iv = self.lower_expr(idx);
        let t = self.b.temp(Type::ptr(ety));
        self.b.index(t, bv, iv, line);
        t
    }

    /// The address of an lvalue expression (`&e`).
    fn lower_addr(&mut self, e: &Expr, line: u32) -> VarId {
        match &e.kind {
            ExprKind::Ident(name) => {
                let Some(v) = self.lookup(name) else {
                    self.error(line, format!("address of unknown variable `{name}`"));
                    return self.b.temp(Type::ptr(Type::Int));
                };
                if self.struct_locals.contains(&v) {
                    // Struct-value locals *are* their own address.
                    v
                } else {
                    let ty = Type::ptr(self.var_ty(v));
                    let t = self.b.temp(ty);
                    self.b.addr_of(t, v, line);
                    t
                }
            }
            ExprKind::Arrow(base, field) => self.lower_field_addr_arrow(base, field, line),
            ExprKind::Dot(base, field) => self.lower_field_addr_dot(base, field, line),
            ExprKind::Index(base, idx) => self.lower_index_addr(base, idx, line),
            ExprKind::Deref(inner) => self.lower_expr_as_var(inner),
            _ => {
                self.error(line, "cannot take the address of this expression");
                self.b.temp(Type::ptr(Type::Int))
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn lower_expr_as_var(&mut self, e: &Expr) -> VarId {
        let ty = self.infer_ty(e);
        let op = self.lower_expr(e);
        self.as_var(op, ty, e.line)
    }

    fn lower_expr(&mut self, e: &Expr) -> Operand {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v) => Operand::Const(ConstVal::Int(*v)),
            ExprKind::Null => Operand::Const(ConstVal::Null),
            // A string argument is an opaque non-null pointer.
            ExprKind::Str(_) => Operand::Const(ConstVal::Int(1)),
            ExprKind::Sizeof => Operand::Const(ConstVal::Int(8)),
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(v) => Operand::Var(v),
                None => {
                    if let Some(&fid) = self.func_ids.get(name) {
                        // Function used as a value: a first-class function
                        // address (runtime callback registration). The
                        // analysis may resolve indirect calls through it
                        // (the paper's §7 extension).
                        let t = self.b.temp(Type::ptr(Type::Void));
                        self.b.func_addr(t, fid, line);
                        Operand::Var(t)
                    } else {
                        // Unknown identifiers (extern macros/constants like
                        // GFP_KERNEL) are opaque integers.
                        Operand::Const(ConstVal::Int(1))
                    }
                }
            },
            ExprKind::Arrow(base, field) => {
                let addr = self.lower_field_addr_arrow(base, field, line);
                let vty = self.var_ty(addr).pointee().cloned().unwrap_or(Type::Int);
                let r = self.b.temp(vty);
                self.b.load(r, addr, line);
                Operand::Var(r)
            }
            ExprKind::Dot(base, field) => {
                let addr = self.lower_field_addr_dot(base, field, line);
                let vty = self.var_ty(addr).pointee().cloned().unwrap_or(Type::Int);
                let r = self.b.temp(vty);
                self.b.load(r, addr, line);
                Operand::Var(r)
            }
            ExprKind::Index(base, idx) => {
                let addr = self.lower_index_addr(base, idx, line);
                let vty = self.var_ty(addr).pointee().cloned().unwrap_or(Type::Int);
                let r = self.b.temp(vty);
                self.b.load(r, addr, line);
                Operand::Var(r)
            }
            ExprKind::Deref(inner) => {
                let pv = self.lower_expr_as_var(inner);
                let vty = self.var_ty(pv).pointee().cloned().unwrap_or(Type::Int);
                let r = self.b.temp(vty);
                self.b.load(r, pv, line);
                Operand::Var(r)
            }
            ExprKind::AddrOf(inner) => Operand::Var(self.lower_addr(inner, line)),
            ExprKind::Not(inner) => {
                let zero = self.zero_for(inner);
                let iv = self.lower_expr(inner);
                let r = self.b.temp(Type::Bool);
                self.b.cmp(r, CmpOp::Eq, iv, zero, line);
                Operand::Var(r)
            }
            ExprKind::Neg(inner) => {
                let iv = self.lower_expr(inner);
                if let Operand::Const(ConstVal::Int(v)) = iv {
                    return Operand::Const(ConstVal::Int(-v));
                }
                let r = self.b.temp(Type::Int);
                self.b.bin(r, BinOp::Sub, 0i64, iv, line);
                Operand::Var(r)
            }
            ExprKind::BitNot(inner) => {
                let iv = self.lower_expr(inner);
                let r = self.b.temp(Type::Int);
                self.b.bin(r, BinOp::Xor, iv, -1i64, line);
                Operand::Var(r)
            }
            ExprKind::Bin(op, lhs, rhs) => self.lower_binop(*op, lhs, rhs, line),
            ExprKind::Call(callee, args) => self.lower_call(callee, args, line),
            ExprKind::Cast(_, inner) => self.lower_expr(inner),
            ExprKind::Assign(lhs, rhs) => {
                self.lower_assign(lhs, rhs, line);
                // The value of the assignment is the assigned lvalue.
                self.lower_expr(lhs)
            }
        }
    }

    fn lower_binop(&mut self, op: AstBinOp, lhs: &Expr, rhs: &Expr, line: u32) -> Operand {
        let ir_op = match op {
            AstBinOp::Add => Some(BinOp::Add),
            AstBinOp::Sub => Some(BinOp::Sub),
            AstBinOp::Mul => Some(BinOp::Mul),
            AstBinOp::Div => Some(BinOp::Div),
            AstBinOp::Rem => Some(BinOp::Rem),
            AstBinOp::BitAnd | AstBinOp::LogAnd => Some(BinOp::And),
            AstBinOp::BitOr | AstBinOp::LogOr => Some(BinOp::Or),
            AstBinOp::BitXor => Some(BinOp::Xor),
            AstBinOp::Shl => Some(BinOp::Shl),
            AstBinOp::Shr => Some(BinOp::Shr),
            _ => None,
        };
        if let Some(bop) = ir_op {
            let lv = self.lower_expr(lhs);
            let rv = self.lower_expr(rhs);
            let r = self.b.temp(Type::Int);
            self.b.bin(r, bop, lv, rv, line);
            return Operand::Var(r);
        }
        let cmp = match op {
            AstBinOp::Eq => CmpOp::Eq,
            AstBinOp::Ne => CmpOp::Ne,
            AstBinOp::Lt => CmpOp::Lt,
            AstBinOp::Le => CmpOp::Le,
            AstBinOp::Gt => CmpOp::Gt,
            AstBinOp::Ge => CmpOp::Ge,
            _ => unreachable!("handled above"),
        };
        let lv = self.lower_expr(lhs);
        let rv = self.lower_expr(rhs);
        let r = self.b.temp(Type::Bool);
        self.b.cmp(r, cmp, lv, rv, line);
        Operand::Var(r)
    }

    fn lower_call(&mut self, callee: &Expr, args: &[Expr], line: u32) -> Operand {
        // A call through a *variable* (function pointer held in a local,
        // parameter or global) is indirect, even when the spelling looks
        // like a plain identifier call.
        if let ExprKind::Ident(name) = &callee.kind {
            if self.lookup(name).is_some() {
                let target = self.lower_expr_as_var(callee);
                let arg_ops: Vec<Operand> = args.iter().map(|a| self.lower_expr(a)).collect();
                let dst = self.b.temp(Type::Int);
                self.b
                    .call(Some(dst), Callee::Indirect(target), arg_ops, line);
                return Operand::Var(dst);
            }
        }
        if let ExprKind::Ident(name) = &callee.kind {
            // OS allocation / locking idioms become dedicated instructions.
            match name.as_str() {
                "malloc" | "kmalloc" | "vmalloc" | "tos_mmheap_alloc" => {
                    for a in args {
                        let _ = self.lower_expr(a);
                    }
                    let t = self.b.temp(Type::ptr(Type::Void));
                    self.b.malloc(t, line);
                    return Operand::Var(t);
                }
                "kzalloc" | "calloc" | "devm_kzalloc" => {
                    for a in args {
                        let _ = self.lower_expr(a);
                    }
                    let t = self.b.temp(Type::ptr(Type::Void));
                    self.b.malloc(t, line);
                    self.b.memset(t, line);
                    return Operand::Var(t);
                }
                "free" | "kfree" | "vfree" | "tos_mmheap_free" => {
                    if let Some(a) = args.first() {
                        let v = self.lower_expr_as_var(a);
                        self.b.free(v, line);
                    }
                    return Operand::Const(ConstVal::Int(0));
                }
                "memset" | "memcpy" | "memmove" => {
                    if let Some(a) = args.first() {
                        let v = self.lower_expr_as_var(a);
                        self.b.memset(v, line);
                    }
                    for a in args.iter().skip(1) {
                        let _ = self.lower_expr(a);
                    }
                    return Operand::Const(ConstVal::Int(0));
                }
                "spin_lock" | "mutex_lock" | "raw_spin_lock" | "spin_lock_irqsave"
                | "tos_knl_sched_lock" => {
                    if let Some(a) = args.first() {
                        let v = self.lower_expr_as_var(a);
                        self.b.lock(v, line);
                    }
                    return Operand::Const(ConstVal::Int(0));
                }
                "spin_unlock"
                | "mutex_unlock"
                | "raw_spin_unlock"
                | "spin_unlock_irqrestore"
                | "tos_knl_sched_unlock" => {
                    if let Some(a) = args.first() {
                        let v = self.lower_expr_as_var(a);
                        self.b.unlock(v, line);
                    }
                    return Operand::Const(ConstVal::Int(0));
                }
                _ => {}
            }
            let arg_ops: Vec<Operand> = args.iter().map(|a| self.lower_expr(a)).collect();
            if let Some(&fid) = self.func_ids.get(name) {
                let ret_ty = self.func_ret_ty(name).unwrap_or(Type::Int);
                let dst = if matches!(ret_ty, Type::Void) {
                    None
                } else {
                    Some(self.b.temp(ret_ty))
                };
                self.b.call(dst, Callee::Direct(fid), arg_ops, line);
                return match dst {
                    Some(d) => Operand::Var(d),
                    None => Operand::Const(ConstVal::Int(0)),
                };
            }
            // External function.
            let sym = self.b.module().interner.intern(name);
            let dst = self.b.temp(Type::Int);
            self.b.call(Some(dst), Callee::External(sym), arg_ops, line);
            return Operand::Var(dst);
        }
        // Indirect call through an expression (function-pointer field).
        let target = self.lower_expr_as_var(callee);
        let arg_ops: Vec<Operand> = args.iter().map(|a| self.lower_expr(a)).collect();
        let dst = self.b.temp(Type::Int);
        self.b
            .call(Some(dst), Callee::Indirect(target), arg_ops, line);
        Operand::Var(dst)
    }

    /// The declared return type of a not-yet-lowered function, from the AST
    /// signature table; `None` for unknown names.
    fn func_ret_ty(&mut self, _name: &str) -> Option<Type> {
        // All signatures share the module's resolve rules; callers that need
        // the exact type look it up post-lowering. A pointer-compatible
        // `Int` default is adequate during lowering because PIR is not
        // type-checked across assignments.
        None
    }

    // ------------------------------------------------------------------
    // Branch conditions (short-circuit lowering)
    // ------------------------------------------------------------------

    fn lower_cond(&mut self, cond: &Expr, then_bb: BlockId, else_bb: BlockId) {
        let line = cond.line;
        match &cond.kind {
            ExprKind::Bin(AstBinOp::LogAnd, a, bx) => {
                let mid = self.b.new_block();
                self.lower_cond(a, mid, else_bb);
                self.b.switch_to(mid);
                self.lower_cond(bx, then_bb, else_bb);
            }
            ExprKind::Bin(AstBinOp::LogOr, a, bx) => {
                let mid = self.b.new_block();
                self.lower_cond(a, then_bb, mid);
                self.b.switch_to(mid);
                self.lower_cond(bx, then_bb, else_bb);
            }
            ExprKind::Not(inner) => self.lower_cond(inner, else_bb, then_bb),
            ExprKind::Bin(op, lhs, rhs) if op.is_comparison() => {
                let cmp = match op {
                    AstBinOp::Eq => CmpOp::Eq,
                    AstBinOp::Ne => CmpOp::Ne,
                    AstBinOp::Lt => CmpOp::Lt,
                    AstBinOp::Le => CmpOp::Le,
                    AstBinOp::Gt => CmpOp::Gt,
                    AstBinOp::Ge => CmpOp::Ge,
                    _ => unreachable!(),
                };
                let lv = self.lower_expr(lhs);
                let rv = self.lower_expr(rhs);
                let c = self.b.temp(Type::Bool);
                self.b.cmp(c, cmp, lv, rv, line);
                self.b.branch(c, then_bb, else_bb, line);
            }
            _ => {
                // Truthiness: e != 0 / e != NULL.
                let zero = self.zero_for(cond);
                let v = self.lower_expr(cond);
                let c = self.b.temp(Type::Bool);
                self.b.cmp(c, CmpOp::Ne, v, zero, line);
                self.b.branch(c, then_bb, else_bb, line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pata_ir::{print_module, verify_module, InstKind, Terminator};

    fn compile(src: &str) -> Module {
        let mut cc = Compiler::new();
        cc.add_source("test.c", src);
        match cc.compile() {
            Ok(m) => m,
            Err(ds) => panic!("compile failed: {:?}", ds),
        }
    }

    #[test]
    fn lowers_figure3_pattern() {
        // Zephyr friend_set bug shape (paper Fig. 3).
        let m = compile(
            r#"
            struct model_t { struct cfg_t *user_data; };
            struct cfg_t { int frnd; };
            void send_friend_status(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                int x = cfg->frnd;
            }
            void friend_set(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                if (!cfg) {
                    goto send_status;
                }
                cfg->frnd = 1;
            send_status:
                send_friend_status(model);
            }
            "#,
        );
        assert!(verify_module(&m).is_ok(), "{:?}", verify_module(&m));
        assert!(m.function_by_name("friend_set").is_some());
        let text = print_module(&m);
        assert!(text.contains("gep"), "{text}");
        assert!(text.contains("call send_friend_status"), "{text}");
    }

    #[test]
    fn direct_calls_resolve_across_files() {
        let mut cc = Compiler::new();
        cc.add_source("a.c", "int helper(int x) { return x + 1; }");
        cc.add_source("b.c", "int caller(void) { return helper(1); }");
        let m = cc.compile().unwrap();
        let caller = m.function_by_name("caller").unwrap();
        let f = m.function(caller);
        let has_direct = f.blocks().iter().flat_map(|b| &b.insts).any(|i| {
            matches!(&i.kind, InstKind::Call { callee: Callee::Direct(fid), .. }
                if m.function(*fid).name() == "helper")
        });
        assert!(has_direct);
    }

    #[test]
    fn os_idioms_lower_to_events() {
        let m = compile(
            r#"
            struct lk { int locked; };
            void f(struct lk *l) {
                int *p = kmalloc(8);
                spin_lock(l);
                memset(p, 0, 8);
                spin_unlock(l);
                kfree(p);
            }
            "#,
        );
        let f = m.function(m.function_by_name("f").unwrap());
        let kinds: Vec<&'static str> = f
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .map(|i| match &i.kind {
                InstKind::Malloc { .. } => "malloc",
                InstKind::Free { .. } => "free",
                InstKind::Memset { .. } => "memset",
                InstKind::Lock { .. } => "lock",
                InstKind::Unlock { .. } => "unlock",
                _ => "",
            })
            .filter(|s| !s.is_empty())
            .collect();
        assert_eq!(kinds, vec!["malloc", "lock", "memset", "unlock", "free"]);
    }

    #[test]
    fn short_circuit_creates_blocks() {
        let m = compile("int f(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }");
        let f = m.function(m.function_by_name("f").unwrap());
        // entry, mid, then, else, join — at least 5 blocks.
        assert!(f.blocks().len() >= 5, "blocks: {}", f.blocks().len());
    }

    #[test]
    fn while_loop_shape() {
        let m = compile("int f(int n) { int i = 0; while (i < n) { i++; } return i; }");
        let f = m.function(m.function_by_name("f").unwrap());
        assert!(verify_module(&m).is_ok());
        // Find a back edge: some block jumps to an earlier block.
        let mut has_back = false;
        for (bi, b) in f.blocks().iter().enumerate() {
            for s in b.term.successors() {
                if s.index() < bi {
                    has_back = true;
                }
            }
        }
        assert!(has_back);
    }

    #[test]
    fn null_in_pointer_condition() {
        let m = compile(
            "struct d { int x; }; int f(struct d *p) { if (p) { return p->x; } return 0; }",
        );
        let f = m.function(m.function_by_name("f").unwrap());
        // Truthiness of a pointer compares against null, not 0.
        let has_null_cmp = f.blocks().iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                &i.kind,
                InstKind::Cmp {
                    rhs: Operand::Const(ConstVal::Null),
                    ..
                }
            )
        });
        assert!(has_null_cmp);
    }

    #[test]
    fn uninitialized_local_gets_alloca() {
        let m = compile("int f(void) { int x; x = 3; return x; }");
        let f = m.function(m.function_by_name("f").unwrap());
        let has_alloca = f
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(&i.kind, InstKind::Alloca { .. }));
        assert!(has_alloca);
    }

    #[test]
    fn initialized_local_skips_alloca() {
        let m = compile("int f(void) { int x = 3; return x; }");
        let f = m.function(m.function_by_name("f").unwrap());
        let has_alloca = f
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(&i.kind, InstKind::Alloca { .. }));
        assert!(!has_alloca);
    }

    #[test]
    fn missing_return_synthesized() {
        let m = compile("void f(int x) { if (x) { return; } }");
        let f = m.function(m.function_by_name("f").unwrap());
        let exits = f
            .blocks()
            .iter()
            .filter(|b| matches!(b.term, Terminator::Ret(_)))
            .count();
        assert!(exits >= 2);
    }

    #[test]
    fn category_inferred_from_path() {
        let mut cc = Compiler::new();
        cc.add_source("drivers/net/e1000.c", "void probe(void) { }");
        let m = cc.compile().unwrap();
        assert_eq!(
            m.file(pata_ir::FileId::from_index(0)).category,
            Category::Drivers
        );
        let f = m.function(m.function_by_name("probe").unwrap());
        assert_eq!(f.category(), Category::Drivers);
    }

    #[test]
    fn indirect_call_through_field() {
        let m = compile(
            r#"
            struct ops { int x; };
            int f(struct ops *o) { return o->x(3); }
            "#,
        );
        let f = m.function(m.function_by_name("f").unwrap());
        let has_indirect = f.blocks().iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                &i.kind,
                InstKind::Call {
                    callee: Callee::Indirect(_),
                    ..
                }
            )
        });
        assert!(has_indirect);
    }

    #[test]
    fn duplicate_function_rejected() {
        let mut cc = Compiler::new();
        cc.add_source("a.c", "int f(void) { return 0; }");
        cc.add_source("b.c", "int f(void) { return 1; }");
        let err = cc.compile().unwrap_err();
        assert!(err[0].message.contains("duplicate"));
    }

    #[test]
    fn address_of_scalar_local() {
        let m = compile(
            r#"
            void init(int *out) { *out = 5; }
            int f(void) { int v; init(&v); return v; }
            "#,
        );
        let f = m.function(m.function_by_name("f").unwrap());
        let has_addrof = f
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(&i.kind, InstKind::AddrOf { .. }));
        assert!(has_addrof);
    }

    #[test]
    fn struct_value_local_is_addressable() {
        let m = compile(
            r#"
            struct pt { int x; int y; };
            int f(void) {
                struct pt p;
                p.x = 1;
                p.y = 2;
                return p.x + p.y;
            }
            "#,
        );
        assert!(verify_module(&m).is_ok());
        let f = m.function(m.function_by_name("f").unwrap());
        let geps = f
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(&i.kind, InstKind::Gep { .. }))
            .count();
        assert!(geps >= 4);
    }
}
