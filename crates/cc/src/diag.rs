//! Diagnostics emitted by the front-end.

use std::fmt;

/// Which phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagKind {
    /// Lexical error.
    Lex,
    /// Parse error.
    Parse,
    /// Semantic/lowering error (unknown struct, bad lvalue, …).
    Sema,
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagKind::Lex => "lex",
            DiagKind::Parse => "parse",
            DiagKind::Sema => "sema",
        };
        f.write_str(s)
    }
}

/// One front-end diagnostic with file/line attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// The phase.
    pub kind: DiagKind,
    /// Source file name.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl Diag {
    /// Creates a diagnostic.
    pub fn new(kind: DiagKind, file: &str, line: u32, message: impl Into<String>) -> Self {
        Diag {
            kind,
            file: file.to_owned(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} error: {}",
            self.file, self.line, self.kind, self.message
        )
    }
}

impl std::error::Error for Diag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let d = Diag::new(DiagKind::Parse, "a.c", 12, "expected `;`");
        assert_eq!(d.to_string(), "a.c:12: parse error: expected `;`");
    }
}
