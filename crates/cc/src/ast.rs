//! The mini-C abstract syntax tree.

/// A parsed type expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int` (also `char`, `long`, `unsigned …`).
    Int,
    /// `void`.
    Void,
    /// `struct name`.
    Struct(String),
    /// A pointer to another type.
    Ptr(Box<TypeExpr>),
}

impl TypeExpr {
    /// Wraps this type in `levels` pointers.
    pub fn with_pointers(self, levels: usize) -> TypeExpr {
        (0..levels).fold(self, |t, _| TypeExpr::Ptr(Box::new(t)))
    }
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl AstBinOp {
    /// Whether this operator is a comparison producing a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            AstBinOp::Eq | AstBinOp::Ne | AstBinOp::Lt | AstBinOp::Le | AstBinOp::Gt | AstBinOp::Ge
        )
    }

    /// Whether this operator short-circuits.
    pub fn is_logical(self) -> bool {
        matches!(self, AstBinOp::LogAnd | AstBinOp::LogOr)
    }
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, line: u32) -> Self {
        Expr { kind, line }
    }
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// `NULL`.
    Null,
    /// String literal (only valid as a call argument).
    Str(String),
    /// A variable reference.
    Ident(String),
    /// `e->field`.
    Arrow(Box<Expr>, String),
    /// `e.field`.
    Dot(Box<Expr>, String),
    /// `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `*e`.
    Deref(Box<Expr>),
    /// `&e`.
    AddrOf(Box<Expr>),
    /// `!e`.
    Not(Box<Expr>),
    /// `-e`.
    Neg(Box<Expr>),
    /// `~e`.
    BitNot(Box<Expr>),
    /// `lhs op rhs`.
    Bin(AstBinOp, Box<Expr>, Box<Expr>),
    /// `callee(args…)`; callee is an expression to allow `obj->op(x)`.
    Call(Box<Expr>, Vec<Expr>),
    /// `sizeof(…)` — evaluates to an opaque positive constant.
    Sizeof,
    /// `(type)e` cast — transparent to the analysis.
    Cast(TypeExpr, Box<Expr>),
    /// `lhs = rhs` used in expression position (e.g. `if ((p = f()) == NULL)`).
    Assign(Box<Expr>, Box<Expr>),
}

/// A statement with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The statement's shape.
    pub kind: StmtKind,
    /// 1-based source line.
    pub line: u32,
}

impl Stmt {
    /// Creates a statement node.
    pub fn new(kind: StmtKind, line: u32) -> Self {
        Stmt { kind, line }
    }
}

/// Statement shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// Local declaration `type name [= init];` or array `type name[n];`.
    Decl {
        /// Declared type.
        ty: TypeExpr,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Whether declared with `[]` (array of the base type).
        is_array: bool,
    },
    /// `lhs = rhs;` where lhs is an lvalue expression.
    Assign {
        /// Assigned lvalue.
        lhs: Expr,
        /// Value expression.
        rhs: Expr,
    },
    /// An expression evaluated for effect (usually a call, `i++`, …).
    Expr(Expr),
    /// `if (cond) then [else els]`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Initialization statement, if any.
        init: Option<Box<Stmt>>,
        /// Condition, if any (absent = infinite).
        cond: Option<Expr>,
        /// Step statement, if any.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return [e];`.
    Return(Option<Expr>),
    /// `goto label;`.
    Goto(String),
    /// `label:` (attaches to the following statement position).
    Label(String),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// A nested block.
    Block(Vec<Stmt>),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDecl {
    /// Struct name.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<(String, TypeExpr)>,
    /// Source line of the definition.
    pub line: u32,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: TypeExpr,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeExpr,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// A global variable, possibly with a designated-initializer list that
/// registers function pointers (`.probe = s5p_mfc_probe`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Global name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Functions referenced by designated initializers — these become
    /// *module interface functions* (no explicit caller, paper's D1).
    pub registered_funcs: Vec<String>,
    /// Source line.
    pub line: u32,
}

/// One parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Unit {
    /// File name the unit came from.
    pub file: String,
    /// Number of source lines (for LOC accounting).
    pub lines: u32,
    /// Struct definitions.
    pub structs: Vec<StructDecl>,
    /// Globals.
    pub globals: Vec<GlobalDecl>,
    /// Functions.
    pub functions: Vec<FuncDecl>,
}
