//! Front-end integration tests: tricky syntax, control flow and lowering
//! corners that the corpus generator and real OS code rely on.

use pata_cc::{compile_one, Compiler};
use pata_ir::{verify_module, Callee, InstKind, Terminator};

fn compile(src: &str) -> pata_ir::Module {
    let m = compile_one("fe.c", src).expect("compiles");
    assert!(verify_module(&m).is_ok(), "verify: {:?}", verify_module(&m));
    m
}

fn body_kinds(m: &pata_ir::Module, func: &str) -> Vec<String> {
    let f = m.function(m.function_by_name(func).unwrap());
    f.blocks()
        .iter()
        .flat_map(|b| &b.insts)
        .map(|i| format!("{:?}", std::mem::discriminant(&i.kind)))
        .collect()
}

#[test]
fn goto_backward_forms_loop() {
    let m = compile(
        r#"
        int f(int n) {
            int total = 0;
        again:
            total = total + 1;
            if (total < n) {
                goto again;
            }
            return total;
        }
        "#,
    );
    let f = m.function(m.function_by_name("f").unwrap());
    let has_back = f
        .blocks()
        .iter()
        .enumerate()
        .any(|(bi, b)| b.term.successors().iter().any(|s| s.index() < bi));
    assert!(has_back, "backward goto must create a back edge");
}

#[test]
fn while_true_with_break() {
    let m = compile(
        r#"
        int f(int n) {
            int i = 0;
            while (1) {
                i = i + 1;
                if (i > n) {
                    break;
                }
            }
            return i;
        }
        "#,
    );
    assert!(m.function_by_name("f").is_some());
}

#[test]
fn continue_in_for() {
    compile(
        r#"
        int f(int n) {
            int acc = 0;
            int i;
            for (i = 0; i < n; i++) {
                if (i == 3) {
                    continue;
                }
                acc += i;
            }
            return acc;
        }
        "#,
    );
}

#[test]
fn nested_field_chain() {
    let m = compile(
        r#"
        struct inner { int x; };
        struct middle { struct inner *in; };
        struct outer { struct middle *mid; };
        int f(struct outer *o) {
            return o->mid->in->x;
        }
        "#,
    );
    let geps = body_kinds(&m, "f")
        .iter()
        .filter(|k| {
            let probe = InstKind::Gep {
                dst: pata_ir::VarId::from_index(0),
                base: pata_ir::VarId::from_index(0),
                field: m.interner.get("x").unwrap(),
            };
            **k == format!("{:?}", std::mem::discriminant(&probe))
        })
        .count();
    assert_eq!(geps, 3, "three field hops");
}

#[test]
fn for_with_empty_clauses() {
    compile(
        r#"
        int f(void) {
            int i = 0;
            for (;;) {
                i++;
                if (i > 3) {
                    break;
                }
            }
            return i;
        }
        "#,
    );
}

#[test]
fn global_read_write() {
    let m = compile(
        r#"
        int g_counter;
        void bump(void) { g_counter = g_counter + 1; }
        int read_it(void) { return g_counter; }
        "#,
    );
    let g = m.globals();
    assert_eq!(g.len(), 1);
    assert_eq!(m.var(g[0]).name, "g_counter");
}

#[test]
fn call_chain_in_expression() {
    let m = compile(
        r#"
        int a(int x) { return x + 1; }
        int b(int x) { return a(x) * a(x + 1); }
        "#,
    );
    let f = m.function(m.function_by_name("b").unwrap());
    let calls = f
        .blocks()
        .iter()
        .flat_map(|bl| &bl.insts)
        .filter(|i| {
            matches!(
                i.kind,
                InstKind::Call {
                    callee: Callee::Direct(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(calls, 2);
}

#[test]
fn cast_chain_transparent() {
    compile(
        r#"
        struct a { int x; };
        struct b { int y; };
        int f(int *raw) {
            struct a *pa = (struct a *)raw;
            struct b *pb = (struct b *)(struct a *)raw;
            return pa->x + pb->y;
        }
        "#,
    );
}

#[test]
fn char_and_hex_literals() {
    compile(
        r#"
        int f(int c) {
            if (c == 'x') {
                return 0x1F;
            }
            return 'a' + 1;
        }
        "#,
    );
}

#[test]
fn string_literals_as_arguments() {
    compile(
        r#"
        void f(int code) {
            log_warn("something failed", code);
            panic("fatal: unrecoverable\n");
        }
        "#,
    );
}

#[test]
fn logical_ops_in_value_position() {
    compile(
        r#"
        int f(int a, int b) {
            int both = a > 0 && b > 0;
            int either = a > 0 || b > 0;
            return both + either;
        }
        "#,
    );
}

#[test]
fn unary_minus_and_bitnot() {
    compile(
        r#"
        int f(int x) {
            int neg = -x;
            int inv = ~x;
            return neg ^ inv;
        }
        "#,
    );
}

#[test]
fn return_in_all_branches() {
    let m = compile(
        r#"
        int f(int c) {
            if (c > 0) {
                return 1;
            } else {
                return 2;
            }
        }
        "#,
    );
    let f = m.function(m.function_by_name("f").unwrap());
    let rets = f
        .blocks()
        .iter()
        .filter(|b| matches!(b.term, Terminator::Ret(Some(_))))
        .count();
    assert!(rets >= 2);
}

#[test]
fn break_outside_loop_is_sema_error() {
    let mut cc = Compiler::new();
    cc.add_source("bad.c", "void f(void) { break; }");
    let err = cc.compile().unwrap_err();
    assert!(err.iter().any(|d| d.message.contains("break")), "{err:?}");
}

#[test]
fn unknown_variable_assignment_is_sema_error() {
    let mut cc = Compiler::new();
    cc.add_source("bad.c", "void f(void) { nonexistent = 1; }");
    let err = cc.compile().unwrap_err();
    assert!(
        err.iter().any(|d| d.message.contains("unknown variable")),
        "{err:?}"
    );
}

#[test]
fn multiple_files_share_structs() {
    let mut cc = Compiler::new();
    cc.add_source("defs.c", "struct shared { int v; };");
    cc.add_source(
        "use.c",
        "struct shared { int v; }; int f(struct shared *s) { return s->v; }",
    );
    let m = cc.compile().unwrap();
    assert!(m.struct_by_name("shared").is_some());
}

#[test]
fn scopes_shadow_correctly() {
    compile(
        r#"
        int f(int x) {
            int y = x;
            if (x > 0) {
                int y = 2 * x;
                return y;
            }
            return y;
        }
        "#,
    );
}

#[test]
fn array_field_in_struct() {
    compile(
        r#"
        struct buf { int data[16]; int len; };
        int f(struct buf *b) {
            return b->len;
        }
        "#,
    );
}

#[test]
fn function_pointer_value_lowered_as_funcaddr() {
    let m = compile(
        r#"
        int cb(int x) { return x; }
        void reg(void) {
            install_handler(cb);
        }
        "#,
    );
    let f = m.function(m.function_by_name("reg").unwrap());
    let has_fa = f
        .blocks()
        .iter()
        .flat_map(|b| &b.insts)
        .any(|i| matches!(i.kind, InstKind::FuncAddr { .. }));
    assert!(has_fa);
}

#[test]
fn assignment_in_condition_value() {
    let m = compile(
        r#"
        int f(void) {
            int *p;
            if ((p = acquire()) == NULL) {
                return -1;
            }
            return *p;
        }
        "#,
    );
    assert!(m.function_by_name("f").is_some());
}

#[test]
fn lines_attributed_to_source() {
    let m = compile("int f(void)\n{\n    int x = 1;\n    return x;\n}\n");
    let f = m.function(m.function_by_name("f").unwrap());
    let lines: Vec<u32> = f
        .blocks()
        .iter()
        .flat_map(|b| &b.insts)
        .map(|i| i.loc.line)
        .collect();
    assert!(lines.contains(&3), "{lines:?}");
}
