//! Solver scenario tests: the constraint shapes PATA's path validation
//! actually produces, plus robustness corners.

use pata_smt::{CmpOp, OpaqueOp, SatResult, Solver, Term};

fn solver_with(n: usize) -> (Solver, Vec<pata_smt::SymId>) {
    let mut s = Solver::new();
    let syms = (0..n).map(|_| s.fresh_symbol()).collect();
    (s, syms)
}

#[test]
fn constant_only_constraints() {
    let mut s = Solver::new();
    s.assert_cmp(CmpOp::Lt, Term::int(1), Term::int(2));
    s.assert_cmp(CmpOp::Ne, Term::int(3), Term::int(4));
    assert_eq!(s.check(), SatResult::Sat);
    s.assert_cmp(CmpOp::Ge, Term::int(1), Term::int(2));
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn constant_on_left_normalizes() {
    let (mut s, syms) = solver_with(1);
    // 5 < x and x < 5 contradict regardless of operand order.
    s.assert_cmp(CmpOp::Lt, Term::int(5), Term::sym(syms[0]));
    s.assert_cmp(CmpOp::Lt, Term::sym(syms[0]), Term::int(5));
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn boundary_inclusive_exclusive() {
    let (mut s, syms) = solver_with(1);
    s.assert_cmp(CmpOp::Ge, Term::sym(syms[0]), Term::int(5));
    s.assert_cmp(CmpOp::Le, Term::sym(syms[0]), Term::int(5));
    assert_eq!(s.check(), SatResult::Sat, "x == 5 satisfies both");
    s.assert_cmp(CmpOp::Ne, Term::sym(syms[0]), Term::int(5));
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn long_equality_chain_with_contradiction_at_ends() {
    let (mut s, syms) = solver_with(64);
    for w in syms.windows(2) {
        s.assert_cmp(CmpOp::Eq, Term::sym(w[0]), Term::sym(w[1]));
    }
    s.assert_cmp(CmpOp::Eq, Term::sym(syms[0]), Term::int(1));
    s.assert_cmp(CmpOp::Eq, Term::sym(syms[63]), Term::int(2));
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn npd_branch_shape_feasible() {
    // p == NULL taken, then an unrelated guard: the validator's common case.
    let (mut s, syms) = solver_with(3);
    let (p, state, count) = (syms[0], syms[1], syms[2]);
    s.assert_cmp(CmpOp::Eq, Term::sym(p), Term::int(0));
    s.assert_cmp(CmpOp::Gt, Term::sym(state), Term::int(2));
    s.assert_cmp(
        CmpOp::Eq,
        Term::sym(count),
        Term::sym(state).add(Term::int(1)),
    );
    assert_eq!(s.check(), SatResult::Sat);
}

#[test]
fn loop_exit_shape() {
    // i0 == 0, i0 < n, i1 == i0 + 1, i1 >= n  ⇒ n == 1: feasible.
    let (mut s, syms) = solver_with(3);
    let (i0, i1, n) = (syms[0], syms[1], syms[2]);
    s.assert_cmp(CmpOp::Eq, Term::sym(i0), Term::int(0));
    s.assert_cmp(CmpOp::Lt, Term::sym(i0), Term::sym(n));
    s.assert_cmp(CmpOp::Eq, Term::sym(i1), Term::sym(i0).add(Term::int(1)));
    s.assert_cmp(CmpOp::Ge, Term::sym(i1), Term::sym(n));
    assert_eq!(s.check(), SatResult::Sat);
    // Additionally requiring n >= 2 contradicts.
    s.assert_cmp(CmpOp::Ge, Term::sym(n), Term::int(2));
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn subtraction_and_negation() {
    let (mut s, syms) = solver_with(2);
    let (a, b) = (syms[0], syms[1]);
    s.assert_cmp(CmpOp::Eq, Term::sym(a).sub(Term::sym(b)), Term::int(10));
    s.assert_cmp(CmpOp::Eq, Term::sym(b), Term::int(-3));
    s.assert_cmp(CmpOp::Ne, Term::sym(a), Term::int(7));
    assert_eq!(s.check(), SatResult::Unsat, "a must be 7");
}

#[test]
fn multiplication_by_negative_constant() {
    let (mut s, syms) = solver_with(1);
    // -2x <= -10  ⇒  x >= 5.
    s.assert_cmp(
        CmpOp::Le,
        Term::sym(syms[0]).mul(Term::int(-2)),
        Term::int(-10),
    );
    s.assert_cmp(CmpOp::Lt, Term::sym(syms[0]), Term::int(5));
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn opaque_bitops_fold_on_constants() {
    let mut s = Solver::new();
    let t = Term::opaque(OpaqueOp::Shl, Term::int(1), Term::int(4));
    s.assert_cmp(CmpOp::Eq, t, Term::int(16));
    assert_eq!(s.check(), SatResult::Sat);
    let t2 = Term::opaque(OpaqueOp::Or, Term::int(0b01), Term::int(0b10));
    s.assert_cmp(CmpOp::Ne, t2, Term::int(3));
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn opaque_variable_terms_stay_open() {
    let (mut s, syms) = solver_with(2);
    let masked = Term::opaque(OpaqueOp::And, Term::sym(syms[0]), Term::int(0xFF));
    s.assert_cmp(CmpOp::Gt, masked.clone(), Term::int(0));
    s.assert_cmp(CmpOp::Eq, Term::sym(syms[1]), masked);
    // Congruent opaque terms share a symbol: syms[1] > 0 must follow.
    s.assert_cmp(CmpOp::Le, Term::sym(syms[1]), Term::int(0));
    assert_eq!(s.check(), SatResult::Unsat);
}

#[test]
fn large_magnitudes_no_overflow_panic() {
    let (mut s, syms) = solver_with(2);
    s.assert_cmp(CmpOp::Eq, Term::sym(syms[0]), Term::int(i64::MAX / 2));
    s.assert_cmp(
        CmpOp::Eq,
        Term::sym(syms[1]),
        Term::sym(syms[0]).add(Term::int(i64::MAX / 2)),
    );
    // Saturating arithmetic: must not panic; result may be Sat or Unknown.
    let r = s.check();
    assert_ne!(r, SatResult::Unsat);
}

#[test]
fn many_disequalities() {
    let (mut s, syms) = solver_with(10);
    for (i, &x) in syms.iter().enumerate() {
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(i as i64));
    }
    for w in syms.windows(2) {
        s.assert_cmp(CmpOp::Ne, Term::sym(w[0]), Term::sym(w[1]));
    }
    assert_eq!(s.check(), SatResult::Sat);
}

#[test]
fn stats_track_unknown_fragment() {
    let (mut s, syms) = solver_with(3);
    s.assert_cmp(
        CmpOp::Gt,
        Term::sym(syms[0])
            .mul(Term::sym(syms[1]))
            .add(Term::sym(syms[2]))
            .add(Term::sym(syms[0])),
        Term::int(0),
    );
    let (r, stats) = s.check_with_stats();
    assert_eq!(r, SatResult::Unknown);
    assert_eq!(stats.unknown, 1);
}
