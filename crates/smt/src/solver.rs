//! The conjunction solver: integer difference logic with a zero node,
//! plus disequality refutation and opaque-term congruence.

use crate::linear::{linearize, LinExpr, OpaqueInterner, OpaqueKey};
use crate::term::{CmpOp, Constraint, SymId, Term};
use std::collections::HashMap;
use std::fmt;

/// The outcome of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// The conjunction is satisfiable within the decided fragment.
    Sat,
    /// The conjunction is definitely unsatisfiable — the code path is
    /// infeasible and the candidate bug is a false positive.
    Unsat,
    /// No contradiction found, but some constraints fell outside the decided
    /// fragment. PATA treats this as feasible (conservative towards keeping
    /// bugs), matching the paper's residual-false-positive behaviour (§5.2).
    Unknown,
}

impl fmt::Display for SatResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SatResult::Sat => "sat",
            SatResult::Unsat => "unsat",
            SatResult::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Counters describing one solver run; surfaced into PATA's Table 5
/// "SMT constraints" accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Constraints asserted.
    pub constraints: usize,
    /// Difference edges derived.
    pub edges: usize,
    /// Disequalities tracked.
    pub disequalities: usize,
    /// Constraints outside the decided fragment.
    pub unknown: usize,
}

/// One difference edge `v - u <= w`.
#[derive(Debug, Clone, Copy)]
struct Edge {
    u: u32,
    v: u32,
    w: i64,
}

/// A conjunction solver over integer symbols.
///
/// Create symbols with [`Solver::fresh_symbol`], assert constraints with
/// [`Solver::assert_cmp`] / [`Solver::assert_constraint`], then call
/// [`Solver::check`].
///
/// # Example
///
/// ```
/// use pata_smt::{Solver, Term, CmpOp, SatResult};
///
/// let mut s = Solver::new();
/// let x = s.fresh_symbol();
/// let y = s.fresh_symbol();
/// s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y).add(Term::int(1)));
/// s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::sym(y));
/// assert_eq!(s.check(), SatResult::Unsat); // x == y+1 contradicts x < y
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    next_sym: u32,
    opaque: HashMap<OpaqueKey, SymId>,
    constraints: Vec<Constraint>,
}

struct InternerView<'a> {
    next_sym: &'a mut u32,
    opaque: &'a mut HashMap<OpaqueKey, SymId>,
}

impl OpaqueInterner for InternerView<'_> {
    fn opaque_symbol(&mut self, key: OpaqueKey) -> SymId {
        if let Some(&s) = self.opaque.get(&key) {
            return s;
        }
        let s = SymId(*self.next_sym);
        *self.next_sym += 1;
        self.opaque.insert(key, s);
        s
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh symbol.
    pub fn fresh_symbol(&mut self) -> SymId {
        let s = SymId(self.next_sym);
        self.next_sym += 1;
        s
    }

    /// Makes sure symbols created elsewhere (e.g. by PATA's alias-set → X
    /// mapping) are known; call with the highest external id.
    pub fn reserve_symbols(&mut self, count: u32) {
        self.next_sym = self.next_sym.max(count);
    }

    /// Asserts `lhs op rhs`.
    pub fn assert_cmp(&mut self, op: CmpOp, lhs: Term, rhs: Term) {
        self.constraints.push(Constraint::new(op, lhs, rhs));
    }

    /// Asserts a prebuilt constraint.
    pub fn assert_constraint(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Number of constraints asserted so far.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether no constraints are asserted.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Decides the conjunction. See [`SatResult`].
    pub fn check(&mut self) -> SatResult {
        self.check_with_stats().0
    }

    /// Decides the conjunction and reports solver statistics.
    pub fn check_with_stats(&mut self) -> (SatResult, SolverStats) {
        let mut stats =
            SolverStats { constraints: self.constraints.len(), ..SolverStats::default() };
        let mut edges: Vec<Edge> = Vec::new();
        // Disequalities as (node_a, node_b, c): value(a) - value(b) != c.
        let mut diseqs: Vec<(u32, u32, i64)> = Vec::new();
        let mut incomplete = false;

        let constraints = std::mem::take(&mut self.constraints);
        for c in &constraints {
            let mut view =
                InternerView { next_sym: &mut self.next_sym, opaque: &mut self.opaque };
            let l = linearize(&c.lhs, &mut view);
            let r = linearize(&c.rhs, &mut view);
            let diff = l.sub(&r); // constraint: diff op 0
            match classify(&diff, c.op) {
                Classified::True => {}
                Classified::False => {
                    self.constraints = constraints;
                    return (SatResult::Unsat, stats);
                }
                Classified::Edges(es) => {
                    stats.edges += es.len();
                    edges.extend(es);
                }
                Classified::Diseq(a, b, k) => {
                    stats.disequalities += 1;
                    diseqs.push((a, b, k));
                }
                Classified::Unknown => {
                    stats.unknown += 1;
                    incomplete = true;
                }
            }
        }
        self.constraints = constraints;

        let n = (self.next_sym + 1) as usize; // node 0 is the zero vertex
        if has_negative_cycle(n, &edges) {
            return (SatResult::Unsat, stats);
        }
        for &(a, b, k) in &diseqs {
            // value(a) - value(b) != k is refuted when the graph pins
            // value(a) - value(b) to exactly k.
            let d_ab = shortest_path(n, &edges, b, a); // value(a)-value(b) <= d_ab
            let d_ba = shortest_path(n, &edges, a, b); // value(b)-value(a) <= d_ba
            if let (Some(up), Some(down)) = (d_ab, d_ba) {
                if up <= k && down <= -k {
                    return (SatResult::Unsat, stats);
                }
            }
        }
        if incomplete {
            (SatResult::Unknown, stats)
        } else {
            (SatResult::Sat, stats)
        }
    }
}

fn node(s: SymId) -> u32 {
    s.0 + 1
}

enum Classified {
    True,
    False,
    Edges(Vec<Edge>),
    Diseq(u32, u32, i64),
    Unknown,
}

/// Turns `diff op 0` into difference edges / disequalities.
fn classify(diff: &LinExpr, op: CmpOp) -> Classified {
    // Pure constant.
    if let Some(v) = diff.as_const() {
        let holds = match op {
            CmpOp::Eq => v == 0,
            CmpOp::Ne => v != 0,
            CmpOp::Lt => v < 0,
            CmpOp::Le => v <= 0,
            CmpOp::Gt => v > 0,
            CmpOp::Ge => v >= 0,
        };
        return if holds { Classified::True } else { Classified::False };
    }

    // Reduce Gt/Ge to Lt/Le by negating the expression.
    let (expr, op) = match op {
        CmpOp::Gt => (LinExpr::zero().sub(diff), CmpOp::Lt),
        CmpOp::Ge => (LinExpr::zero().sub(diff), CmpOp::Le),
        _ => (diff.clone(), op),
    };
    // Strict to non-strict over the integers.
    let (expr, op) = match op {
        CmpOp::Lt => {
            let mut e = expr;
            e.konst += 1;
            (e, CmpOp::Le)
        }
        other => (expr, other),
    };

    // k·x + c op 0 for arbitrary k.
    if expr.coeffs.len() == 1 {
        let (&s, &k) = expr.coeffs.iter().next().unwrap();
        let c = expr.konst;
        let x = node(s);
        return match op {
            CmpOp::Le => {
                // k·x <= -c
                let bound = -c;
                if k > 0 {
                    Classified::Edges(vec![Edge { u: 0, v: x, w: bound.div_euclid(k) }])
                } else {
                    // x >= ceil(bound/k) → zero - x <= -ceil
                    let lo = ceil_div(bound, k);
                    Classified::Edges(vec![Edge { u: x, v: 0, w: -lo }])
                }
            }
            CmpOp::Eq => {
                if c % k == 0 {
                    let v = -c / k;
                    Classified::Edges(vec![
                        Edge { u: 0, v: x, w: v },
                        Edge { u: x, v: 0, w: -v },
                    ])
                } else {
                    Classified::False
                }
            }
            CmpOp::Ne => {
                if c % k == 0 {
                    Classified::Diseq(x, 0, -c / k)
                } else {
                    Classified::True
                }
            }
            _ => unreachable!("normalized above"),
        };
    }

    // x - y + c op 0.
    if let Some((xs, ys, c)) = expr.as_difference() {
        let (x, y) = (node(xs), node(ys));
        return match op {
            // x - y <= -c  ⇒ edge y → x with weight -c.
            CmpOp::Le => Classified::Edges(vec![Edge { u: y, v: x, w: -c }]),
            CmpOp::Eq => Classified::Edges(vec![
                Edge { u: y, v: x, w: -c },
                Edge { u: x, v: y, w: c },
            ]),
            CmpOp::Ne => Classified::Diseq(x, y, -c),
            _ => unreachable!("normalized above"),
        };
    }

    Classified::Unknown
}

/// Integer ceiling division for any nonzero divisor sign.
fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    let r = a % b;
    if r != 0 && ((r > 0) == (b > 0)) {
        q + 1
    } else {
        q
    }
}

/// Bellman-Ford negative-cycle detection with all distances initialized to
/// zero (equivalent to a virtual super-source).
fn has_negative_cycle(n: usize, edges: &[Edge]) -> bool {
    let mut dist = vec![0i64; n];
    for i in 0..n {
        let mut changed = false;
        for e in edges {
            let cand = dist[e.u as usize].saturating_add(e.w);
            if cand < dist[e.v as usize] {
                dist[e.v as usize] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if i + 1 == n && changed {
            return true;
        }
    }
    false
}

/// Single-source shortest path; `None` when `to` is unreachable from `from`.
fn shortest_path(n: usize, edges: &[Edge], from: u32, to: u32) -> Option<i64> {
    const INF: i64 = i64::MAX / 4;
    let mut dist = vec![INF; n];
    dist[from as usize] = 0;
    for _ in 0..n {
        let mut changed = false;
        for e in edges {
            if dist[e.u as usize] < INF {
                let cand = dist[e.u as usize].saturating_add(e.w);
                if cand < dist[e.v as usize] {
                    dist[e.v as usize] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if dist[to as usize] >= INF {
        None
    } else {
        Some(dist[to as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::OpaqueOp;

    fn two_syms(s: &mut Solver) -> (SymId, SymId) {
        (s.fresh_symbol(), s.fresh_symbol())
    }

    #[test]
    fn trivially_sat_empty() {
        let mut s = Solver::new();
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn constant_contradiction() {
        let mut s = Solver::new();
        s.assert_cmp(CmpOp::Eq, Term::int(1), Term::int(2));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn eq_then_ne_same_symbol_unsat() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(0));
        s.assert_cmp(CmpOp::Ne, Term::sym(x), Term::int(0));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn null_check_both_branches_infeasible() {
        // Paper Fig. 9: cfg == NULL (line 2) and cfg->frnd path needs
        // cfg != NULL — modeled as x == 0 && x != 0.
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(0));
        s.assert_cmp(CmpOp::Gt, Term::sym(x), Term::int(0));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn chain_of_equalities_propagates() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let z = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Eq, Term::sym(y), Term::sym(z));
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(3));
        s.assert_cmp(CmpOp::Eq, Term::sym(z), Term::int(4));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn offset_equalities() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y).add(Term::int(1)));
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::sym(y));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_interval() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Ge, Term::sym(x), Term::int(0));
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::int(10));
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn empty_interval_unsat() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Gt, Term::sym(x), Term::int(5));
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::int(6));
        assert_eq!(s.check(), SatResult::Unsat); // no integer in (5,6)
    }

    #[test]
    fn diseq_on_pinned_difference() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y).add(Term::int(2)));
        s.assert_cmp(CmpOp::Ne, Term::sym(x).sub(Term::sym(y)), Term::int(2));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn diseq_with_slack_sat() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        s.assert_cmp(CmpOp::Le, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Ne, Term::sym(x), Term::sym(y));
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn scaled_coefficient_eq_divisibility() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        // 2x == 5 has no integer solution.
        s.assert_cmp(CmpOp::Eq, Term::sym(x).mul(Term::int(2)), Term::int(5));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn scaled_coefficient_bound() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        // 2x <= 5 ⇒ x <= 2; x >= 3 contradicts.
        s.assert_cmp(CmpOp::Le, Term::sym(x).mul(Term::int(2)), Term::int(5));
        s.assert_cmp(CmpOp::Ge, Term::sym(x), Term::int(3));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn opaque_congruence_refutes_self_diseq() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let t1 = Term::opaque(OpaqueOp::Div, Term::sym(x), Term::sym(y));
        let t2 = Term::opaque(OpaqueOp::Div, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Ne, t1, t2);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn opaque_distinct_args_unknown_not_unsat() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let t1 = Term::opaque(OpaqueOp::Div, Term::sym(x), Term::int(2));
        let t2 = Term::opaque(OpaqueOp::Div, Term::sym(y), Term::int(2));
        s.assert_cmp(CmpOp::Ne, t1, t2);
        assert_ne!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn nonlinear_is_unknown() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let z = s.fresh_symbol();
        // x*y + z > 0 with three symbols — outside the fragment.
        s.assert_cmp(
            CmpOp::Gt,
            Term::sym(x).mul(Term::sym(y)).add(Term::sym(z)).add(Term::sym(x)),
            Term::int(0),
        );
        assert_eq!(s.check(), SatResult::Unknown);
    }

    #[test]
    fn transitive_difference_cycle_unsat() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let z = s.fresh_symbol();
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Lt, Term::sym(y), Term::sym(z));
        s.assert_cmp(CmpOp::Lt, Term::sym(z), Term::sym(x));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn stats_reported() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(1));
        s.assert_cmp(CmpOp::Ne, Term::sym(x), Term::int(2));
        let (res, stats) = s.check_with_stats();
        assert_eq!(res, SatResult::Sat);
        assert_eq!(stats.constraints, 2);
        assert!(stats.edges >= 2);
        assert_eq!(stats.disequalities, 1);
    }

    #[test]
    fn check_is_repeatable() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(1));
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.check(), SatResult::Sat);
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(2));
        assert_eq!(s.check(), SatResult::Unsat);
    }
}
