//! The conjunction solver: integer difference logic with a zero node,
//! plus disequality refutation and opaque-term congruence.
//!
//! ## Incremental solving
//!
//! The solver is *incremental*: every asserted constraint is linearized and
//! classified immediately, and the difference graph maintains a feasible
//! potential function (`dist[v] <= dist[u] + w` for every edge `v - u <= w`)
//! that is repaired locally when an edge arrives — the standard incremental
//! difference-logic propagation of Cotton & Maler (DPLL(T) difference
//! constraints). [`Solver::push`]/[`Solver::pop`] open and close assertion
//! scopes by journaling every mutation (edges, adjacency, potentials,
//! opaque-symbol interning), mirroring the `Mark`/`rollback` undo journal of
//! PATA's alias graph. Candidates that share a path prefix therefore re-use
//! the prefix's solved state and only pay for their suffix.
//!
//! [`Solver::check`] is cheap: the potential function already certifies
//! satisfiability of the difference fragment, so only the (rare)
//! disequalities need shortest-path queries — run as Dijkstra over
//! reduced costs, which the potentials keep non-negative.

use crate::linear::{linearize, LinExpr, OpaqueInterner, OpaqueKey};
use crate::term::{CmpOp, Constraint, SymId, Term};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// The outcome of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// The conjunction is satisfiable within the decided fragment.
    Sat,
    /// The conjunction is definitely unsatisfiable — the code path is
    /// infeasible and the candidate bug is a false positive.
    Unsat,
    /// No contradiction found, but some constraints fell outside the decided
    /// fragment. PATA treats this as feasible (conservative towards keeping
    /// bugs), matching the paper's residual-false-positive behaviour (§5.2).
    Unknown,
}

impl fmt::Display for SatResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SatResult::Sat => "sat",
            SatResult::Unsat => "unsat",
            SatResult::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Counters describing one solver run; surfaced into PATA's Table 5
/// "SMT constraints" accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Constraints asserted.
    pub constraints: usize,
    /// Difference edges derived.
    pub edges: usize,
    /// Disequalities tracked.
    pub disequalities: usize,
    /// Constraints outside the decided fragment.
    pub unknown: usize,
    /// Cumulative interval-propagation steps (potential repairs plus
    /// shortest-path relaxations) over the solver's lifetime. Monotonic:
    /// [`Solver::pop`] does not rewind it — it measures work done, not
    /// state held.
    pub propagations: u64,
}

/// One difference edge `v - u <= w`.
#[derive(Debug, Clone, Copy)]
struct Edge {
    u: u32,
    v: u32,
    w: i64,
}

/// A snapshot of every journaled length, taken by [`Solver::push`].
#[derive(Debug, Clone, Copy)]
struct Scope {
    constraints: usize,
    edges: usize,
    diseqs: usize,
    unknown: usize,
    contradictions: usize,
    next_sym: u32,
    opaque_journal: usize,
    dist_journal: usize,
    nodes: usize,
    neg_cycle: bool,
}

/// A conjunction solver over integer symbols.
///
/// Create symbols with [`Solver::fresh_symbol`], assert constraints with
/// [`Solver::assert_cmp`] / [`Solver::assert_constraint`], then call
/// [`Solver::check`]. Open a backtrackable scope with [`Solver::push`] and
/// undo everything asserted inside it with [`Solver::pop`].
///
/// # Example
///
/// ```
/// use pata_smt::{Solver, Term, CmpOp, SatResult};
///
/// let mut s = Solver::new();
/// let x = s.fresh_symbol();
/// let y = s.fresh_symbol();
/// s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y).add(Term::int(1)));
/// s.push();
/// s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::sym(y));
/// assert_eq!(s.check(), SatResult::Unsat); // x == y+1 contradicts x < y
/// s.pop();
/// assert_eq!(s.check(), SatResult::Sat); // the contradiction is gone
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    next_sym: u32,
    opaque: HashMap<OpaqueKey, SymId>,
    /// Keys interned since the outermost scope, for removal on pop.
    opaque_journal: Vec<OpaqueKey>,
    constraints: Vec<Constraint>,

    edges: Vec<Edge>,
    /// Outgoing edge indices per node (node 0 is the zero vertex).
    adj: Vec<Vec<usize>>,
    /// Disequalities as (node_a, node_b, c): value(a) - value(b) != c.
    diseqs: Vec<(u32, u32, i64)>,
    /// Constraints outside the decided fragment.
    unknown: usize,
    /// Constant-false constraints asserted (e.g. `1 == 2`).
    contradictions: usize,

    /// Feasible potentials: `dist[v] <= dist[u] + w` for every edge.
    dist: Vec<i64>,
    /// Overwritten `(node, old_value)` pairs, for rollback.
    dist_journal: Vec<(u32, i64)>,
    /// A negative cycle was found; the difference fragment is unsat.
    neg_cycle: bool,
    /// Lifetime interval-propagation step count (see [`SolverStats`]).
    propagations: u64,

    scopes: Vec<Scope>,
}

struct InternerView<'a> {
    next_sym: &'a mut u32,
    opaque: &'a mut HashMap<OpaqueKey, SymId>,
    journal: &'a mut Vec<OpaqueKey>,
}

impl OpaqueInterner for InternerView<'_> {
    fn opaque_symbol(&mut self, key: OpaqueKey) -> SymId {
        if let Some(&s) = self.opaque.get(&key) {
            return s;
        }
        let s = SymId(*self.next_sym);
        *self.next_sym += 1;
        self.opaque.insert(key.clone(), s);
        self.journal.push(key);
        s
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh symbol.
    pub fn fresh_symbol(&mut self) -> SymId {
        let s = SymId(self.next_sym);
        self.next_sym += 1;
        s
    }

    /// Makes sure symbols created elsewhere (e.g. by PATA's alias-set → X
    /// mapping) are known; call with the highest external id.
    pub fn reserve_symbols(&mut self, count: u32) {
        self.next_sym = self.next_sym.max(count);
    }

    /// Asserts `lhs op rhs`.
    pub fn assert_cmp(&mut self, op: CmpOp, lhs: Term, rhs: Term) {
        self.assert_constraint(Constraint::new(op, lhs, rhs));
    }

    /// Asserts a prebuilt constraint, incrementally updating the difference
    /// graph and its feasible potentials.
    pub fn assert_constraint(&mut self, c: Constraint) {
        let mut view = InternerView {
            next_sym: &mut self.next_sym,
            opaque: &mut self.opaque,
            journal: &mut self.opaque_journal,
        };
        let l = linearize(&c.lhs, &mut view);
        let r = linearize(&c.rhs, &mut view);
        let diff = l.sub(&r); // constraint: diff op 0
        match classify(&diff, c.op) {
            Classified::True => {}
            Classified::False => {
                self.contradictions += 1;
            }
            Classified::Edges(es) => {
                for e in es {
                    self.add_edge(e);
                }
            }
            Classified::Diseq(a, b, k) => {
                self.ensure_node(a.max(b));
                self.diseqs.push((a, b, k));
            }
            Classified::Unknown => {
                self.unknown += 1;
            }
        }
        self.constraints.push(c);
    }

    /// Number of constraints asserted so far.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether no constraints are asserted.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Opens a backtrackable assertion scope and returns its depth.
    pub fn push(&mut self) -> usize {
        self.scopes.push(Scope {
            constraints: self.constraints.len(),
            edges: self.edges.len(),
            diseqs: self.diseqs.len(),
            unknown: self.unknown,
            contradictions: self.contradictions,
            next_sym: self.next_sym,
            opaque_journal: self.opaque_journal.len(),
            dist_journal: self.dist_journal.len(),
            nodes: self.dist.len(),
            neg_cycle: self.neg_cycle,
        });
        self.scopes.len()
    }

    /// Closes the innermost scope, undoing every assertion made inside it.
    /// No-op when no scope is open.
    pub fn pop(&mut self) {
        let Some(scope) = self.scopes.pop() else {
            return;
        };
        self.constraints.truncate(scope.constraints);
        // Remove the scope's edges from the adjacency lists (they were
        // appended in order, so reverse-pop keeps the lists exact).
        while self.edges.len() > scope.edges {
            let e = self.edges.pop().unwrap();
            if (e.u as usize) < self.adj.len() {
                self.adj[e.u as usize].pop();
            }
        }
        self.diseqs.truncate(scope.diseqs);
        self.unknown = scope.unknown;
        self.contradictions = scope.contradictions;
        // Restore potentials overwritten inside the scope (reverse order so
        // repeated overwrites resolve to the oldest value).
        while self.dist_journal.len() > scope.dist_journal {
            let (node, old) = self.dist_journal.pop().unwrap();
            self.dist[node as usize] = old;
        }
        self.dist.truncate(scope.nodes);
        self.adj.truncate(scope.nodes);
        while self.opaque_journal.len() > scope.opaque_journal {
            let key = self.opaque_journal.pop().unwrap();
            self.opaque.remove(&key);
        }
        self.next_sym = scope.next_sym;
        self.neg_cycle = scope.neg_cycle;
    }

    /// How many scopes are currently open.
    pub fn scope_depth(&self) -> usize {
        self.scopes.len()
    }

    fn ensure_node(&mut self, node: u32) {
        let need = node as usize + 1;
        if self.dist.len() < need {
            self.dist.resize(need, 0);
            self.adj.resize(need, Vec::new());
        }
    }

    /// Records `dist[node] = value`, journaling the old value.
    fn set_dist(&mut self, node: u32, value: i64) {
        self.dist_journal.push((node, self.dist[node as usize]));
        self.dist[node as usize] = value;
    }

    /// Inserts a difference edge and repairs the potential function. If the
    /// repair wraps around to the edge's source, the graph has a negative
    /// cycle and the conjunction is unsatisfiable.
    fn add_edge(&mut self, e: Edge) {
        self.ensure_node(e.u.max(e.v));
        self.edges.push(e);
        self.adj[e.u as usize].push(self.edges.len() - 1);
        if self.neg_cycle {
            return; // already unsat; potentials are stale until pop
        }
        if e.u == e.v {
            if e.w < 0 {
                self.neg_cycle = true;
            }
            return;
        }
        let cand = self.dist[e.u as usize].saturating_add(e.w);
        if cand >= self.dist[e.v as usize] {
            return; // potentials still feasible
        }
        self.set_dist(e.v, cand);
        // Local repair: propagate the decrease. Reaching the inserted
        // edge's source means the new edge closed a negative cycle.
        let mut queue: Vec<u32> = vec![e.v];
        while let Some(x) = queue.pop() {
            self.propagations += 1;
            let dx = self.dist[x as usize];
            for i in 0..self.adj[x as usize].len() {
                let out = self.edges[self.adj[x as usize][i]];
                let cand = dx.saturating_add(out.w);
                if cand < self.dist[out.v as usize] {
                    if out.v == e.u {
                        self.neg_cycle = true;
                        return;
                    }
                    self.set_dist(out.v, cand);
                    queue.push(out.v);
                }
            }
        }
    }

    /// Shortest path weight `from → to`, or `None` when unreachable.
    /// Dijkstra over reduced costs `w + dist[u] - dist[v]`, which the
    /// feasible potentials keep non-negative.
    fn shortest_path(&mut self, from: u32, to: u32) -> Option<i64> {
        let n = self.dist.len();
        if from as usize >= n || to as usize >= n {
            return if from == to { Some(0) } else { None };
        }
        const INF: i64 = i64::MAX / 4;
        let mut red = vec![INF; n];
        let mut heap: BinaryHeap<std::cmp::Reverse<(i64, u32)>> = BinaryHeap::new();
        red[from as usize] = 0;
        heap.push(std::cmp::Reverse((0, from)));
        while let Some(std::cmp::Reverse((d, x))) = heap.pop() {
            self.propagations += 1;
            if d > red[x as usize] {
                continue;
            }
            if x == to {
                break;
            }
            for &ei in &self.adj[x as usize] {
                let e = self.edges[ei];
                let rc =
                    e.w.saturating_add(self.dist[e.u as usize])
                        .saturating_sub(self.dist[e.v as usize]);
                debug_assert!(rc >= 0, "potentials must keep reduced costs non-negative");
                let cand = d.saturating_add(rc);
                if cand < red[e.v as usize] {
                    red[e.v as usize] = cand;
                    heap.push(std::cmp::Reverse((cand, e.v)));
                }
            }
        }
        if red[to as usize] >= INF {
            None
        } else {
            // Undo the reduction: sp = sp_red - dist[from] + dist[to].
            Some(
                red[to as usize]
                    .saturating_sub(self.dist[from as usize])
                    .saturating_add(self.dist[to as usize]),
            )
        }
    }

    /// Decides the conjunction. See [`SatResult`].
    pub fn check(&mut self) -> SatResult {
        self.check_with_stats().0
    }

    /// Decides the conjunction and reports solver statistics.
    pub fn check_with_stats(&mut self) -> (SatResult, SolverStats) {
        let result = self.decide();
        let stats = SolverStats {
            constraints: self.constraints.len(),
            edges: self.edges.len(),
            disequalities: self.diseqs.len(),
            unknown: self.unknown,
            propagations: self.propagations,
        };
        (result, stats)
    }

    /// Lifetime interval-propagation step count (see [`SolverStats`]).
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    fn decide(&mut self) -> SatResult {
        if self.contradictions > 0 || self.neg_cycle {
            return SatResult::Unsat;
        }
        for i in 0..self.diseqs.len() {
            let (a, b, k) = self.diseqs[i];
            // value(a) - value(b) != k is refuted when the graph pins
            // value(a) - value(b) to exactly k.
            let d_ab = self.shortest_path(b, a); // value(a)-value(b) <= d_ab
            let d_ba = self.shortest_path(a, b); // value(b)-value(a) <= d_ba
            if let (Some(up), Some(down)) = (d_ab, d_ba) {
                if up <= k && down <= -k {
                    return SatResult::Unsat;
                }
            }
        }
        if self.unknown > 0 {
            SatResult::Unknown
        } else {
            SatResult::Sat
        }
    }
}

fn node(s: SymId) -> u32 {
    s.0 + 1
}

enum Classified {
    True,
    False,
    Edges(Vec<Edge>),
    Diseq(u32, u32, i64),
    Unknown,
}

/// Turns `diff op 0` into difference edges / disequalities.
fn classify(diff: &LinExpr, op: CmpOp) -> Classified {
    // Pure constant.
    if let Some(v) = diff.as_const() {
        let holds = match op {
            CmpOp::Eq => v == 0,
            CmpOp::Ne => v != 0,
            CmpOp::Lt => v < 0,
            CmpOp::Le => v <= 0,
            CmpOp::Gt => v > 0,
            CmpOp::Ge => v >= 0,
        };
        return if holds {
            Classified::True
        } else {
            Classified::False
        };
    }

    // Reduce Gt/Ge to Lt/Le by negating the expression.
    let (expr, op) = match op {
        CmpOp::Gt => (LinExpr::zero().sub(diff), CmpOp::Lt),
        CmpOp::Ge => (LinExpr::zero().sub(diff), CmpOp::Le),
        _ => (diff.clone(), op),
    };
    // Strict to non-strict over the integers.
    let (expr, op) = match op {
        CmpOp::Lt => {
            let mut e = expr;
            e.konst += 1;
            (e, CmpOp::Le)
        }
        other => (expr, other),
    };

    // k·x + c op 0 for arbitrary k.
    if expr.coeffs.len() == 1 {
        let (&s, &k) = expr.coeffs.iter().next().unwrap();
        let c = expr.konst;
        let x = node(s);
        return match op {
            CmpOp::Le => {
                // k·x <= -c
                let bound = -c;
                if k > 0 {
                    Classified::Edges(vec![Edge {
                        u: 0,
                        v: x,
                        w: bound.div_euclid(k),
                    }])
                } else {
                    // x >= ceil(bound/k) → zero - x <= -ceil
                    let lo = ceil_div(bound, k);
                    Classified::Edges(vec![Edge { u: x, v: 0, w: -lo }])
                }
            }
            CmpOp::Eq => {
                if c % k == 0 {
                    let v = -c / k;
                    Classified::Edges(vec![Edge { u: 0, v: x, w: v }, Edge { u: x, v: 0, w: -v }])
                } else {
                    Classified::False
                }
            }
            CmpOp::Ne => {
                if c % k == 0 {
                    Classified::Diseq(x, 0, -c / k)
                } else {
                    Classified::True
                }
            }
            _ => unreachable!("normalized above"),
        };
    }

    // x - y + c op 0.
    if let Some((xs, ys, c)) = expr.as_difference() {
        let (x, y) = (node(xs), node(ys));
        return match op {
            // x - y <= -c  ⇒ edge y → x with weight -c.
            CmpOp::Le => Classified::Edges(vec![Edge { u: y, v: x, w: -c }]),
            CmpOp::Eq => {
                Classified::Edges(vec![Edge { u: y, v: x, w: -c }, Edge { u: x, v: y, w: c }])
            }
            CmpOp::Ne => Classified::Diseq(x, y, -c),
            _ => unreachable!("normalized above"),
        };
    }

    Classified::Unknown
}

/// Integer ceiling division for any nonzero divisor sign.
fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    let r = a % b;
    if r != 0 && ((r > 0) == (b > 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::OpaqueOp;

    fn two_syms(s: &mut Solver) -> (SymId, SymId) {
        (s.fresh_symbol(), s.fresh_symbol())
    }

    #[test]
    fn trivially_sat_empty() {
        let mut s = Solver::new();
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn constant_contradiction() {
        let mut s = Solver::new();
        s.assert_cmp(CmpOp::Eq, Term::int(1), Term::int(2));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn eq_then_ne_same_symbol_unsat() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(0));
        s.assert_cmp(CmpOp::Ne, Term::sym(x), Term::int(0));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn null_check_both_branches_infeasible() {
        // Paper Fig. 9: cfg == NULL (line 2) and cfg->frnd path needs
        // cfg != NULL — modeled as x == 0 && x != 0.
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(0));
        s.assert_cmp(CmpOp::Gt, Term::sym(x), Term::int(0));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn chain_of_equalities_propagates() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let z = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Eq, Term::sym(y), Term::sym(z));
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(3));
        s.assert_cmp(CmpOp::Eq, Term::sym(z), Term::int(4));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn offset_equalities() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y).add(Term::int(1)));
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::sym(y));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_interval() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Ge, Term::sym(x), Term::int(0));
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::int(10));
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn empty_interval_unsat() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Gt, Term::sym(x), Term::int(5));
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::int(6));
        assert_eq!(s.check(), SatResult::Unsat); // no integer in (5,6)
    }

    #[test]
    fn diseq_on_pinned_difference() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y).add(Term::int(2)));
        s.assert_cmp(CmpOp::Ne, Term::sym(x).sub(Term::sym(y)), Term::int(2));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn diseq_with_slack_sat() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        s.assert_cmp(CmpOp::Le, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Ne, Term::sym(x), Term::sym(y));
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn scaled_coefficient_eq_divisibility() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        // 2x == 5 has no integer solution.
        s.assert_cmp(CmpOp::Eq, Term::sym(x).mul(Term::int(2)), Term::int(5));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn scaled_coefficient_bound() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        // 2x <= 5 ⇒ x <= 2; x >= 3 contradicts.
        s.assert_cmp(CmpOp::Le, Term::sym(x).mul(Term::int(2)), Term::int(5));
        s.assert_cmp(CmpOp::Ge, Term::sym(x), Term::int(3));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn opaque_congruence_refutes_self_diseq() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let t1 = Term::opaque(OpaqueOp::Div, Term::sym(x), Term::sym(y));
        let t2 = Term::opaque(OpaqueOp::Div, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Ne, t1, t2);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn opaque_distinct_args_unknown_not_unsat() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let t1 = Term::opaque(OpaqueOp::Div, Term::sym(x), Term::int(2));
        let t2 = Term::opaque(OpaqueOp::Div, Term::sym(y), Term::int(2));
        s.assert_cmp(CmpOp::Ne, t1, t2);
        assert_ne!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn nonlinear_is_unknown() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let z = s.fresh_symbol();
        // x*y + z > 0 with three symbols — outside the fragment.
        s.assert_cmp(
            CmpOp::Gt,
            Term::sym(x)
                .mul(Term::sym(y))
                .add(Term::sym(z))
                .add(Term::sym(x)),
            Term::int(0),
        );
        assert_eq!(s.check(), SatResult::Unknown);
    }

    #[test]
    fn transitive_difference_cycle_unsat() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let z = s.fresh_symbol();
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Lt, Term::sym(y), Term::sym(z));
        s.assert_cmp(CmpOp::Lt, Term::sym(z), Term::sym(x));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn stats_reported() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(1));
        s.assert_cmp(CmpOp::Ne, Term::sym(x), Term::int(2));
        let (res, stats) = s.check_with_stats();
        assert_eq!(res, SatResult::Sat);
        assert_eq!(stats.constraints, 2);
        assert!(stats.edges >= 2);
        assert_eq!(stats.disequalities, 1);
    }

    #[test]
    fn propagations_count_work_monotonically() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        assert_eq!(s.propagations(), 0);
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Lt, Term::sym(y), Term::int(0));
        let after_assert = s.propagations();
        s.push();
        s.assert_cmp(CmpOp::Ne, Term::sym(x), Term::sym(y));
        let (_, stats) = s.check_with_stats();
        assert!(
            stats.propagations > after_assert,
            "check must count Dijkstra pops"
        );
        let after_check = s.propagations();
        s.pop();
        assert_eq!(
            s.propagations(),
            after_check,
            "pop must not rewind the work counter"
        );
    }

    #[test]
    fn check_is_repeatable() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(1));
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.check(), SatResult::Sat);
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(2));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    // ----------------------------------------------------------------
    // Incremental scopes
    // ----------------------------------------------------------------

    #[test]
    fn pop_restores_satisfiability() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Ge, Term::sym(x), Term::int(0));
        assert_eq!(s.check(), SatResult::Sat);
        s.push();
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::int(0));
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn nested_scopes_unwind_exactly() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y));
        s.push();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(1));
        s.push();
        s.assert_cmp(CmpOp::Eq, Term::sym(y), Term::int(2));
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(), SatResult::Sat);
        s.assert_cmp(CmpOp::Eq, Term::sym(y), Term::int(1));
        assert_eq!(s.check(), SatResult::Sat);
        s.pop();
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.scope_depth(), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn pop_restores_unknown_and_contradiction_counts() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        s.push();
        s.assert_cmp(CmpOp::Eq, Term::int(1), Term::int(2)); // constant false
        s.assert_cmp(
            CmpOp::Gt,
            Term::sym(x).mul(Term::sym(y)).add(Term::sym(x)),
            Term::int(0),
        );
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(
            s.check(),
            SatResult::Sat,
            "unknown + contradiction must unwind"
        );
    }

    #[test]
    fn pop_unwinds_opaque_interning() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        let before = s.next_sym;
        s.push();
        let t1 = Term::opaque(OpaqueOp::Div, Term::sym(x), Term::sym(y));
        let t2 = Term::opaque(OpaqueOp::Div, Term::sym(x), Term::sym(y));
        s.assert_cmp(CmpOp::Ne, t1, t2);
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.next_sym, before, "interned opaque symbols must unwind");
        assert!(s.opaque.is_empty());
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn pop_after_negative_cycle_recovers() {
        let mut s = Solver::new();
        let (x, y) = two_syms(&mut s);
        s.assert_cmp(CmpOp::Lt, Term::sym(x), Term::sym(y));
        s.push();
        s.assert_cmp(CmpOp::Lt, Term::sym(y), Term::sym(x)); // closes a cycle
        assert_eq!(s.check(), SatResult::Unsat);
        // Asserting more while unsat must not corrupt the rollback state.
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(7));
        s.pop();
        assert_eq!(s.check(), SatResult::Sat);
        s.push();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(3));
        s.assert_cmp(CmpOp::Eq, Term::sym(y), Term::sym(x).add(Term::int(2)));
        assert_eq!(s.check(), SatResult::Sat);
        s.pop();
    }

    #[test]
    fn scope_reuse_equals_scratch_solving() {
        // Deterministic stream of mixed constraints checked two ways: via a
        // shared-prefix scope against a scratch re-solve of the full set.
        let mk = |k: u64| -> Constraint {
            let a = SymId((k % 5) as u32);
            let b = SymId(((k / 5) % 5) as u32);
            let c = (k % 11) as i64 - 5;
            let op = match k % 4 {
                0 => CmpOp::Le,
                1 => CmpOp::Eq,
                2 => CmpOp::Ne,
                _ => CmpOp::Lt,
            };
            Constraint::new(op, Term::sym(a), Term::sym(b).add(Term::int(c)))
        };
        let prefix: Vec<Constraint> = (0..6).map(|i| mk(i * 7 + 1)).collect();
        for suffix_seed in 0..40u64 {
            let suffix: Vec<Constraint> =
                (0..4).map(|i| mk(suffix_seed * 13 + i * 3 + 2)).collect();

            let mut incremental = Solver::new();
            incremental.reserve_symbols(5);
            for c in &prefix {
                incremental.assert_constraint(c.clone());
            }
            incremental.push();
            for c in &suffix {
                incremental.assert_constraint(c.clone());
            }
            let inc = incremental.check();

            let mut scratch = Solver::new();
            scratch.reserve_symbols(5);
            for c in prefix.iter().chain(&suffix) {
                scratch.assert_constraint(c.clone());
            }
            assert_eq!(inc, scratch.check(), "suffix_seed {suffix_seed}");
            incremental.pop();
        }
    }

    #[test]
    fn pop_without_push_is_noop() {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::int(1));
        s.pop();
        assert_eq!(s.len(), 1);
        assert_eq!(s.check(), SatResult::Sat);
    }
}
