//! # pata-smt — a conjunction-only SMT solver for PATA path validation
//!
//! PATA's alias-aware path-validation method (§3.3 of the paper) translates
//! the instructions of a candidate bug's code path into SMT constraints
//! (Table 3) and asks a solver whether their *conjunction* is satisfiable.
//! The paper uses Z3; this crate implements the decision procedure the
//! validation workload actually needs:
//!
//! * **Equalities and difference constraints** over integer symbols
//!   (`x == y + 3`, `x - y <= c`, `x < 7`) are decided exactly with a
//!   Bellman-Ford negative-cycle check over a difference-constraint graph
//!   with a virtual zero node (integer difference logic, IDL).
//! * **Disequalities** (`x != y + c`) refute when the difference graph pins
//!   `x - y` to exactly `c`.
//! * **Non-linear or otherwise unsupported terms** (e.g. `a * b`, `a / b`)
//!   are *hash-consed into opaque symbols* (EUF-lite congruence: two
//!   structurally identical applications of the same operator map to the
//!   same symbol), so `t != t` still refutes while `a*b > 0` is treated as
//!   satisfiable-unless-contradicted.
//!
//! The solver is deliberately **conservative towards SAT**: an `Unknown`
//! fragment never refutes a path. For bug filtering this errs exactly the
//! way the paper's implementation does (§5.2: residual false positives from
//! "complex arithmetic conditions"), and never drops a real bug on account
//! of solver incompleteness.
//!
//! # Example
//!
//! ```
//! use pata_smt::{Solver, Term, CmpOp, SatResult};
//!
//! // Paper Fig. 9: R(p->f)==0 together with R(t->f)!=0 where t->f and
//! // p->f share one symbol — infeasible.
//! let mut solver = Solver::new();
//! let pf = solver.fresh_symbol();            // shared symbol for {t->f, p->f}
//! solver.assert_cmp(CmpOp::Eq, Term::sym(pf), Term::int(0));
//! solver.assert_cmp(CmpOp::Ne, Term::sym(pf), Term::int(0));
//! assert_eq!(solver.check(), SatResult::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod linear;
mod solver;
mod term;

pub use linear::LinExpr;
pub use solver::{SatResult, Solver, SolverStats};
pub use term::{CmpOp, Constraint, OpaqueOp, SymId, Term};
