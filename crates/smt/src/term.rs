//! Terms and constraints of the solver's input language.
//!
//! The language mirrors the paper's "tiny source language" (§3.3):
//!
//! ```text
//! ⟨exp⟩ ::= ⟨const⟩ | ⟨var⟩ | ⟨exp⟩ opb ⟨exp⟩ | opu ⟨exp⟩
//! ⟨stm⟩ ::= ⟨var⟩ = ⟨exp⟩ | brt(e) | brf(e)
//! ```
//!
//! Variables have already been mapped to symbols by the alias-aware
//! `Xm : AS → X` function (Def. 4) on the PATA side; here a [`SymId`] *is*
//! an alias set's symbol.

use std::fmt;

/// An SMT symbol. In PATA every symbol stands for one alias set (Def. 4),
/// which is what makes the constraint systems small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

impl SymId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Comparison operators of the constraint language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl CmpOp {
    /// The comparison that holds exactly when this one does not.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Operators the linearizer cannot interpret; their applications become
/// congruence-classed opaque symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpaqueOp {
    /// Multiplication of two non-constant terms.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Right shift.
    Shr,
}

/// An expression term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An integer constant (`NULL` is the constant 0).
    Const(i64),
    /// A symbol (one alias set).
    Sym(SymId),
    /// Addition.
    Add(Box<Term>, Box<Term>),
    /// Subtraction.
    Sub(Box<Term>, Box<Term>),
    /// Multiplication (linear only when one side is constant).
    Mul(Box<Term>, Box<Term>),
    /// An application the solver treats as uninterpreted.
    Opaque(OpaqueOp, Box<Term>, Box<Term>),
    /// Unary negation.
    Neg(Box<Term>),
}

impl Term {
    /// A constant term.
    pub fn int(v: i64) -> Term {
        Term::Const(v)
    }

    /// A symbol term.
    pub fn sym(s: SymId) -> Term {
        Term::Sym(s)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Term) -> Term {
        Term::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Term) -> Term {
        Term::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Term) -> Term {
        Term::Mul(Box::new(self), Box::new(rhs))
    }

    /// An uninterpreted application.
    pub fn opaque(op: OpaqueOp, lhs: Term, rhs: Term) -> Term {
        Term::Opaque(op, Box::new(lhs), Box::new(rhs))
    }

    /// `-self`.
    pub fn neg(self) -> Term {
        Term::Neg(Box::new(self))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Sub(a, b) => write!(f, "({a} - {b})"),
            Term::Mul(a, b) => write!(f, "({a} * {b})"),
            Term::Opaque(op, a, b) => write!(f, "({a} {op:?} {b})"),
            Term::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// One constraint: `lhs op rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left term.
    pub lhs: Term,
    /// Right term.
    pub rhs: Term,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(op: CmpOp, lhs: Term, rhs: Term) -> Self {
        Constraint { op, lhs, rhs }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negate_involution() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn term_builders_display() {
        let t = Term::sym(SymId(0))
            .add(Term::int(1))
            .sub(Term::sym(SymId(1)));
        assert_eq!(t.to_string(), "((x0 + 1) - x1)");
    }
}
