//! Linearization of terms into `Σ coeffᵢ·symᵢ + constant` form.
//!
//! Non-linear sub-terms are replaced by congruence-classed opaque symbols
//! supplied by the caller (the solver hash-conses them), so the linear form
//! is always exact over the extended symbol space.

use crate::term::{OpaqueOp, SymId, Term};
use std::collections::BTreeMap;

/// A linear expression: `Σ coeff·sym + konst`.
///
/// Coefficient maps never contain zero entries, so structural equality is
/// semantic equality.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Coefficients per symbol (no zero entries).
    pub coeffs: BTreeMap<SymId, i64>,
    /// The constant offset.
    pub konst: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(v: i64) -> Self {
        LinExpr {
            coeffs: BTreeMap::new(),
            konst: v,
        }
    }

    /// A single-symbol expression.
    pub fn symbol(s: SymId) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(s, 1);
        LinExpr { coeffs, konst: 0 }
    }

    /// Adds `coeff·sym` in place, dropping zero entries.
    pub fn add_term(&mut self, sym: SymId, coeff: i64) {
        let entry = self.coeffs.entry(sym).or_insert(0);
        *entry = entry.saturating_add(coeff);
        if *entry == 0 {
            self.coeffs.remove(&sym);
        }
    }

    /// `self + other`.
    pub fn add(mut self, other: &LinExpr) -> LinExpr {
        for (&s, &c) in &other.coeffs {
            self.add_term(s, c);
        }
        self.konst = self.konst.saturating_add(other.konst);
        self
    }

    /// `self - other`.
    pub fn sub(mut self, other: &LinExpr) -> LinExpr {
        for (&s, &c) in &other.coeffs {
            self.add_term(s, -c);
        }
        self.konst = self.konst.saturating_sub(other.konst);
        self
    }

    /// `self * k`.
    pub fn scale(mut self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        for c in self.coeffs.values_mut() {
            *c = c.saturating_mul(k);
        }
        self.coeffs.retain(|_, c| *c != 0);
        self.konst = self.konst.saturating_mul(k);
        self
    }

    /// Whether the expression is a pure constant.
    pub fn as_const(&self) -> Option<i64> {
        if self.coeffs.is_empty() {
            Some(self.konst)
        } else {
            None
        }
    }

    /// If `self` is `±1·sym + c`, returns `(sym, coeff, c)`.
    pub fn as_single(&self) -> Option<(SymId, i64, i64)> {
        if self.coeffs.len() == 1 {
            let (&s, &c) = self.coeffs.iter().next().unwrap();
            if c == 1 || c == -1 {
                return Some((s, c, self.konst));
            }
        }
        None
    }

    /// If `self` is `x - y + c`, returns `(x, y, c)`.
    pub fn as_difference(&self) -> Option<(SymId, SymId, i64)> {
        if self.coeffs.len() == 2 {
            let mut pos = None;
            let mut neg = None;
            for (&s, &c) in &self.coeffs {
                match c {
                    1 => pos = Some(s),
                    -1 => neg = Some(s),
                    _ => return None,
                }
            }
            if let (Some(p), Some(n)) = (pos, neg) {
                return Some((p, n, self.konst));
            }
        }
        None
    }
}

/// A canonical key identifying an opaque application for congruence
/// hash-consing: same operator + same linearized operands ⇒ same symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpaqueKey {
    /// The uninterpreted operator.
    pub op: OpaqueOp,
    /// Canonicalized left operand (sorted coeff pairs + constant).
    pub lhs: (Vec<(SymId, i64)>, i64),
    /// Canonicalized right operand.
    pub rhs: (Vec<(SymId, i64)>, i64),
}

fn canon(e: &LinExpr) -> (Vec<(SymId, i64)>, i64) {
    (e.coeffs.iter().map(|(&s, &c)| (s, c)).collect(), e.konst)
}

/// Provides fresh/congruent symbols for opaque applications.
pub trait OpaqueInterner {
    /// Returns the symbol for an opaque application, reusing symbols for
    /// congruent keys.
    fn opaque_symbol(&mut self, key: OpaqueKey) -> SymId;
}

/// Linearizes `term`, sending non-linear parts through `interner`.
pub fn linearize<I: OpaqueInterner>(term: &Term, interner: &mut I) -> LinExpr {
    match term {
        Term::Const(v) => LinExpr::constant(*v),
        Term::Sym(s) => LinExpr::symbol(*s),
        Term::Add(a, b) => linearize(a, interner).add(&linearize(b, interner)),
        Term::Sub(a, b) => linearize(a, interner).sub(&linearize(b, interner)),
        Term::Neg(a) => LinExpr::zero().sub(&linearize(a, interner)),
        Term::Mul(a, b) => {
            let la = linearize(a, interner);
            let lb = linearize(b, interner);
            if let Some(k) = la.as_const() {
                lb.scale(k)
            } else if let Some(k) = lb.as_const() {
                la.scale(k)
            } else {
                let key = OpaqueKey {
                    op: OpaqueOp::Mul,
                    lhs: canon(&la),
                    rhs: canon(&lb),
                };
                LinExpr::symbol(interner.opaque_symbol(key))
            }
        }
        Term::Opaque(op, a, b) => {
            let la = linearize(a, interner);
            let lb = linearize(b, interner);
            // Constant-fold fully constant applications where semantics are
            // clear; otherwise intern.
            if let (Some(x), Some(y)) = (la.as_const(), lb.as_const()) {
                if let Some(v) = eval_opaque(*op, x, y) {
                    return LinExpr::constant(v);
                }
            }
            let key = OpaqueKey {
                op: *op,
                lhs: canon(&la),
                rhs: canon(&lb),
            };
            LinExpr::symbol(interner.opaque_symbol(key))
        }
    }
}

fn eval_opaque(op: OpaqueOp, a: i64, b: i64) -> Option<i64> {
    match op {
        OpaqueOp::Mul => a.checked_mul(b),
        OpaqueOp::Div => a.checked_div(b),
        OpaqueOp::Rem => a.checked_rem(b),
        OpaqueOp::And => Some(a & b),
        OpaqueOp::Or => Some(a | b),
        OpaqueOp::Xor => Some(a ^ b),
        OpaqueOp::Shl => {
            if (0..64).contains(&b) {
                a.checked_shl(b as u32)
            } else {
                None
            }
        }
        OpaqueOp::Shr => {
            if (0..64).contains(&b) {
                a.checked_shr(b as u32)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct TestInterner {
        next: u32,
        map: HashMap<OpaqueKey, SymId>,
    }

    impl TestInterner {
        fn new() -> Self {
            TestInterner {
                next: 1000,
                map: HashMap::new(),
            }
        }
    }

    impl OpaqueInterner for TestInterner {
        fn opaque_symbol(&mut self, key: OpaqueKey) -> SymId {
            *self.map.entry(key).or_insert_with(|| {
                let s = SymId(self.next);
                self.next += 1;
                s
            })
        }
    }

    #[test]
    fn linear_arithmetic_folds() {
        let mut i = TestInterner::new();
        // (x + 1) - (x - 2) == 3
        let x = SymId(0);
        let t = Term::sym(x)
            .add(Term::int(1))
            .sub(Term::sym(x).sub(Term::int(2)));
        let lin = linearize(&t, &mut i);
        assert_eq!(lin.as_const(), Some(3));
    }

    #[test]
    fn difference_form_detected() {
        let mut i = TestInterner::new();
        let (x, y) = (SymId(0), SymId(1));
        let t = Term::sym(x).sub(Term::sym(y)).add(Term::int(5));
        let lin = linearize(&t, &mut i);
        assert_eq!(lin.as_difference(), Some((x, y, 5)));
    }

    #[test]
    fn mul_by_const_is_linear() {
        let mut i = TestInterner::new();
        let x = SymId(0);
        let t = Term::sym(x).mul(Term::int(3)).add(Term::int(1));
        let lin = linearize(&t, &mut i);
        assert_eq!(lin.coeffs.get(&x), Some(&3));
        assert_eq!(lin.konst, 1);
        assert!(i.map.is_empty());
    }

    #[test]
    fn nonlinear_mul_congruent() {
        let mut i = TestInterner::new();
        let (x, y) = (SymId(0), SymId(1));
        let t1 = Term::sym(x).mul(Term::sym(y));
        let t2 = Term::sym(x).mul(Term::sym(y));
        let l1 = linearize(&t1, &mut i);
        let l2 = linearize(&t2, &mut i);
        assert_eq!(l1, l2);
        assert_eq!(i.map.len(), 1);
    }

    #[test]
    fn opaque_constant_folds() {
        let mut i = TestInterner::new();
        let t = Term::opaque(OpaqueOp::And, Term::int(0b1100), Term::int(0b1010));
        let lin = linearize(&t, &mut i);
        assert_eq!(lin.as_const(), Some(0b1000));
    }

    #[test]
    fn single_symbol_form() {
        let mut i = TestInterner::new();
        let x = SymId(7);
        let t = Term::int(4).sub(Term::sym(x));
        let lin = linearize(&t, &mut i);
        assert_eq!(lin.as_single(), Some((x, -1, 4)));
    }
}
