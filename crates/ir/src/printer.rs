//! A textual printer for PIR modules, for debugging and documentation.
//!
//! The output resembles LLVM IR:
//!
//! ```text
//! fn friend_set(%3: struct#0*) -> void {
//! bb0:
//!   %4 = gep %3, user_data      ; file#0:2709
//!   ...
//! }
//! ```

use crate::function::Function;
use crate::inst::{Callee, InstKind, Operand, Terminator};
use crate::module::Module;
use std::fmt::Write;

fn fmt_operand(m: &Module, op: &Operand) -> String {
    match op {
        Operand::Var(v) => format!("%{}<{}>", v.index(), m.var(*v).name),
        Operand::Const(c) => c.to_string(),
    }
}

fn fmt_var(m: &Module, v: crate::function::VarId) -> String {
    format!("%{}<{}>", v.index(), m.var(v).name)
}

fn print_function(m: &Module, f: &Function, out: &mut String) {
    let params: Vec<String> = f
        .params()
        .iter()
        .map(|&p| format!("{}: {}", fmt_var(m, p), m.var(p).ty))
        .collect();
    let _ = writeln!(
        out,
        "fn {}({}) -> {} {}{{",
        f.name(),
        params.join(", "),
        f.ret_ty(),
        if f.is_interface() { "[interface] " } else { "" }
    );
    for (bi, block) in f.blocks().iter().enumerate() {
        let _ = writeln!(out, "bb{bi}:");
        for inst in &block.insts {
            let text = match &inst.kind {
                InstKind::Move { dst, src } => {
                    format!("{} = move {}", fmt_var(m, *dst), fmt_var(m, *src))
                }
                InstKind::Const { dst, value } => {
                    format!("{} = const {}", fmt_var(m, *dst), value)
                }
                InstKind::Load { dst, addr } => {
                    format!("{} = load *{}", fmt_var(m, *dst), fmt_var(m, *addr))
                }
                InstKind::Store { addr, val } => {
                    format!("store *{} = {}", fmt_var(m, *addr), fmt_operand(m, val))
                }
                InstKind::Gep { dst, base, field } => format!(
                    "{} = gep {}, {}",
                    fmt_var(m, *dst),
                    fmt_var(m, *base),
                    m.interner.resolve(*field)
                ),
                InstKind::FuncAddr { dst, func } => format!(
                    "{} = func-addr {}",
                    fmt_var(m, *dst),
                    m.function(*func).name()
                ),
                InstKind::AddrOf { dst, src } => {
                    format!("{} = addr-of {}", fmt_var(m, *dst), fmt_var(m, *src))
                }
                InstKind::Index { dst, base, index } => format!(
                    "{} = index {}[{}]",
                    fmt_var(m, *dst),
                    fmt_var(m, *base),
                    fmt_operand(m, index)
                ),
                InstKind::Bin { dst, op, lhs, rhs } => format!(
                    "{} = {} {} {}",
                    fmt_var(m, *dst),
                    fmt_operand(m, lhs),
                    op,
                    fmt_operand(m, rhs)
                ),
                InstKind::Cmp { dst, op, lhs, rhs } => format!(
                    "{} = cmp {} {} {}",
                    fmt_var(m, *dst),
                    fmt_operand(m, lhs),
                    op,
                    fmt_operand(m, rhs)
                ),
                InstKind::Call { dst, callee, args } => {
                    let target = match callee {
                        Callee::Direct(f) => m.function(*f).name().to_owned(),
                        Callee::External(s) => format!("extern:{}", m.interner.resolve(*s)),
                        Callee::Indirect(v) => format!("*{}", fmt_var(m, *v)),
                    };
                    let args: Vec<String> = args.iter().map(|a| fmt_operand(m, a)).collect();
                    match dst {
                        Some(d) => {
                            format!("{} = call {}({})", fmt_var(m, *d), target, args.join(", "))
                        }
                        None => format!("call {}({})", target, args.join(", ")),
                    }
                }
                InstKind::Alloca { dst, storage } => format!(
                    "alloca {}{}",
                    fmt_var(m, *dst),
                    if *storage { " [storage]" } else { "" }
                ),
                InstKind::Malloc { dst } => format!("{} = malloc", fmt_var(m, *dst)),
                InstKind::Free { ptr } => format!("free {}", fmt_var(m, *ptr)),
                InstKind::Memset { ptr } => format!("memset {}", fmt_var(m, *ptr)),
                InstKind::Lock { obj } => format!("lock {}", fmt_var(m, *obj)),
                InstKind::Unlock { obj } => format!("unlock {}", fmt_var(m, *obj)),
            };
            let _ = writeln!(out, "  {text:<50} ; {}", inst.loc);
        }
        let term = match &block.term {
            Terminator::Jump(b) => format!("jump bb{}", b.index()),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => format!(
                "br {} ? bb{} : bb{}",
                fmt_var(m, *cond),
                then_bb.index(),
                else_bb.index()
            ),
            Terminator::Ret(Some(v)) => format!("ret {}", fmt_operand(m, v)),
            Terminator::Ret(None) => "ret".to_owned(),
            Terminator::Unreachable => "unreachable".to_owned(),
        };
        let _ = writeln!(out, "  {term:<50} ; {}", block.term_loc);
    }
    let _ = writeln!(out, "}}");
}

/// Renders one function as human-readable text — the same shape
/// [`print_module`] emits for it.
///
/// The text covers everything that decides the function's analysis
/// behaviour (instructions, operand identities, callee names, source
/// locations), which makes it a sound — if conservative — change-detection
/// fingerprint input: any edit that alters the function's lowered form, its
/// line numbers, or the module-wide numbering of its operands changes the
/// text.
pub fn function_text(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    print_function(m, f, &mut out);
    out
}

/// Renders the whole module as human-readable text.
///
/// # Example
///
/// ```
/// use pata_ir::{Module, FunctionBuilder, print_module};
///
/// let mut m = Module::new();
/// let file = m.add_file("hello.c");
/// let mut b = FunctionBuilder::new(&mut m, "nop", file);
/// b.ret(None, 1);
/// b.finish();
/// let text = print_module(&m);
/// assert!(text.contains("fn nop()"));
/// ```
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for s in m.structs() {
        let fields: Vec<String> = s
            .fields
            .iter()
            .map(|(f, t)| format!("{}: {t}", m.interner.resolve(*f)))
            .collect();
        let _ = writeln!(out, "struct {} {{ {} }}", s.name, fields.join(", "));
    }
    for f in m.functions() {
        print_function(m, f, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::ConstVal;
    use crate::types::Type;

    #[test]
    fn prints_all_instruction_forms() {
        let mut m = Module::new();
        let file = m.add_file("p.c");
        let fld = m.interner.intern("next");
        let mut b = FunctionBuilder::new(&mut m, "kitchen_sink", file);
        let p = b.param("p", Type::ptr(Type::Int));
        let q = b.local("q", Type::ptr(Type::Int));
        let x = b.local("x", Type::Int);
        b.alloca(x, false, 1);
        b.mov(q, p, 2);
        b.assign_const(x, ConstVal::Int(3), 3);
        b.load(x, p, 4);
        b.store(p, x, 5);
        b.gep(q, p, fld, 6);
        b.index(q, p, 0i64, 7);
        b.bin(x, crate::inst::BinOp::Add, x, 1i64, 8);
        let c = b.temp(Type::Bool);
        b.cmp(c, crate::inst::CmpOp::Ne, x, 0i64, 9);
        b.malloc(q, 10);
        b.memset(q, 11);
        b.free(q, 12);
        b.lock(p, 13);
        b.unlock(p, 14);
        b.ret(None, 15);
        b.finish();
        let text = print_module(&m);
        for needle in [
            "move", "const", "load", "store", "gep", "index", "cmp", "malloc", "memset", "free",
            "lock", "unlock", "ret",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
