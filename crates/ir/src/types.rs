//! The PIR type system: integers, pointers, named structs and arrays.
//!
//! Types matter to the analysis in two ways: pointer-ness decides which
//! variables participate in alias-graph updates, and struct fields drive the
//! field-sensitivity of typestate tracking and path validation (§3.2/§3.3 of
//! the paper).

use crate::module::StructId;
use std::fmt;

/// A PIR type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The `void` type (function returns only).
    Void,
    /// A machine integer (mini-C `int`; also used for `char`, `long`, …).
    Int,
    /// A boolean produced by comparison instructions.
    Bool,
    /// A pointer to another type.
    Ptr(Box<Type>),
    /// A named struct defined in the owning [`crate::Module`].
    Struct(StructId),
    /// A fixed- or unknown-length array of an element type.
    Array(Box<Type>),
}

impl Type {
    /// Convenience constructor for a pointer to `inner`.
    ///
    /// ```
    /// use pata_ir::Type;
    /// let t = Type::ptr(Type::Int);
    /// assert!(t.is_pointer());
    /// ```
    pub fn ptr(inner: Type) -> Type {
        Type::Ptr(Box::new(inner))
    }

    /// Convenience constructor for an array of `elem`.
    pub fn array(elem: Type) -> Type {
        Type::Array(Box::new(elem))
    }

    /// Whether this type is a pointer.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Whether this type is an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int)
    }

    /// The type obtained by dereferencing this one, if it is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// The struct id this type names, looking through one level of pointer.
    ///
    /// `struct S*` and `struct S` both yield the id of `S`; used by the
    /// analysis to enumerate fields for implicit-constraint accounting.
    pub fn struct_id(&self) -> Option<StructId> {
        match self {
            Type::Struct(id) => Some(*id),
            Type::Ptr(inner) => match inner.as_ref() {
                Type::Struct(id) => Some(*id),
                _ => None,
            },
            _ => None,
        }
    }

    /// Element type if this is an array (or pointer used as an array).
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Array(elem) => Some(elem),
            Type::Ptr(inner) => Some(inner),
            _ => None,
        }
    }
}

impl Default for Type {
    fn default() -> Self {
        Type::Int
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
            Type::Struct(id) => write!(f, "struct#{}", id.index()),
            Type::Array(elem) => write!(f, "{elem}[]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_helpers() {
        let t = Type::ptr(Type::ptr(Type::Int));
        assert!(t.is_pointer());
        assert_eq!(t.pointee(), Some(&Type::ptr(Type::Int)));
        assert_eq!(t.pointee().unwrap().pointee(), Some(&Type::Int));
        assert!(!Type::Int.is_pointer());
        assert!(Type::Int.pointee().is_none());
    }

    #[test]
    fn struct_id_through_pointer() {
        let sid = StructId::from_index(3);
        assert_eq!(Type::Struct(sid).struct_id(), Some(sid));
        assert_eq!(Type::ptr(Type::Struct(sid)).struct_id(), Some(sid));
        assert_eq!(Type::ptr(Type::ptr(Type::Struct(sid))).struct_id(), None);
        assert_eq!(Type::Int.struct_id(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::ptr(Type::Int).to_string(), "int*");
        assert_eq!(Type::array(Type::Int).to_string(), "int[]");
        assert_eq!(Type::Void.to_string(), "void");
    }
}
