//! The PIR module: the unit of whole-OS analysis.
//!
//! A module corresponds to the paper's "LLVM bytecode files + function
//! information database" (§4, P1): it owns every function, variable, struct
//! definition and source-file record, plus the identifier interner.

use crate::function::{Function, VarId, VarInfo, VarKind};
use crate::intern::{Interner, Symbol};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A function identifier within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(u32);

impl FuncId {
    /// Constructs from a raw index.
    pub fn from_index(i: usize) -> Self {
        FuncId(u32::try_from(i).expect("too many functions"))
    }

    /// The raw index into the module's function table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A struct-definition identifier within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(u32);

impl StructId {
    /// Constructs from a raw index.
    pub fn from_index(i: usize) -> Self {
        StructId(u32::try_from(i).expect("too many structs"))
    }

    /// The raw index into the module's struct table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A source-file identifier within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FileId(u32);

impl FileId {
    /// Constructs from a raw index.
    pub fn from_index(i: usize) -> Self {
        FileId(u32::try_from(i).expect("too many files"))
    }

    /// The raw index into the module's file table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The OS part a function belongs to, used to reproduce the paper's bug
/// distribution analysis (Fig. 11: drivers vs subsystems vs third-party …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Category {
    /// Device drivers (75% of Linux bugs in the paper).
    Drivers,
    /// Network stacks and protocol modules.
    Network,
    /// Filesystems.
    Filesystem,
    /// IoT-OS subsystem modules (bluetooth, IP stack, …).
    Subsystem,
    /// Third-party modules (68% of IoT-OS bugs in the paper).
    ThirdParty,
    /// Core kernel code.
    CoreKernel,
    /// Anything else.
    #[default]
    Other,
}

impl Category {
    /// All categories, for iteration in reports.
    pub const ALL: [Category; 7] = [
        Category::Drivers,
        Category::Network,
        Category::Filesystem,
        Category::Subsystem,
        Category::ThirdParty,
        Category::CoreKernel,
        Category::Other,
    ];

    /// Human-readable label.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Drivers => "drivers",
            Category::Network => "network",
            Category::Filesystem => "filesystem",
            Category::Subsystem => "subsystem",
            Category::ThirdParty => "third-party",
            Category::CoreKernel => "core-kernel",
            Category::Other => "other",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A named struct definition with ordered, named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// The struct's source name.
    pub name: String,
    /// Field name/type pairs in declaration order.
    pub fields: Vec<(Symbol, Type)>,
}

impl StructDef {
    /// Looks up a field's type by name.
    pub fn field_ty(&self, field: Symbol) -> Option<&Type> {
        self.fields
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, t)| t)
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }
}

/// Metadata for one mini-C source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path-like display name (e.g. `drivers/net/e1000_main.c`).
    pub name: String,
    /// Line count, for LOC accounting (Table 4/5).
    pub lines: u32,
    /// Dominant category of the file's functions.
    pub category: Category,
}

/// A whole-program PIR module.
#[derive(Debug, Clone, Default)]
pub struct Module {
    functions: Vec<Function>,
    func_by_name: HashMap<String, FuncId>,
    vars: Vec<VarInfo>,
    structs: Vec<StructDef>,
    struct_by_name: HashMap<String, StructId>,
    files: Vec<SourceFile>,
    globals: Vec<VarId>,
    /// Interner for field and external-function names.
    pub interner: Interner,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a source file and returns its id.
    pub fn add_file(&mut self, name: &str) -> FileId {
        let id = FileId::from_index(self.files.len());
        self.files.push(SourceFile {
            name: name.to_owned(),
            lines: 0,
            category: Category::Other,
        });
        id
    }

    /// Registers a source file with line count and category.
    pub fn add_file_with_meta(&mut self, name: &str, lines: u32, category: Category) -> FileId {
        let id = FileId::from_index(self.files.len());
        self.files.push(SourceFile {
            name: name.to_owned(),
            lines,
            category,
        });
        id
    }

    /// All source files.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// One source file.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.index()]
    }

    /// Mutable access to one source file (used to patch line counts).
    pub fn file_mut(&mut self, id: FileId) -> &mut SourceFile {
        &mut self.files[id.index()]
    }

    /// Defines a struct; returns the existing id if the name was defined.
    pub fn add_struct(&mut self, def: StructDef) -> StructId {
        if let Some(&id) = self.struct_by_name.get(&def.name) {
            self.structs[id.index()] = def;
            return id;
        }
        let id = StructId::from_index(self.structs.len());
        self.struct_by_name.insert(def.name.clone(), id);
        self.structs.push(def);
        id
    }

    /// Looks up a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.struct_by_name.get(name).copied()
    }

    /// One struct definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.index()]
    }

    /// All struct definitions.
    pub fn structs(&self) -> &[StructDef] {
        &self.structs
    }

    /// Creates a new variable and returns its id.
    pub fn add_var(&mut self, info: VarInfo) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(info);
        id
    }

    /// Creates a module-level global variable.
    pub fn add_global(&mut self, name: &str, ty: Type) -> VarId {
        let id = self.add_var(VarInfo {
            name: name.to_owned(),
            ty,
            kind: VarKind::Global,
            func: None,
        });
        self.globals.push(id);
        id
    }

    /// All global variables.
    pub fn globals(&self) -> &[VarId] {
        &self.globals
    }

    /// Metadata for one variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// Total number of variables (for capacity planning in analyses).
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Adds a completed function (normally via [`crate::FunctionBuilder`]).
    pub fn add_function(&mut self, func: Function) -> FuncId {
        let id = func.id;
        debug_assert_eq!(id.index(), self.functions.len());
        self.func_by_name.insert(func.name.clone(), id);
        self.functions.push(func);
        id
    }

    /// Reserves the next function id (used by the builder).
    pub fn next_func_id(&self) -> FuncId {
        FuncId::from_index(self.functions.len())
    }

    /// All functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// One function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to one function (used by the collector to mark
    /// interface functions).
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_by_name.get(name).copied()
    }

    /// Total lines of code across all files (Table 4/5 accounting).
    pub fn total_loc(&self) -> u64 {
        self.files.iter().map(|f| u64::from(f.lines)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_registration_and_lookup() {
        let mut m = Module::new();
        let f = m.interner.intern("frnd");
        let id = m.add_struct(StructDef {
            name: "bt_mesh_cfg_srv".into(),
            fields: vec![(f, Type::Int)],
        });
        assert_eq!(m.struct_by_name("bt_mesh_cfg_srv"), Some(id));
        assert_eq!(m.struct_def(id).field_ty(f), Some(&Type::Int));
        assert_eq!(m.struct_def(id).field_count(), 1);
        assert!(m.struct_by_name("missing").is_none());
    }

    #[test]
    fn redefining_struct_keeps_id() {
        let mut m = Module::new();
        let id1 = m.add_struct(StructDef {
            name: "s".into(),
            fields: vec![],
        });
        let f = m.interner.intern("x");
        let id2 = m.add_struct(StructDef {
            name: "s".into(),
            fields: vec![(f, Type::Int)],
        });
        assert_eq!(id1, id2);
        assert_eq!(m.struct_def(id1).field_count(), 1);
    }

    #[test]
    fn globals_tracked() {
        let mut m = Module::new();
        let g = m.add_global("jiffies", Type::Int);
        assert_eq!(m.globals(), &[g]);
        assert_eq!(m.var(g).kind, VarKind::Global);
        assert_eq!(m.var(g).name, "jiffies");
    }

    #[test]
    fn file_loc_accounting() {
        let mut m = Module::new();
        m.add_file_with_meta("a.c", 120, Category::Drivers);
        m.add_file_with_meta("b.c", 80, Category::Network);
        assert_eq!(m.total_loc(), 200);
    }
}
