//! Control-flow-graph utilities: successor/predecessor maps, reverse
//! postorder, and reachability — shared by PATA's path explorer and by the
//! baseline analyzers (which are flow- or path-insensitive and iterate the
//! CFG in RPO instead of enumerating paths).

use crate::function::{BlockId, Function};
use std::collections::VecDeque;

/// Successor/predecessor view over one function's blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    entry: BlockId,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.blocks().len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bi, block) in func.blocks().iter().enumerate() {
            for s in block.term.successors() {
                succs[bi].push(s);
                preds[s.index()].push(BlockId::from_index(bi));
            }
        }
        Cfg {
            succs,
            preds,
            entry: func.entry(),
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the function has no blocks (never true for built functions).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::new();
        seen[self.entry.index()] = true;
        queue.push_back(self.entry);
        while let Some(b) = queue.pop_front() {
            for &s in self.succs(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    queue.push_back(s);
                }
            }
        }
        seen
    }
}

/// Reverse postorder over a function's reachable blocks.
///
/// Iterating in RPO visits each block before its successors except along
/// back edges — the standard order for forward dataflow (used by the
/// Andersen-points-to and value-flow baselines).
#[derive(Debug, Clone)]
pub struct ReversePostorder {
    order: Vec<BlockId>,
    position: Vec<Option<usize>>,
}

impl ReversePostorder {
    /// Computes the RPO of `func`'s CFG.
    pub fn new(func: &Function) -> Self {
        let cfg = Cfg::new(func);
        let n = cfg.len();
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        // Iterative DFS computing postorder.
        let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry(), 0)];
        visited[cfg.entry().index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = cfg.succs(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        postorder.reverse();
        let mut position = vec![None; n];
        for (i, b) in postorder.iter().enumerate() {
            position[b.index()] = Some(i);
        }
        ReversePostorder {
            order: postorder,
            position,
        }
    }

    /// The blocks in reverse postorder.
    pub fn order(&self) -> &[BlockId] {
        &self.order
    }

    /// Position of `b` in the order, if reachable.
    pub fn position(&self, b: BlockId) -> Option<usize> {
        self.position[b.index()]
    }

    /// Whether the edge `from → to` is a back edge (to appears before from).
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        match (self.position(from), self.position(to)) {
            (Some(f), Some(t)) => t <= f,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpOp, ConstVal, Operand};
    use crate::module::Module;
    use crate::types::Type;

    fn diamond() -> (Module, crate::module::FuncId) {
        let mut m = Module::new();
        let file = m.add_file("d.c");
        let mut b = FunctionBuilder::new(&mut m, "diamond", file);
        let p = b.param("p", Type::Int);
        let c = b.temp(Type::Bool);
        b.cmp(
            c,
            CmpOp::Eq,
            Operand::Var(p),
            Operand::Const(ConstVal::Int(0)),
            1,
        );
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(c, t, e, 1);
        b.switch_to(t);
        b.jump(j, 2);
        b.switch_to(e);
        b.jump(j, 3);
        b.switch_to(j);
        b.ret(None, 4);
        let id = b.finish();
        (m, id)
    }

    #[test]
    fn diamond_cfg_edges() {
        let (m, id) = diamond();
        let cfg = Cfg::new(m.function(id));
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.succs(BlockId::from_index(0)).len(), 2);
        assert_eq!(cfg.preds(BlockId::from_index(3)).len(), 2);
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn rpo_entry_first_join_last() {
        let (m, id) = diamond();
        let rpo = ReversePostorder::new(m.function(id));
        assert_eq!(rpo.order().first(), Some(&BlockId::from_index(0)));
        assert_eq!(rpo.order().last(), Some(&BlockId::from_index(3)));
        assert_eq!(rpo.order().len(), 4);
    }

    #[test]
    fn back_edge_detection() {
        // while loop: entry -> header; header -> body|exit; body -> header
        let mut m = Module::new();
        let file = m.add_file("l.c");
        let mut b = FunctionBuilder::new(&mut m, "looper", file);
        let i = b.local("i", Type::Int);
        b.assign_const(i, ConstVal::Int(0), 1);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header, 1);
        b.switch_to(header);
        let c = b.temp(Type::Bool);
        b.cmp(
            c,
            CmpOp::Lt,
            Operand::Var(i),
            Operand::Const(ConstVal::Int(10)),
            2,
        );
        b.branch(c, body, exit, 2);
        b.switch_to(body);
        b.jump(header, 3);
        b.switch_to(exit);
        b.ret(None, 4);
        let id = b.finish();
        let rpo = ReversePostorder::new(m.function(id));
        assert!(rpo.is_back_edge(body, header));
        assert!(!rpo.is_back_edge(header, body));
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let mut m = Module::new();
        let file = m.add_file("u.c");
        let mut b = FunctionBuilder::new(&mut m, "f", file);
        let dead = b.new_block();
        b.ret(None, 1);
        b.switch_to(dead);
        b.ret(None, 2);
        let id = b.finish();
        let rpo = ReversePostorder::new(m.function(id));
        assert_eq!(rpo.order().len(), 1);
        assert!(rpo.position(dead).is_none());
    }
}
