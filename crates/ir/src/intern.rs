//! String interning for identifiers (variable names, field names, function
//! names). Field names appear as alias-graph edge labels, so comparing them
//! must be O(1); interning gives each distinct string a stable [`Symbol`].

use std::collections::HashMap;
use std::fmt;

/// An interned string handle.
///
/// Two `Symbol`s produced by the same [`Interner`] are equal iff the strings
/// they intern are equal. Symbols are `Copy` and hashable, making them cheap
/// alias-graph edge labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol within its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A string interner mapping strings to stable [`Symbol`] handles.
///
/// # Example
///
/// ```
/// use pata_ir::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("frnd");
/// let b = interner.intern("frnd");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "frnd");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if `s` was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("too many symbols"));
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Looks up a previously interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let names = ["plat_dev", "user_data", "frnd", "ktask"];
        let syms: Vec<_> = names.iter().map(|n| i.intern(n)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(*sym), *name);
        }
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        assert!(i.is_empty());
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
    }
}
