//! Structural verification of PIR modules.
//!
//! The mini-C lowering and the corpus generator both produce PIR; the
//! verifier catches malformed IR early (dangling block targets, variables
//! used across functions without call linkage, unterminated reachable
//! blocks) so analysis bugs are not chased into the front-end.

use crate::cfg::Cfg;
use crate::function::{Function, VarKind};
use crate::inst::Terminator;
use crate::module::Module;
use std::fmt;

/// A structural defect found by verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A terminator targets a block id outside the function.
    BadBlockTarget {
        /// Offending function name.
        func: String,
        /// Source block index.
        block: usize,
        /// The out-of-range target index.
        target: usize,
    },
    /// A reachable block still has the builder's placeholder terminator.
    UnterminatedBlock {
        /// Offending function name.
        func: String,
        /// Block index.
        block: usize,
    },
    /// An instruction references a variable owned by a different function.
    ForeignVariable {
        /// Offending function name.
        func: String,
        /// Block index.
        block: usize,
        /// Instruction index.
        inst: usize,
        /// The foreign variable's name.
        var: String,
    },
    /// A variable id is out of range for the module.
    DanglingVariable {
        /// Offending function name.
        func: String,
        /// The raw out-of-range id.
        var: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadBlockTarget {
                func,
                block,
                target,
            } => {
                write!(
                    f,
                    "function {func}: bb{block} targets nonexistent bb{target}"
                )
            }
            VerifyError::UnterminatedBlock { func, block } => {
                write!(f, "function {func}: reachable bb{block} is unterminated")
            }
            VerifyError::ForeignVariable {
                func,
                block,
                inst,
                var,
            } => {
                write!(
                    f,
                    "function {func}: bb{block}/i{inst} references foreign variable {var}"
                )
            }
            VerifyError::DanglingVariable { func, var } => {
                write!(f, "function {func}: variable id {var} out of range")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies one function, appending defects to `errors`.
pub fn verify_function(module: &Module, func: &Function, errors: &mut Vec<VerifyError>) {
    let nblocks = func.blocks().len();
    for (bi, block) in func.blocks().iter().enumerate() {
        for target in block.term.successors() {
            if target.index() >= nblocks {
                errors.push(VerifyError::BadBlockTarget {
                    func: func.name().to_owned(),
                    block: bi,
                    target: target.index(),
                });
            }
        }
    }
    // Unterminated reachable blocks: the builder leaves Unreachable; real
    // unreachable code is allowed, but the entry must flow somewhere.
    let cfg = Cfg::new(func);
    let reachable = cfg.reachable();
    for (bi, block) in func.blocks().iter().enumerate() {
        if reachable[bi] && matches!(block.term, Terminator::Unreachable) && !block.insts.is_empty()
        {
            errors.push(VerifyError::UnterminatedBlock {
                func: func.name().to_owned(),
                block: bi,
            });
        }
    }
    // Variable ownership.
    for (bi, block) in func.blocks().iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            let mut vars = inst.kind.uses();
            if let Some(d) = inst.kind.def() {
                vars.push(d);
            }
            for v in vars {
                if v.index() >= module.var_count() {
                    errors.push(VerifyError::DanglingVariable {
                        func: func.name().to_owned(),
                        var: v.index(),
                    });
                    continue;
                }
                let info = module.var(v);
                match info.kind {
                    VarKind::Global => {}
                    _ => {
                        if info.func != Some(func.id()) {
                            errors.push(VerifyError::ForeignVariable {
                                func: func.name().to_owned(),
                                block: bi,
                                inst: ii,
                                var: info.name.clone(),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Verifies every function in the module.
///
/// # Errors
///
/// Returns the list of all structural defects found; `Ok(())` when clean.
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for func in module.functions() {
        verify_function(module, func, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::ConstVal;
    use crate::types::Type;

    #[test]
    fn clean_function_verifies() {
        let mut m = Module::new();
        let file = m.add_file("v.c");
        let mut b = FunctionBuilder::new(&mut m, "ok", file);
        let x = b.local("x", Type::Int);
        b.assign_const(x, ConstVal::Int(1), 1);
        b.ret(None, 2);
        b.finish();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn foreign_variable_detected() {
        let mut m = Module::new();
        let file = m.add_file("v.c");
        let mut b1 = FunctionBuilder::new(&mut m, "one", file);
        let x = b1.local("x", Type::Int);
        b1.ret(None, 1);
        b1.finish();
        let mut b2 = FunctionBuilder::new(&mut m, "two", file);
        b2.assign_const(x, ConstVal::Int(1), 1); // x belongs to `one`
        b2.ret(None, 2);
        b2.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::ForeignVariable { .. })));
    }

    #[test]
    fn globals_usable_everywhere() {
        let mut m = Module::new();
        let file = m.add_file("v.c");
        let g = m.add_global("g", Type::Int);
        let mut b = FunctionBuilder::new(&mut m, "f", file);
        b.assign_const(g, ConstVal::Int(1), 1);
        b.ret(None, 2);
        b.finish();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn unterminated_reachable_block_detected() {
        let mut m = Module::new();
        let file = m.add_file("v.c");
        let mut b = FunctionBuilder::new(&mut m, "f", file);
        let x = b.local("x", Type::Int);
        b.assign_const(x, ConstVal::Int(1), 1);
        // never terminated
        b.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UnterminatedBlock { .. })));
    }
}
