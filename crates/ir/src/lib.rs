//! # PIR — the PATA intermediate representation
//!
//! PIR is a small, typed, LLVM-like intermediate representation that serves
//! as the substrate for the PATA analysis framework (ASPLOS'22). The paper
//! analyzes LLVM bytecode produced by Clang; PIR models exactly the
//! instruction subset the analysis inspects (§3.1 of the paper):
//!
//! * `MOVE`  (`v1 = v2`)        — [`InstKind::Move`]
//! * `STORE` (`*v2 = v1`)       — [`InstKind::Store`]
//! * `LOAD`  (`v1 = *v2`)       — [`InstKind::Load`]
//! * `GEP`   (`v1 = &v2->f`)    — [`InstKind::Gep`]
//!
//! plus calls, branches, arithmetic/comparison, heap and lock operations
//! needed by the six typestate checkers (null-pointer dereference,
//! uninitialized-variable access, memory leak, double lock/unlock,
//! array-index underflow and division by zero).
//!
//! A [`Module`] owns functions, global variables, struct definitions, source
//! file metadata and an interner for identifiers. Each [`Function`] is a
//! control-flow graph of [`Block`]s; every instruction carries a source
//! [`Loc`] so that bug reports point at mini-C source lines.
//!
//! # Example
//!
//! ```
//! use pata_ir::{Module, FunctionBuilder, Type};
//!
//! let mut module = Module::new();
//! let file = module.add_file("demo.c");
//! let mut b = FunctionBuilder::new(&mut module, "demo", file);
//! let p = b.param("p", Type::ptr(Type::Int));
//! let t = b.local("t", Type::Int);
//! b.load(t, p, 3);
//! b.ret(None, 4);
//! let func = b.finish();
//! assert_eq!(module.function(func).name(), "demo");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cfg;
mod function;
mod inst;
mod intern;
mod module;
mod printer;
mod types;
mod verify;

pub use builder::FunctionBuilder;
pub use cfg::{Cfg, ReversePostorder};
pub use function::{Block, BlockId, Function, VarId, VarInfo, VarKind};
pub use inst::{BinOp, Callee, CmpOp, ConstVal, Inst, InstId, InstKind, Loc, Operand, Terminator};
pub use intern::{Interner, Symbol};
pub use module::{Category, FileId, FuncId, Module, SourceFile, StructDef, StructId};
pub use printer::{function_text, print_module};
pub use types::Type;
pub use verify::{verify_function, verify_module, VerifyError};
