//! Functions, basic blocks and variables.
//!
//! Variables have *module-global* identity ([`VarId`] indexes the module's
//! variable table) because PATA's interprocedural alias graph spans inlined
//! call chains: `foo:p` and `bar:p` from the paper's Fig. 7 must be distinct
//! nodes that can nevertheless live in one graph.

use crate::inst::{Inst, InstId, Loc, Terminator};
use crate::module::{Category, FileId, FuncId};
use crate::types::Type;
use std::fmt;

/// A module-global variable identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    /// Constructs a `VarId` from a raw index (used by [`crate::Module`] and
    /// tests).
    pub fn from_index(i: usize) -> Self {
        VarId(u32::try_from(i).expect("too many variables"))
    }

    /// The raw index into the module's variable table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block identifier, local to its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// Constructs a `BlockId` from a raw index.
    pub fn from_index(i: usize) -> Self {
        BlockId(u32::try_from(i).expect("too many blocks"))
    }

    /// The raw index into the function's block list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// What kind of storage a variable denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A formal parameter.
    Param,
    /// A named local variable (has an `Alloca` declaration point).
    Local,
    /// A compiler-generated temporary (SSA-like; assigned once per path).
    Temp,
    /// A module-level global.
    Global,
}

/// Metadata for one variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source-level name (`p`, or a generated name like `t12` for temps).
    pub name: String,
    /// Static type.
    pub ty: Type,
    /// Storage kind.
    pub kind: VarKind,
    /// The function owning this variable; `None` for globals.
    pub func: Option<FuncId>,
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// The instructions, executed in order.
    pub insts: Vec<Inst>,
    /// The terminator deciding control flow.
    pub term: Terminator,
    /// Source location of the terminator.
    pub term_loc: Loc,
}

impl Block {
    /// An empty block ending in `Unreachable` (builder patches it later).
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Unreachable,
            term_loc: Loc::default(),
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// A PIR function: parameters, locals, and a CFG of basic blocks.
#[derive(Debug, Clone)]
pub struct Function {
    pub(crate) id: FuncId,
    pub(crate) name: String,
    pub(crate) params: Vec<VarId>,
    pub(crate) ret_ty: Type,
    pub(crate) blocks: Vec<Block>,
    pub(crate) entry: BlockId,
    pub(crate) file: FileId,
    pub(crate) category: Category,
    /// Set by the information collector: `true` when no explicit caller
    /// exists in the module — e.g. a driver `probe` registered through a
    /// function-pointer struct field (paper Fig. 1). These functions are the
    /// roots of PATA's top-down analysis.
    pub(crate) is_interface: bool,
}

impl Function {
    /// The function's id within its module.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The function's source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The formal parameters, in declaration order.
    pub fn params(&self) -> &[VarId] {
        &self.params
    }

    /// The declared return type.
    pub fn ret_ty(&self) -> &Type {
        &self.ret_ty
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// All blocks, indexable by [`BlockId::index`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// A single block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this function.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// The file this function was lowered from.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// The OS part this function belongs to (drivers, subsystem, …).
    pub fn category(&self) -> Category {
        self.category
    }

    /// Whether the collector marked this function as a module interface
    /// function (no explicit caller in the module).
    pub fn is_interface(&self) -> bool {
        self.is_interface
    }

    /// Marks this function as a module interface function (set by the
    /// information collector).
    pub fn set_interface(&mut self, value: bool) {
        self.is_interface = value;
    }

    /// Total number of instructions including terminators.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }

    /// Iterates over every instruction id in block order.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        let func = self.id;
        self.blocks.iter().enumerate().flat_map(move |(bi, b)| {
            (0..=b.insts.len()).map(move |ii| InstId {
                func,
                block: BlockId::from_index(bi),
                inst: ii,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::Module;

    #[test]
    fn inst_ids_cover_terminators() {
        let mut m = Module::new();
        let file = m.add_file("t.c");
        let mut b = FunctionBuilder::new(&mut m, "f", file);
        let x = b.local("x", Type::Int);
        b.assign_const(x, crate::inst::ConstVal::Int(1), 1);
        b.ret(None, 2);
        let f = b.finish();
        let func = m.function(f);
        let ids: Vec<_> = func.inst_ids().collect();
        // one Alloca + one Const + one terminator
        assert_eq!(ids.len(), func.inst_count());
        assert_eq!(
            ids.last().unwrap().inst,
            func.block(func.entry()).insts.len()
        );
    }
}
