//! PIR instructions, operands, terminators and source locations.
//!
//! The instruction set mirrors the LLVM subset PATA's path-based alias
//! analysis consumes (Fig. 5/6 of the paper): `MOVE`, `STORE`, `LOAD`, `GEP`
//! and calls, plus the operations that generate typestate events for the six
//! checkers (constant assignments, heap allocation and free, lock/unlock,
//! arithmetic and comparisons, array indexing).

use crate::function::{BlockId, VarId};
use crate::intern::Symbol;
use crate::module::{FileId, FuncId};
use std::fmt;

/// A source location: file plus 1-based line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Loc {
    /// The source file the instruction was lowered from.
    pub file: FileId,
    /// 1-based line number within the file; 0 when synthesized.
    pub line: u32,
}

impl Loc {
    /// Creates a location.
    pub fn new(file: FileId, line: u32) -> Self {
        Loc { file, line }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}:{}", self.file.index(), self.line)
    }
}

/// A unique program point: function, block, and instruction index.
///
/// The terminator of a block is addressed by `inst == block.insts.len()`.
/// `InstId` is the identity used for the paper's "instruction already in
/// path" loop/recursion cut (Fig. 6, lines 32-38) and for repeated-bug
/// deduplication (§4, P3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId {
    /// The owning function.
    pub func: FuncId,
    /// The owning block within the function.
    pub block: BlockId,
    /// Index into the block's instruction list (== len for the terminator).
    pub inst: usize,
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f{}.b{}.i{}",
            self.func.index(),
            self.block.index(),
            self.inst
        )
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstVal {
    /// An integer literal.
    Int(i64),
    /// The null pointer.
    Null,
}

impl ConstVal {
    /// The integer value this constant denotes (null is address 0).
    pub fn as_int(self) -> i64 {
        match self {
            ConstVal::Int(v) => v,
            ConstVal::Null => 0,
        }
    }
}

impl fmt::Display for ConstVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstVal::Int(v) => write!(f, "{v}"),
            ConstVal::Null => write!(f, "null"),
        }
    }
}

/// An instruction operand: a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A variable reference.
    Var(VarId),
    /// An immediate constant.
    Const(ConstVal),
}

impl Operand {
    /// The variable, if this operand is one.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// The constant, if this operand is one.
    pub fn as_const(self) -> Option<ConstVal> {
        match self {
            Operand::Const(c) => Some(c),
            Operand::Var(_) => None,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<ConstVal> for Operand {
    fn from(c: ConstVal) -> Self {
        Operand::Const(c)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Const(ConstVal::Int(v))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "%{}", v.index()),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary arithmetic/bitwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division — the division-by-zero checker watches the right operand.
    Div,
    /// Remainder — also watched by the division-by-zero checker.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
}

impl BinOp {
    /// Whether this operator traps on a zero right operand.
    pub fn traps_on_zero(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }

    /// The C-like spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Comparison operators producing booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// The comparison that holds exactly when this one does not.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The C-like spelling of the comparison.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The target of a call instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in the same module; analyzed interprocedurally.
    Direct(FuncId),
    /// An external function known only by name (e.g. `dev_err`); the
    /// analysis treats it as opaque.
    External(Symbol),
    /// A call through a function pointer; per §7 of the paper PATA does not
    /// resolve these.
    Indirect(VarId),
}

/// The payload of an instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// `dst = src` — the paper's MOVE; makes `dst` and `src` aliases.
    Move {
        /// Destination variable.
        dst: VarId,
        /// Source variable.
        src: VarId,
    },
    /// `dst = c` — constant assignment; `ass_null` / `ass_const` events.
    Const {
        /// Destination variable.
        dst: VarId,
        /// The constant assigned.
        value: ConstVal,
    },
    /// `dst = *addr` — the paper's LOAD.
    Load {
        /// Destination variable.
        dst: VarId,
        /// Dereferenced pointer.
        addr: VarId,
    },
    /// `*addr = val` — the paper's STORE.
    Store {
        /// Dereferenced destination pointer.
        addr: VarId,
        /// Stored value.
        val: Operand,
    },
    /// `dst = &base->field` — the paper's GEP (field-sensitive access).
    Gep {
        /// Destination variable.
        dst: VarId,
        /// Struct pointer being accessed.
        base: VarId,
        /// Field name.
        field: Symbol,
    },
    /// `dst = &function` — a function's address taken as a value (runtime
    /// callback registration, `d->ops = my_handler`). The paper's PATA does
    /// not resolve indirect calls (§7); this instruction enables the
    /// opt-in alias-graph-based resolution extension.
    FuncAddr {
        /// Destination pointer variable.
        dst: VarId,
        /// The referenced function.
        func: FuncId,
    },
    /// `dst = &src` — address of a variable. In the alias graph this gives
    /// `dst` a fresh node with a `*`-labeled edge to `src`'s node, so the
    /// access path `*dst` aliases `src`.
    AddrOf {
        /// Destination pointer variable.
        dst: VarId,
        /// The variable whose address is taken.
        src: VarId,
    },
    /// `dst = &base[index]` — array element address. PATA is
    /// array-insensitive (§5.2): distinct index expressions yield distinct
    /// access paths, a documented false-positive source.
    Index {
        /// Destination variable.
        dst: VarId,
        /// Array or pointer base.
        base: VarId,
        /// Element index.
        index: Operand,
    },
    /// `dst = lhs op rhs` — binary arithmetic.
    Bin {
        /// Destination variable.
        dst: VarId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = (lhs op rhs)` — comparison producing a boolean used by a
    /// subsequent conditional branch.
    Cmp {
        /// Destination (boolean) variable.
        dst: VarId,
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// A (possibly void) call: `dst = callee(args…)`.
    Call {
        /// Destination variable for the return value, if any.
        dst: Option<VarId>,
        /// Call target.
        callee: Callee,
        /// Actual arguments.
        args: Vec<Operand>,
    },
    /// Declares a local variable at its point of declaration; generates the
    /// UVA checker's `alloc` event (uninitialized until first assignment).
    Alloca {
        /// The declared local.
        dst: VarId,
        /// `false`: the variable's own value is uninitialized (scalar or
        /// pointer local). `true`: the variable is the address of fresh,
        /// uninitialized storage (a struct-valued local) — the pointer is
        /// valid but the pointee is uninitialized.
        storage: bool,
    },
    /// `dst = malloc(…)` — heap allocation; `malloc` event for the memory
    /// leak checker, `alloc` event for UVA (heap object uninitialized).
    Malloc {
        /// Pointer receiving the fresh heap object.
        dst: VarId,
    },
    /// `free(ptr)` — heap release; `free` event for the memory-leak checker.
    Free {
        /// Pointer being freed.
        ptr: VarId,
    },
    /// `memset(ptr, …)` — initializes the pointed-to object (UVA `ass_const`).
    Memset {
        /// Pointer whose pointee becomes initialized.
        ptr: VarId,
    },
    /// Acquire a lock object (double-lock checker).
    Lock {
        /// The lock object (usually a pointer to a lock struct).
        obj: VarId,
    },
    /// Release a lock object (double-unlock checker).
    Unlock {
        /// The lock object.
        obj: VarId,
    },
}

impl InstKind {
    /// The variable defined by this instruction, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            InstKind::Move { dst, .. }
            | InstKind::Const { dst, .. }
            | InstKind::Load { dst, .. }
            | InstKind::Gep { dst, .. }
            | InstKind::AddrOf { dst, .. }
            | InstKind::FuncAddr { dst, .. }
            | InstKind::Index { dst, .. }
            | InstKind::Bin { dst, .. }
            | InstKind::Cmp { dst, .. }
            | InstKind::Alloca { dst, .. }
            | InstKind::Malloc { dst } => Some(*dst),
            InstKind::Call { dst, .. } => *dst,
            InstKind::Store { .. }
            | InstKind::Free { .. }
            | InstKind::Memset { .. }
            | InstKind::Lock { .. }
            | InstKind::Unlock { .. } => None,
        }
    }

    /// Collects every variable read by this instruction.
    pub fn uses(&self) -> Vec<VarId> {
        fn push(out: &mut Vec<VarId>, op: &Operand) {
            if let Operand::Var(v) = op {
                out.push(*v);
            }
        }
        let mut out = Vec::new();
        match self {
            InstKind::Move { src, .. } => out.push(*src),
            InstKind::Const { .. }
            | InstKind::FuncAddr { .. }
            | InstKind::Alloca { .. }
            | InstKind::Malloc { .. } => {}
            InstKind::Load { addr, .. } => out.push(*addr),
            InstKind::Store { addr, val } => {
                out.push(*addr);
                push(&mut out, val);
            }
            InstKind::Gep { base, .. } => out.push(*base),
            InstKind::AddrOf { src, .. } => out.push(*src),
            InstKind::Index { base, index, .. } => {
                out.push(*base);
                push(&mut out, index);
            }
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                push(&mut out, lhs);
                push(&mut out, rhs);
            }
            InstKind::Call { callee, args, .. } => {
                if let Callee::Indirect(v) = callee {
                    out.push(*v);
                }
                for a in args {
                    push(&mut out, a);
                }
            }
            InstKind::Free { ptr } | InstKind::Memset { ptr } => out.push(*ptr),
            InstKind::Lock { obj } | InstKind::Unlock { obj } => out.push(*obj),
        }
        out
    }
}

/// An instruction together with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub kind: InstKind,
    /// Where the operation came from in the mini-C source.
    pub loc: Loc,
}

impl Inst {
    /// Creates an instruction at a location.
    pub fn new(kind: InstKind, loc: Loc) -> Self {
        Inst { kind, loc }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on a boolean variable. Traversing the
    /// `then_bb` edge generates the paper's `brt(e)` condition; `else_bb`
    /// generates `brf(e)` (Table 3).
    Branch {
        /// The boolean condition, defined by a preceding `Cmp`.
        cond: VarId,
        /// Successor when the condition is true.
        then_bb: BlockId,
        /// Successor when the condition is false.
        else_bb: BlockId,
    },
    /// Function return with optional value; `ret` event for the memory-leak
    /// checker.
    Ret(Option<Operand>),
    /// Marks statically unreachable code (e.g. after `panic`-like externs).
    Unreachable,
}

impl Terminator {
    /// The successor blocks of this terminator, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negate_is_involution() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn cmp_eval_matches_negate() {
        let samples = [(0, 0), (1, 2), (-3, 5), (7, -7), (i64::MAX, i64::MIN)];
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in samples {
                assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
                assert_eq!(op.eval(a, b), op.swap().eval(b, a));
            }
        }
    }

    #[test]
    fn defs_and_uses() {
        let d = VarId::from_index(0);
        let s = VarId::from_index(1);
        let mv = InstKind::Move { dst: d, src: s };
        assert_eq!(mv.def(), Some(d));
        assert_eq!(mv.uses(), vec![s]);

        let st = InstKind::Store {
            addr: d,
            val: Operand::Var(s),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![d, s]);

        let c = InstKind::Const {
            dst: d,
            value: ConstVal::Null,
        };
        assert_eq!(c.def(), Some(d));
        assert!(c.uses().is_empty());
    }

    #[test]
    fn terminator_successors() {
        let b0 = BlockId::from_index(0);
        let b1 = BlockId::from_index(1);
        assert_eq!(Terminator::Jump(b0).successors(), vec![b0]);
        let br = Terminator::Branch {
            cond: VarId::from_index(0),
            then_bb: b0,
            else_bb: b1,
        };
        assert_eq!(br.successors(), vec![b0, b1]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn traps_on_zero() {
        assert!(BinOp::Div.traps_on_zero());
        assert!(BinOp::Rem.traps_on_zero());
        assert!(!BinOp::Add.traps_on_zero());
    }
}
