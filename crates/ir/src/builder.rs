//! A convenience builder for constructing PIR functions.
//!
//! Used by the mini-C lowering (`pata-cc`), by tests and by benchmarks. The
//! builder maintains a current insertion block; control-flow helpers create
//! and switch blocks.

use crate::function::{Block, BlockId, Function, VarId, VarInfo, VarKind};
use crate::inst::{BinOp, Callee, CmpOp, ConstVal, Inst, InstKind, Loc, Operand, Terminator};
use crate::intern::Symbol;
use crate::module::{Category, FileId, FuncId, Module};
use crate::types::Type;

/// Incrementally builds one [`Function`] inside a [`Module`].
///
/// # Example
///
/// ```
/// use pata_ir::{Module, FunctionBuilder, Type, ConstVal, CmpOp, Operand};
///
/// let mut m = Module::new();
/// let file = m.add_file("ex.c");
/// let mut b = FunctionBuilder::new(&mut m, "check", file);
/// let p = b.param("p", Type::ptr(Type::Int));
/// let c = b.temp(Type::Bool);
/// b.cmp(c, CmpOp::Eq, Operand::Var(p), Operand::Const(ConstVal::Null), 2);
/// let (then_bb, else_bb) = (b.new_block(), b.new_block());
/// b.branch(c, then_bb, else_bb, 2);
/// b.switch_to(then_bb);
/// b.ret(None, 3);
/// b.switch_to(else_bb);
/// let t = b.temp(Type::Int);
/// b.load(t, p, 4);
/// b.ret(Some(Operand::Var(t)), 5);
/// let id = b.finish();
/// assert_eq!(m.function(id).blocks().len(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    id: FuncId,
    name: String,
    params: Vec<VarId>,
    ret_ty: Type,
    blocks: Vec<Block>,
    current: BlockId,
    file: FileId,
    category: Category,
    temp_counter: u32,
    terminated: Vec<bool>,
}

impl<'m> FunctionBuilder<'m> {
    /// Starts building a function named `name` in `module`.
    pub fn new(module: &'m mut Module, name: &str, file: FileId) -> Self {
        let id = module.next_func_id();
        FunctionBuilder {
            module,
            id,
            name: name.to_owned(),
            params: Vec::new(),
            ret_ty: Type::Void,
            blocks: vec![Block::new()],
            current: BlockId::from_index(0),
            file,
            category: Category::Other,
            temp_counter: 0,
            terminated: vec![false],
        }
    }

    /// The id the finished function will have.
    pub fn func_id(&self) -> FuncId {
        self.id
    }

    /// The module being built into.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    /// Sets the declared return type.
    pub fn set_ret_ty(&mut self, ty: Type) -> &mut Self {
        self.ret_ty = ty;
        self
    }

    /// Sets the OS category (drivers, subsystem, …).
    pub fn set_category(&mut self, category: Category) -> &mut Self {
        self.category = category;
        self
    }

    /// Declares a formal parameter.
    pub fn param(&mut self, name: &str, ty: Type) -> VarId {
        let v = self.module.add_var(VarInfo {
            name: name.to_owned(),
            ty,
            kind: VarKind::Param,
            func: Some(self.id),
        });
        self.params.push(v);
        v
    }

    /// Declares a named local variable (no `Alloca` emitted; see
    /// [`FunctionBuilder::alloca`]).
    pub fn local(&mut self, name: &str, ty: Type) -> VarId {
        self.module.add_var(VarInfo {
            name: name.to_owned(),
            ty,
            kind: VarKind::Local,
            func: Some(self.id),
        })
    }

    /// Creates a fresh compiler temporary.
    pub fn temp(&mut self, ty: Type) -> VarId {
        let name = format!("t{}", self.temp_counter);
        self.temp_counter += 1;
        self.module.add_var(VarInfo {
            name,
            ty,
            kind: VarKind::Temp,
            func: Some(self.id),
        })
    }

    /// Creates a new (empty) block and returns its id without switching.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block::new());
        self.terminated.push(false);
        id
    }

    /// Moves the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Whether the current block already has a real terminator.
    pub fn is_terminated(&self) -> bool {
        self.terminated[self.current.index()]
    }

    fn loc(&self, line: u32) -> Loc {
        Loc::new(self.file, line)
    }

    /// Emits an instruction into the current block.
    pub fn push(&mut self, kind: InstKind, line: u32) {
        if self.is_terminated() {
            // Dead code after return/goto — matches C semantics; skip.
            return;
        }
        let loc = self.loc(line);
        self.blocks[self.current.index()]
            .insts
            .push(Inst::new(kind, loc));
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: VarId, src: VarId, line: u32) {
        self.push(InstKind::Move { dst, src }, line);
    }

    /// `dst = value`.
    pub fn assign_const(&mut self, dst: VarId, value: ConstVal, line: u32) {
        self.push(InstKind::Const { dst, value }, line);
    }

    /// `dst = *addr`.
    pub fn load(&mut self, dst: VarId, addr: VarId, line: u32) {
        self.push(InstKind::Load { dst, addr }, line);
    }

    /// `*addr = val`.
    pub fn store(&mut self, addr: VarId, val: impl Into<Operand>, line: u32) {
        self.push(
            InstKind::Store {
                addr,
                val: val.into(),
            },
            line,
        );
    }

    /// `dst = &base->field`.
    pub fn gep(&mut self, dst: VarId, base: VarId, field: Symbol, line: u32) {
        self.push(InstKind::Gep { dst, base, field }, line);
    }

    /// `dst = &src`.
    pub fn addr_of(&mut self, dst: VarId, src: VarId, line: u32) {
        self.push(InstKind::AddrOf { dst, src }, line);
    }

    /// `dst = &function` (callback registration).
    pub fn func_addr(&mut self, dst: VarId, func: FuncId, line: u32) {
        self.push(InstKind::FuncAddr { dst, func }, line);
    }

    /// `dst = &base[index]`.
    pub fn index(&mut self, dst: VarId, base: VarId, index: impl Into<Operand>, line: u32) {
        self.push(
            InstKind::Index {
                dst,
                base,
                index: index.into(),
            },
            line,
        );
    }

    /// `dst = lhs op rhs`.
    pub fn bin(
        &mut self,
        dst: VarId,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        line: u32,
    ) {
        self.push(
            InstKind::Bin {
                dst,
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
            line,
        );
    }

    /// `dst = lhs op rhs` (comparison).
    pub fn cmp(
        &mut self,
        dst: VarId,
        op: CmpOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        line: u32,
    ) {
        self.push(
            InstKind::Cmp {
                dst,
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
            line,
        );
    }

    /// `dst = callee(args…)`.
    pub fn call(&mut self, dst: Option<VarId>, callee: Callee, args: Vec<Operand>, line: u32) {
        self.push(InstKind::Call { dst, callee, args }, line);
    }

    /// Declares `dst` at its point of declaration (UVA `alloc` event).
    /// `storage` is `true` for struct-valued locals whose variable is the
    /// (valid) address of fresh uninitialized storage.
    pub fn alloca(&mut self, dst: VarId, storage: bool, line: u32) {
        self.push(InstKind::Alloca { dst, storage }, line);
    }

    /// `dst = malloc(…)`.
    pub fn malloc(&mut self, dst: VarId, line: u32) {
        self.push(InstKind::Malloc { dst }, line);
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: VarId, line: u32) {
        self.push(InstKind::Free { ptr }, line);
    }

    /// `memset(ptr, …)`.
    pub fn memset(&mut self, ptr: VarId, line: u32) {
        self.push(InstKind::Memset { ptr }, line);
    }

    /// Acquires `obj` (double-lock checker event).
    pub fn lock(&mut self, obj: VarId, line: u32) {
        self.push(InstKind::Lock { obj }, line);
    }

    /// Releases `obj`.
    pub fn unlock(&mut self, obj: VarId, line: u32) {
        self.push(InstKind::Unlock { obj }, line);
    }

    fn terminate(&mut self, term: Terminator, line: u32) {
        if self.is_terminated() {
            return;
        }
        let loc = self.loc(line);
        let b = &mut self.blocks[self.current.index()];
        b.term = term;
        b.term_loc = loc;
        self.terminated[self.current.index()] = true;
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: BlockId, line: u32) {
        self.terminate(Terminator::Jump(target), line);
    }

    /// Conditional branch on `cond`.
    pub fn branch(&mut self, cond: VarId, then_bb: BlockId, else_bb: BlockId, line: u32) {
        self.terminate(
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            },
            line,
        );
    }

    /// Return, with optional value.
    pub fn ret(&mut self, value: Option<Operand>, line: u32) {
        self.terminate(Terminator::Ret(value), line);
    }

    /// Marks the current block unreachable.
    pub fn unreachable(&mut self, line: u32) {
        self.terminate(Terminator::Unreachable, line);
    }

    /// Finishes the function, adds it to the module, and returns its id.
    ///
    /// Any block never given a real terminator stays `Unreachable`, which
    /// [`crate::verify_function`] reports unless the block is genuinely
    /// unreachable.
    pub fn finish(self) -> FuncId {
        let func = Function {
            id: self.id,
            name: self.name,
            params: self.params,
            ret_ty: self.ret_ty,
            blocks: self.blocks,
            entry: BlockId::from_index(0),
            file: self.file,
            category: self.category,
            is_interface: false,
        };
        self.module.add_function(func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straightline_function() {
        let mut m = Module::new();
        let file = m.add_file("s.c");
        let mut b = FunctionBuilder::new(&mut m, "f", file);
        let x = b.local("x", Type::Int);
        b.alloca(x, false, 1);
        b.assign_const(x, ConstVal::Int(7), 2);
        b.ret(Some(Operand::Var(x)), 3);
        let id = b.finish();
        let f = m.function(id);
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.block(f.entry()).insts.len(), 2);
        assert!(matches!(f.block(f.entry()).term, Terminator::Ret(Some(_))));
    }

    #[test]
    fn code_after_return_is_dropped() {
        let mut m = Module::new();
        let file = m.add_file("s.c");
        let mut b = FunctionBuilder::new(&mut m, "f", file);
        let x = b.local("x", Type::Int);
        b.ret(None, 1);
        b.assign_const(x, ConstVal::Int(1), 2); // dead
        b.ret(None, 3); // dead
        let id = b.finish();
        let f = m.function(id);
        assert!(f.block(f.entry()).insts.is_empty());
        assert!(matches!(f.block(f.entry()).term, Terminator::Ret(None)));
    }

    #[test]
    fn temp_names_unique() {
        let mut m = Module::new();
        let file = m.add_file("s.c");
        let mut b = FunctionBuilder::new(&mut m, "f", file);
        let t1 = b.temp(Type::Int);
        let t2 = b.temp(Type::Int);
        b.ret(None, 1);
        b.finish();
        assert_ne!(m.var(t1).name, m.var(t2).name);
        assert_eq!(m.var(t1).kind, VarKind::Temp);
    }
}
