//! End-to-end pipeline benchmarks: mini-C compilation, path-sensitive
//! analysis (alias-aware vs PATA-NA — the Table 6 time comparison), and
//! validation, on a fixed small corpus.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pata_core::{AnalysisConfig, Pata};
use pata_corpus::{Corpus, OsProfile};

fn bench_pipeline(c: &mut Criterion) {
    let profile = OsProfile::tencent().with_scale(0.15);
    let corpus = Corpus::generate(&profile);

    c.bench_function("pipeline/compile_corpus", |b| {
        b.iter(|| black_box(corpus.compile().unwrap().functions().len()))
    });

    let module = corpus.compile().unwrap();
    c.bench_function("pipeline/analyze_alias_aware", |b| {
        b.iter(|| {
            let out = Pata::new(AnalysisConfig { threads: 1, ..AnalysisConfig::default() })
                .analyze(module.clone());
            black_box(out.reports.len())
        })
    });

    c.bench_function("pipeline/analyze_pata_na", |b| {
        b.iter(|| {
            let out = Pata::new(AnalysisConfig { threads: 1, ..AnalysisConfig::without_alias() })
                .analyze(module.clone());
            black_box(out.reports.len())
        })
    });

    c.bench_function("pipeline/analyze_no_validation", |b| {
        b.iter(|| {
            let out = Pata::new(AnalysisConfig {
                threads: 1,
                validate_paths: false,
                ..AnalysisConfig::default()
            })
            .analyze(module.clone());
            black_box(out.reports.len())
        })
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
