//! End-to-end pipeline benchmarks: mini-C compilation, path-sensitive
//! analysis (alias-aware vs PATA-NA — the Table 6 time comparison), and
//! validation, on a fixed small corpus.

use pata_bench::harness::{bench, hold};
use pata_core::{AnalysisConfig, AnalysisSession};
use pata_corpus::{Corpus, OsProfile};

fn main() {
    let profile = OsProfile::tencent().with_scale(0.15);
    let corpus = Corpus::generate(&profile);

    bench("pipeline/compile_corpus", || {
        hold(corpus.compile().unwrap().functions().len())
    });

    let module = corpus.compile().unwrap();
    bench("pipeline/analyze_alias_aware", || {
        let out = AnalysisSession::new(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        })
        .analyze_module(module.clone());
        hold(out.reports.len())
    });

    bench("pipeline/analyze_pata_na", || {
        let out = AnalysisSession::new(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::without_alias()
        })
        .analyze_module(module.clone());
        hold(out.reports.len())
    });

    bench("pipeline/analyze_no_validation", || {
        let out = AnalysisSession::new(AnalysisConfig {
            threads: 1,
            validate_paths: false,
            ..AnalysisConfig::default()
        })
        .analyze_module(module.clone());
        hold(out.reports.len())
    });
}
