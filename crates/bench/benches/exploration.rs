//! Stage-1 exploration benchmark: measures the effect of the exploration
//! reuse layer (state-fingerprint subsumption + memoized callee inlining)
//! on the linux corpus profile.
//!
//! Two configurations explore the *same* module:
//!
//! 1. `caches off` — plain DFS, every instruction executed live;
//! 2. `caches on`  — subsumption table + callee-summary memo (defaults).
//!
//! Both must produce bit-identical bug reports — checked here via the full
//! versioned report document, not just timed. A third configuration runs
//! with caches on across several threads with fork helpers enabled, and its
//! report must also be bit-identical (intra-root parallelism is a cache
//! warmer, never a verdict source).
//!
//! The target (ISSUE 3): caches cut live DFS steps
//! (`insts_processed - insts_replayed`) by at least 30%, with the wall-clock
//! effect reported alongside.
//!
//! `--smoke` runs a reduced single-round configuration for CI; `--scale F`
//! sizes the corpus (default 1.0).

use pata_bench::harness::time_once;
use pata_core::{AnalysisConfig, AnalysisSession, AnalysisStats, PossibleBug, Report};
use pata_corpus::{Corpus, OsProfile};

fn config(caches: bool, threads: usize, fork_depth: usize) -> AnalysisConfig {
    AnalysisConfig::builder()
        .threads(threads)
        .exploration_cache(caches)
        .callee_memo(caches)
        .fork_depth(fork_depth)
        .build()
        .expect("valid bench config")
}

/// Stage-1 only (the timed region): path exploration without validation.
fn explore(module: &pata_ir::Module, caches: bool) -> (Vec<PossibleBug>, AnalysisStats) {
    let pata = AnalysisSession::new(config(caches, 1, 0));
    let (_, candidates, stats) = pata.collect_candidates(module.clone());
    (candidates, stats)
}

/// Full pipeline: the versioned report document, for bit-identity checks.
fn full_report(
    module: &pata_ir::Module,
    caches: bool,
    threads: usize,
    fork_depth: usize,
) -> String {
    let outcome =
        AnalysisSession::new(config(caches, threads, fork_depth)).analyze_module(module.clone());
    Report::new(outcome.reports)
        .with_budget_notes(outcome.budget_notes)
        .to_json()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.2 } else { 1.0 });
    let rounds = if smoke { 1 } else { 5 };
    println!(
        "Stage-1 exploration benchmark (linux profile, scale {scale}{})",
        if smoke { ", smoke mode" } else { "" }
    );

    let corpus = Corpus::generate(&OsProfile::linux().with_scale(scale));
    let module = corpus.compile().expect("corpus compiles");

    // Timed: best of `rounds` for each configuration.
    let mut off_s = f64::INFINITY;
    let mut on_s = f64::INFINITY;
    let (base_candidates, base_stats) = explore(&module, false);
    let mut on_stats = AnalysisStats::default();
    for _ in 0..rounds {
        let ((candidates, stats), t) = time_once(|| explore(&module, false));
        assert_eq!(
            candidates.len(),
            base_candidates.len(),
            "caches-off runs must be deterministic"
        );
        assert_eq!(stats.insts_replayed, 0, "caches off must never replay");
        off_s = off_s.min(t);

        let ((candidates, stats), t) = time_once(|| explore(&module, true));
        assert_eq!(
            format!("{candidates:?}"),
            format!("{base_candidates:?}"),
            "caches must not change the candidate stream"
        );
        assert_eq!(
            stats.paths_explored, base_stats.paths_explored,
            "replay must account for every path the live run would take"
        );
        on_s = on_s.min(t);
        on_stats = stats;
    }

    // Bit-identical bug reports: caches on vs off, single thread vs forked
    // parallel exploration.
    let report_off = full_report(&module, false, 1, 0);
    let report_on = full_report(&module, true, 1, 0);
    assert_eq!(
        report_on, report_off,
        "caches must produce a bit-identical report document"
    );
    let report_forked = full_report(&module, true, 4, 2);
    assert_eq!(
        report_forked, report_off,
        "forked exploration must produce a bit-identical report document"
    );

    let live_off = base_stats.live_steps();
    let live_on = on_stats.live_steps();
    let step_cut = 100.0 * (1.0 - live_on as f64 / live_off.max(1) as f64);
    let wall_cut = 100.0 * (1.0 - on_s / off_s);
    println!();
    println!(
        "{:<24} {:>10} {:>14} {:>12} {:>10}",
        "configuration", "seconds", "live steps", "replayed", "hits"
    );
    println!("{}", "-".repeat(76));
    println!(
        "{:<24} {:>10.4} {:>14} {:>12} {:>10}",
        "caches off", off_s, live_off, 0, 0
    );
    println!(
        "{:<24} {:>10.4} {:>14} {:>12} {:>10}",
        "caches on (default)",
        on_s,
        live_on,
        on_stats.insts_replayed,
        on_stats.exploration_cache_hits + on_stats.callee_memo_hits
    );
    println!();
    println!(
        "subsumption hits: {}  callee memo hits: {}",
        on_stats.exploration_cache_hits, on_stats.callee_memo_hits
    );
    println!("reports: bit-identical across caches on/off and forked parallel exploration");
    println!("live DFS step cut: {step_cut:.1}%  wall-clock cut: {wall_cut:+.1}%");

    println!();
    if step_cut >= 30.0 {
        println!("PASS: exploration reuse cuts live DFS steps by {step_cut:.1}% (target ≥30%)");
    } else {
        println!("FAIL: exploration reuse cuts live DFS steps by {step_cut:.1}% (target ≥30%)");
        std::process::exit(1);
    }
}
