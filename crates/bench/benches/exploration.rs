//! Stage-1 exploration benchmark: measures the effect of the exploration
//! reuse layer (state-fingerprint subsumption + memoized callee inlining)
//! on the linux corpus profile.
//!
//! Two configurations explore the *same* module:
//!
//! 1. `caches off` — plain DFS, every instruction executed live;
//! 2. `caches on`  — subsumption table + callee-summary memo (defaults).
//!
//! Both must produce bit-identical bug reports — checked here via the full
//! versioned report document, not just timed. A third configuration runs
//! with caches on across several threads with fork helpers enabled, and its
//! report must also be bit-identical (intra-root parallelism is a cache
//! warmer, never a verdict source).
//!
//! The target (ISSUE 3): caches cut live DFS steps
//! (`insts_processed - insts_replayed`) by at least 30%, with the wall-clock
//! effect reported alongside.
//!
//! A second comparison (ISSUE 8) isolates the copy-on-write path-state
//! representation: with every cache off, branch forking through the undo
//! journal (`cow_state`, the default) must deliver at least 2x the live-step
//! throughput of literal clone-based forking (`--no-cow-state`), and both
//! must produce bit-identical reports at thread counts 1, 2 and 4.
//!
//! Headline numbers land in `results/BENCH_stage1.json` (section
//! `exploration`): live steps/sec, fork count, peak live-state bytes.
//!
//! `--smoke` runs a reduced single-round configuration for CI; `--scale F`
//! sizes the corpus (default 1.0).

use pata_bench::harness::time_once;
use pata_bench::results;
use pata_core::{AnalysisConfig, AnalysisSession, AnalysisStats, PossibleBug, Report};
use pata_corpus::{Corpus, OsProfile};

fn config(caches: bool, threads: usize, fork_depth: usize, cow: bool) -> AnalysisConfig {
    AnalysisConfig::builder()
        .threads(threads)
        .exploration_cache(caches)
        .callee_memo(caches)
        .fork_depth(fork_depth)
        .cow_state(cow)
        .build()
        .expect("valid bench config")
}

/// Stage-1 only (the timed region): path exploration without validation.
fn explore(module: &pata_ir::Module, caches: bool, cow: bool) -> (Vec<PossibleBug>, AnalysisStats) {
    let pata = AnalysisSession::new(config(caches, 1, 0, cow));
    let (_, candidates, stats) = pata.collect_candidates(module.clone());
    (candidates, stats)
}

/// Full pipeline: the versioned report document, for bit-identity checks.
fn full_report(
    module: &pata_ir::Module,
    caches: bool,
    threads: usize,
    fork_depth: usize,
    cow: bool,
) -> String {
    let outcome = AnalysisSession::new(config(caches, threads, fork_depth, cow))
        .analyze_module(module.clone());
    Report::new(outcome.reports)
        .with_budget_notes(outcome.budget_notes)
        .to_json()
}

/// One cache-free stage-1 run with telemetry on, for the fork counters.
fn fork_telemetry(module: &pata_ir::Module) -> (u64, u64, i64) {
    let session = AnalysisSession::new(
        AnalysisConfig::builder()
            .threads(1)
            .exploration_cache(false)
            .callee_memo(false)
            .fork_depth(0)
            .telemetry(true)
            .build()
            .expect("valid bench config"),
    );
    let _ = session.collect_candidates(module.clone());
    let snap = session.telemetry().snapshot();
    (
        snap.counter_sum("driver.explore.fork.forks"),
        snap.counter_sum("driver.explore.fork.bytes_copied"),
        snap.gauge("driver.explore.fork.live_bytes.max")
            .unwrap_or(0),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.2 } else { 1.0 });
    let rounds = if smoke { 1 } else { 5 };
    println!(
        "Stage-1 exploration benchmark (linux profile, scale {scale}{})",
        if smoke { ", smoke mode" } else { "" }
    );

    let corpus = Corpus::generate(&OsProfile::linux().with_scale(scale));
    let module = corpus.compile().expect("corpus compiles");

    // Timed: best of `rounds` for each configuration.
    let mut off_s = f64::INFINITY;
    let mut on_s = f64::INFINITY;
    let mut clone_s = f64::INFINITY;
    let (base_candidates, base_stats) = explore(&module, false, true);
    let mut on_stats = AnalysisStats::default();
    for _ in 0..rounds {
        let ((candidates, stats), t) = time_once(|| explore(&module, false, true));
        assert_eq!(
            candidates.len(),
            base_candidates.len(),
            "caches-off runs must be deterministic"
        );
        assert_eq!(stats.insts_replayed, 0, "caches off must never replay");
        off_s = off_s.min(t);

        let ((candidates, stats), t) = time_once(|| explore(&module, true, true));
        assert_eq!(
            format!("{candidates:?}"),
            format!("{base_candidates:?}"),
            "caches must not change the candidate stream"
        );
        assert_eq!(
            stats.paths_explored, base_stats.paths_explored,
            "replay must account for every path the live run would take"
        );
        on_s = on_s.min(t);
        on_stats = stats;

        // Clone-based forking, caches off: the same exploration, the same
        // live steps, only the state representation differs — the timing
        // gap is pure fork cost.
        let ((candidates, stats), t) = time_once(|| explore(&module, false, false));
        assert_eq!(
            format!("{candidates:?}"),
            format!("{base_candidates:?}"),
            "clone-based forking must not change the candidate stream"
        );
        assert_eq!(
            stats.live_steps(),
            base_stats.live_steps(),
            "fork representation must not change the step count"
        );
        clone_s = clone_s.min(t);
    }

    // Bit-identical bug reports: caches on vs off, single thread vs forked
    // parallel exploration, copy-on-write vs clone-based forking at
    // threads 1, 2 and 4.
    let report_off = full_report(&module, false, 1, 0, true);
    let report_on = full_report(&module, true, 1, 0, true);
    assert_eq!(
        report_on, report_off,
        "caches must produce a bit-identical report document"
    );
    let report_forked = full_report(&module, true, 4, 2, true);
    assert_eq!(
        report_forked, report_off,
        "forked exploration must produce a bit-identical report document"
    );
    for threads in [1, 2, 4] {
        for cow in [true, false] {
            let report = full_report(&module, true, threads, 0, cow);
            assert_eq!(
                report, report_off,
                "report must be byte-identical (threads {threads}, cow_state {cow})"
            );
        }
    }

    let live_off = base_stats.live_steps();
    let live_on = on_stats.live_steps();
    let step_cut = 100.0 * (1.0 - live_on as f64 / live_off.max(1) as f64);
    let wall_cut = 100.0 * (1.0 - on_s / off_s);
    // Same live steps in both fork modes, so the throughput ratio is the
    // inverse time ratio.
    let cow_speedup = clone_s / off_s.max(1e-9);
    let steps_per_sec = live_off as f64 / off_s.max(1e-9);
    let (forks, fork_bytes_copied, peak_live_bytes) = fork_telemetry(&module);

    println!();
    println!(
        "{:<28} {:>10} {:>14} {:>12} {:>10}",
        "configuration", "seconds", "live steps", "replayed", "hits"
    );
    println!("{}", "-".repeat(80));
    println!(
        "{:<28} {:>10.4} {:>14} {:>12} {:>10}",
        "caches off (cow)", off_s, live_off, 0, 0
    );
    println!(
        "{:<28} {:>10.4} {:>14} {:>12} {:>10}",
        "caches off (clone forks)", clone_s, live_off, 0, 0
    );
    println!(
        "{:<28} {:>10.4} {:>14} {:>12} {:>10}",
        "caches on (default)",
        on_s,
        live_on,
        on_stats.insts_replayed,
        on_stats.exploration_cache_hits + on_stats.callee_memo_hits
    );
    println!();
    println!(
        "subsumption hits: {}  callee memo hits: {}",
        on_stats.exploration_cache_hits, on_stats.callee_memo_hits
    );
    println!(
        "forks: {forks}  bytes copied at forks: {fork_bytes_copied}  \
         peak live state: {peak_live_bytes} bytes"
    );
    println!(
        "reports: bit-identical across caches on/off, forked parallel exploration, \
         and cow on/off at threads 1/2/4"
    );
    println!("live DFS step cut: {step_cut:.1}%  wall-clock cut: {wall_cut:+.1}%");
    println!(
        "cow live-step throughput: {:.2e} steps/s, {cow_speedup:.1}x clone-based forking",
        steps_per_sec
    );

    let section = results::object(&[
        ("scale", format!("{scale}")),
        ("steps_per_sec", format!("{steps_per_sec:.1}")),
        ("live_steps", format!("{live_off}")),
        ("forks", format!("{forks}")),
        ("fork_bytes_copied", format!("{fork_bytes_copied}")),
        ("peak_live_bytes", format!("{peak_live_bytes}")),
        ("cow_seconds", format!("{off_s:.6}")),
        ("clone_seconds", format!("{clone_s:.6}")),
        ("cow_speedup", format!("{cow_speedup:.3}")),
        ("step_cut_pct", format!("{step_cut:.1}")),
    ]);
    results::write_section("exploration", &section).expect("write results/BENCH_stage1.json");
    println!(
        "results: exploration section written to {}",
        results::bench_stage1_path().display()
    );

    println!();
    let mut failed = false;
    if step_cut >= 30.0 {
        println!("PASS: exploration reuse cuts live DFS steps by {step_cut:.1}% (target ≥30%)");
    } else {
        println!("FAIL: exploration reuse cuts live DFS steps by {step_cut:.1}% (target ≥30%)");
        failed = true;
    }
    if cow_speedup >= 2.0 {
        println!(
            "PASS: copy-on-write forking delivers {cow_speedup:.1}x the live-step throughput \
             of clone-based forking (target ≥2x)"
        );
    } else {
        println!(
            "FAIL: copy-on-write forking delivers {cow_speedup:.1}x the live-step throughput \
             of clone-based forking (target ≥2x)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
