//! Criterion micro-benchmarks for the conjunction solver: the workload of
//! the paper's Stage-2 path validation (one small constraint system per
//! candidate bug).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pata_smt::{CmpOp, Solver, Term};

fn bench_solver(c: &mut Criterion) {
    c.bench_function("smt/feasible_chain_50", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let syms: Vec<_> = (0..50).map(|_| s.fresh_symbol()).collect();
            for w in syms.windows(2) {
                s.assert_cmp(CmpOp::Le, Term::sym(w[0]), Term::sym(w[1]));
            }
            black_box(s.check())
        })
    });

    c.bench_function("smt/infeasible_cycle_50", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let syms: Vec<_> = (0..50).map(|_| s.fresh_symbol()).collect();
            for w in syms.windows(2) {
                s.assert_cmp(CmpOp::Lt, Term::sym(w[0]), Term::sym(w[1]));
            }
            s.assert_cmp(CmpOp::Lt, Term::sym(syms[49]), Term::sym(syms[0]));
            black_box(s.check())
        })
    });

    c.bench_function("smt/null_check_pattern", |b| {
        // The shape Stage 2 solves for a typical NPD candidate.
        b.iter(|| {
            let mut s = Solver::new();
            let p = s.fresh_symbol();
            let f = s.fresh_symbol();
            let n = s.fresh_symbol();
            s.assert_cmp(CmpOp::Eq, Term::sym(p), Term::int(0));
            s.assert_cmp(CmpOp::Eq, Term::sym(f), Term::sym(n).add(Term::int(4)));
            s.assert_cmp(CmpOp::Gt, Term::sym(n), Term::int(0));
            black_box(s.check())
        })
    });

    c.bench_function("smt/diseq_refutation", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let x = s.fresh_symbol();
            let y = s.fresh_symbol();
            s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y).add(Term::int(2)));
            s.assert_cmp(CmpOp::Ne, Term::sym(x).sub(Term::sym(y)), Term::int(2));
            black_box(s.check())
        })
    });
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
