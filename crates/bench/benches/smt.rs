//! Micro-benchmarks for the conjunction solver: the workload of the
//! paper's Stage-2 path validation (one small constraint system per
//! candidate bug), plus the incremental push/pop reuse path.

use pata_bench::harness::{bench, hold};
use pata_smt::{CmpOp, SatResult, Solver, Term};

fn main() {
    bench("smt/feasible_chain_50", || {
        let mut s = Solver::new();
        let syms: Vec<_> = (0..50).map(|_| s.fresh_symbol()).collect();
        for w in syms.windows(2) {
            s.assert_cmp(CmpOp::Le, Term::sym(w[0]), Term::sym(w[1]));
        }
        hold(s.check())
    });

    bench("smt/infeasible_cycle_50", || {
        let mut s = Solver::new();
        let syms: Vec<_> = (0..50).map(|_| s.fresh_symbol()).collect();
        for w in syms.windows(2) {
            s.assert_cmp(CmpOp::Lt, Term::sym(w[0]), Term::sym(w[1]));
        }
        s.assert_cmp(CmpOp::Lt, Term::sym(syms[49]), Term::sym(syms[0]));
        hold(s.check())
    });

    bench("smt/null_check_pattern", || {
        // The shape Stage 2 solves for a typical NPD candidate.
        let mut s = Solver::new();
        let p = s.fresh_symbol();
        let f = s.fresh_symbol();
        let n = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(p), Term::int(0));
        s.assert_cmp(CmpOp::Eq, Term::sym(f), Term::sym(n).add(Term::int(4)));
        s.assert_cmp(CmpOp::Gt, Term::sym(n), Term::int(0));
        hold(s.check())
    });

    bench("smt/diseq_refutation", || {
        let mut s = Solver::new();
        let x = s.fresh_symbol();
        let y = s.fresh_symbol();
        s.assert_cmp(CmpOp::Eq, Term::sym(x), Term::sym(y).add(Term::int(2)));
        s.assert_cmp(CmpOp::Ne, Term::sym(x).sub(Term::sym(y)), Term::int(2));
        hold(s.check())
    });

    // Shared-prefix workload: 50-constraint prefix solved once, 8 two-
    // constraint suffixes checked against it — batch vs push/pop reuse.
    bench("smt/shared_prefix_batch", || {
        let mut total = 0usize;
        for suffix in 0..8i64 {
            let mut s = Solver::new();
            let syms: Vec<_> = (0..50).map(|_| s.fresh_symbol()).collect();
            for w in syms.windows(2) {
                s.assert_cmp(CmpOp::Le, Term::sym(w[0]), Term::sym(w[1]));
            }
            s.assert_cmp(CmpOp::Ge, Term::sym(syms[49]), Term::int(suffix));
            s.assert_cmp(CmpOp::Le, Term::sym(syms[0]), Term::int(suffix));
            total += (s.check() == SatResult::Unsat) as usize;
        }
        hold(total)
    });

    bench("smt/shared_prefix_incremental", || {
        let mut total = 0usize;
        let mut s = Solver::new();
        let syms: Vec<_> = (0..50).map(|_| s.fresh_symbol()).collect();
        for w in syms.windows(2) {
            s.assert_cmp(CmpOp::Le, Term::sym(w[0]), Term::sym(w[1]));
        }
        for suffix in 0..8i64 {
            s.push();
            s.assert_cmp(CmpOp::Ge, Term::sym(syms[49]), Term::int(suffix));
            s.assert_cmp(CmpOp::Le, Term::sym(syms[0]), Term::int(suffix));
            total += (s.check() == SatResult::Unsat) as usize;
            s.pop();
        }
        hold(total)
    });
}
