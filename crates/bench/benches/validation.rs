//! Stage-2 validation benchmark: measures the wall-clock effect of the
//! incremental solver (scope reuse across shared constraint prefixes) and
//! the canonicalized validation cache on the linux corpus profile.
//!
//! Four configurations validate the *same* candidate stream (phases P1+P2
//! run once, outside the timed region):
//!
//! 1. `fresh`        — one batch solver per conjunction (both layers off);
//! 2. `incremental`  — one scoped solver, suffix-only re-solving;
//! 3. `inc+cache`    — incremental plus a cold canonical-key cache;
//! 4. `warm cache`   — a second pass over the warm cache (the cross-run
//!                     case: re-analysis after small edits, bench iterations).
//!
//! All four must produce identical verdict streams — checked here, not just
//! timed. The target (ISSUE 1): `inc+cache` at least 30% faster than
//! `fresh`.

use pata_bench::harness::time_once;
use pata_core::validate::{validate_constraints, Feasibility, PathValidator, ValidationCache};
use pata_core::{AnalysisConfig, AnalysisSession, PossibleBug};
use pata_corpus::{Corpus, OsProfile};

const ROUNDS: usize = 10;

fn verdicts_fresh(candidates: &[PossibleBug]) -> Vec<Feasibility> {
    candidates
        .iter()
        .map(|b| validate_constraints(&b.constraints, &b.extra).0)
        .collect()
}

fn verdicts_incremental(
    candidates: &[PossibleBug],
    cache: Option<&ValidationCache>,
) -> (Vec<Feasibility>, pata_core::validate::ValidationStats) {
    let mut v = PathValidator::new(cache);
    let out = candidates.iter().map(|b| v.validate(b)).collect();
    (out, v.stats())
}

fn main() {
    // Default to the full-size linux profile: the candidate stream at small
    // scales is too short for stable wall-clock percentages.
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let profile = OsProfile::linux().with_scale(scale);
    println!("Stage-2 validation benchmark (linux profile, scale {scale})");

    let corpus = Corpus::generate(&profile);
    let module = corpus.compile().expect("corpus compiles");
    let pata = AnalysisSession::new(AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    });
    let (_, mut candidates, _) = pata.collect_candidates(module);
    // Validate in the filter's order: stage 3 walks dedup groups, so path
    // snapshots of the same bug are adjacent (that is where constraint
    // prefixes are shared). A stable sort keeps within-group path order.
    candidates.sort_by_key(|b| b.dedup_key());
    let conjunctions: usize = candidates.len();
    println!("candidates to validate: {conjunctions}");

    // Timed: best of ROUNDS for each configuration (cold cache rebuilt per
    // round; the warm pass reuses the final round's cache).
    let mut fresh_s = f64::INFINITY;
    let mut inc_s = f64::INFINITY;
    let mut cached_s = f64::INFINITY;
    let mut warm_s = f64::INFINITY;
    let baseline = verdicts_fresh(&candidates);
    let mut last_stats = None;
    let mut warm_hits = 0u64;
    for _ in 0..ROUNDS {
        let (r, t) = time_once(|| verdicts_fresh(&candidates));
        assert_eq!(r, baseline);
        fresh_s = fresh_s.min(t);

        let ((r, stats), t) = time_once(|| verdicts_incremental(&candidates, None));
        assert_eq!(r, baseline, "incremental must match fresh verdicts");
        assert!(stats.scope_reuse > 0, "candidates share no prefixes?");
        inc_s = inc_s.min(t);

        let cache = ValidationCache::new();
        let ((r, stats), t) = time_once(|| verdicts_incremental(&candidates, Some(&cache)));
        assert_eq!(r, baseline, "cached must match fresh verdicts");
        cached_s = cached_s.min(t);
        last_stats = Some(stats);

        let ((r, stats), t) = time_once(|| verdicts_incremental(&candidates, Some(&cache)));
        assert_eq!(r, baseline, "warm-cache must match fresh verdicts");
        assert_eq!(stats.cache_misses, 0, "warm pass must be fully cached");
        warm_s = warm_s.min(t);
        warm_hits = stats.cache_hits;
    }
    let stats = last_stats.unwrap();

    let pct = |new: f64| 100.0 * (1.0 - new / fresh_s);
    println!();
    println!(
        "{:<28} {:>10} {:>10}",
        "configuration", "seconds", "vs fresh"
    );
    println!("{}", "-".repeat(52));
    println!(
        "{:<28} {:>10.4} {:>9.1}%",
        "fresh solver per candidate", fresh_s, 0.0
    );
    println!(
        "{:<28} {:>10.4} {:>9.1}%",
        "incremental (scopes)",
        inc_s,
        pct(inc_s)
    );
    println!(
        "{:<28} {:>10.4} {:>9.1}%",
        "incremental + cache (cold)",
        cached_s,
        pct(cached_s)
    );
    println!(
        "{:<28} {:>10.4} {:>9.1}%",
        "incremental + cache (warm)",
        warm_s,
        pct(warm_s)
    );
    println!();
    println!(
        "cold cache: {} hits / {} misses ({:.1}% hit rate), scope reuse {} constraints",
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64,
        stats.scope_reuse,
    );
    println!("warm cache: {warm_hits} hits / 0 misses");

    let speedup = pct(cached_s);
    println!();
    if speedup >= 30.0 {
        println!("PASS: incremental+cache cuts stage-2 wall-clock by {speedup:.1}% (target ≥30%)");
    } else {
        println!("FAIL: incremental+cache cuts stage-2 wall-clock by {speedup:.1}% (target ≥30%)");
        std::process::exit(1);
    }
}
