//! Persistence benchmark: warm incremental re-analysis from the on-disk
//! store vs. a cold run (ISSUE 7).
//!
//! The scenario is the `pata serve` / CI loop: analyze the linux corpus
//! once (cold, store written), then append one new function and re-analyze.
//! The warm run must
//!
//! 1. re-explore only the roots reachable from the changed function
//!    (here: exactly the one new root — every pre-existing root replays
//!    from the store), and
//! 2. cut wall-clock by at least 5x against the cold run.
//!
//! Independently of timing, the cold report, the warm-from-disk report,
//! and the daemon-served report (through the NDJSON serve loop) must be
//! byte-identical at every tested thread count.
//!
//! `--smoke` runs a reduced configuration for CI; `--scale F` sizes the
//! corpus (default 1.0).

use pata_bench::harness::time_once;
use pata_bench::results;
use pata_core::{AnalysisConfig, AnalysisRequest, AnalysisSession, SessionOutcome};
use pata_corpus::{Corpus, OsProfile};
use std::path::{Path, PathBuf};

fn config(threads: usize) -> AnalysisConfig {
    AnalysisConfig::builder()
        .threads(threads)
        .build()
        .expect("valid bench config")
}

/// A deep-path interface function: `branches` sequential condition
/// diamonds produce `2^branches` constraint-distinct paths (no state
/// subsumption applies — every path carries a different constraint set),
/// so exploration cost dwarfs parse cost, as it does on real OS code.
/// The function is bug-free: replaying it from the store costs nothing.
fn heavy_file(i: usize, branches: usize) -> String {
    let mut text = format!("int heavy_probe_{i}(int *p, int n) {{\n");
    text.push_str("    int acc = 0;\n");
    text.push_str("    int *buf = malloc(n);\n");
    text.push_str("    if (buf == NULL) { return -1; }\n");
    for b in 0..branches {
        text.push_str(&format!(
            "    if (n > {b}) {{ acc = acc + {b}; }} else {{ acc = acc - {b}; }}\n"
        ));
    }
    text.push_str("    free(buf);\n    return acc;\n}\n");
    text
}

fn request(corpus: &Corpus, heavy: &[(String, String)], edit: Option<&str>) -> AnalysisRequest {
    let mut r = AnalysisRequest::new();
    for f in &corpus.files {
        r = r.file(f.path.as_str(), f.text.as_str());
    }
    for (name, text) in heavy {
        r = r.file(name.as_str(), text.as_str());
    }
    if let Some(extra) = edit {
        r = r.file("bench_edit.c", extra);
    }
    r
}

fn run(store: &Path, threads: usize, req: &AnalysisRequest) -> SessionOutcome {
    AnalysisSession::open(config(threads), store)
        .analyze(req)
        .expect("corpus analyzes")
}

fn fresh_store(dir: &Path, tag: &str) -> PathBuf {
    let path = dir.join(format!("store-{tag}.json"));
    let _ = std::fs::remove_file(&path);
    path
}

/// The single-function edit: one new interface function in its own file,
/// so every previously analyzed function keeps its fingerprint.
const EDIT: &str = "
int bench_edit_probe(int *p) {
    if (p == NULL) { }
    return *p;
}
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.2 } else { 1.0 });
    let rounds = if smoke { 1 } else { 3 };
    println!(
        "Persistence benchmark (linux profile, scale {scale}{})",
        if smoke { ", smoke mode" } else { "" }
    );

    let dir = std::env::temp_dir().join(format!("pata-bench-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = Corpus::generate(&OsProfile::linux().with_scale(scale));
    // Smoke mode uses fewer but deeper roots: exploration must still dwarf
    // parse cost (the scenario above) now that copy-on-write forking has
    // made cold exploration itself cheaper.
    let heavy: Vec<(String, String)> = (0..if smoke { 12 } else { 40 })
        .map(|i| {
            let branches = if smoke { 12 } else { 11 };
            (format!("drivers/heavy_{i}.c"), heavy_file(i, branches))
        })
        .collect();
    let base_req = request(&corpus, &heavy, None);
    let edited_req = request(&corpus, &heavy, Some(EDIT));

    // Timed region: cold full analysis vs. warm incremental re-analysis
    // after the one-function edit. Best of `rounds` each, fresh store per
    // cold round so nothing replays.
    let mut cold_s = f64::INFINITY;
    let mut warm_s = f64::INFINITY;
    let mut cold_out = None;
    let mut warm_out = None;
    for round in 0..rounds {
        let store = fresh_store(&dir, &format!("timed-{round}"));
        let (out, t) = time_once(|| run(&store, 1, &base_req));
        assert!(!out.incremental.warm_start, "fresh store must run cold");
        cold_s = cold_s.min(t);
        cold_out = Some(out);

        let (out, t) = time_once(|| run(&store, 1, &edited_req));
        assert!(out.incremental.warm_start, "second run must load the store");
        assert_eq!(
            out.incremental.changed_functions, 1,
            "the edit touches exactly one function"
        );
        assert_eq!(
            out.incremental.dirty_roots, 1,
            "only the edited root may be re-explored"
        );
        assert_eq!(
            out.incremental.clean_roots,
            out.incremental.roots - 1,
            "every pre-existing root replays from the store"
        );
        warm_s = warm_s.min(t);
        warm_out = Some(out);
    }
    let cold_out = cold_out.unwrap();
    let warm_out = warm_out.unwrap();

    // The incremental report must equal a from-scratch analysis of the
    // edited sources.
    let scratch = run(&fresh_store(&dir, "scratch"), 1, &edited_req);
    assert_eq!(
        warm_out.report.to_json(),
        scratch.report.to_json(),
        "incremental report must match from-scratch analysis"
    );

    // Byte identity at every thread count: cold, warm-from-disk, and
    // daemon-served (the NDJSON loop `pata serve` runs) must all produce
    // the same report document.
    let expected = cold_out.report.to_json();
    for threads in [1, 2, 4] {
        let store = fresh_store(&dir, &format!("identity-{threads}"));
        let cold = run(&store, threads, &base_req);
        assert_eq!(cold.report.to_json(), expected, "cold, {threads} threads");
        let warm = run(&store, threads, &base_req);
        assert_eq!(warm.report.to_json(), expected, "warm, {threads} threads");
        assert_eq!(warm.incremental.dirty_roots, 0);

        let mut session = AnalysisSession::open(config(threads), &store);
        let files = corpus
            .files
            .iter()
            .map(|f| (f.path.as_str(), f.text.as_str()))
            .chain(heavy.iter().map(|(n, t)| (n.as_str(), t.as_str())))
            .map(|(name, text)| {
                format!(
                    "{{\"name\": {}, \"text\": {}}}",
                    pata_core::json::quote(name),
                    pata_core::json::quote(text)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let input = format!("{{\"id\": 1, \"op\": \"analyze\", \"files\": [{files}]}}\n");
        let mut out = Vec::new();
        pata_core::serve_loop(&mut session, input.as_bytes(), &mut out).unwrap();
        let line = String::from_utf8(out).unwrap();
        let start = line.find("\"report\": ").expect("analyze response") + "\"report\": ".len();
        assert!(
            line[start..].starts_with(&expected),
            "served, {threads} threads"
        );
    }

    let speedup = cold_s / warm_s.max(1e-9);
    println!();
    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "configuration", "seconds", "dirty", "clean"
    );
    println!("{}", "-".repeat(58));
    println!(
        "{:<28} {:>10.4} {:>8} {:>8}",
        "cold (fresh store)",
        cold_s,
        cold_out.incremental.dirty_roots,
        cold_out.incremental.clean_roots
    );
    println!(
        "{:<28} {:>10.4} {:>8} {:>8}",
        "warm (one-function edit)",
        warm_s,
        warm_out.incremental.dirty_roots,
        warm_out.incremental.clean_roots
    );
    println!();
    println!("reports: byte-identical cold/warm/served at threads 1, 2, 4");
    println!("warm speedup: {speedup:.1}x (target ≥5x)");

    let section = results::object(&[
        ("scale", format!("{scale}")),
        ("cold_seconds", format!("{cold_s:.6}")),
        ("warm_seconds", format!("{warm_s:.6}")),
        ("warm_speedup", format!("{speedup:.3}")),
        (
            "dirty_roots",
            format!("{}", warm_out.incremental.dirty_roots),
        ),
        (
            "clean_roots",
            format!("{}", warm_out.incremental.clean_roots),
        ),
    ]);
    results::write_section("persistence", &section).expect("write results/BENCH_stage1.json");
    println!(
        "results: persistence section written to {}",
        results::bench_stage1_path().display()
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!();
    if speedup >= 5.0 {
        println!(
            "PASS: warm incremental re-analysis is {speedup:.1}x faster than cold (target ≥5x)"
        );
    } else {
        println!(
            "FAIL: warm incremental re-analysis is {speedup:.1}x faster than cold (target ≥5x)"
        );
        std::process::exit(1);
    }
}
