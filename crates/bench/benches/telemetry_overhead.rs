//! Telemetry overhead benchmark: the cost of the metrics subsystem must be
//! a branch on an `AtomicBool` when disabled.
//!
//! Three measurements on the linux corpus profile:
//!
//! 1. **Micro** — nanoseconds per disabled recording site
//!    (`Telemetry::is_enabled` + dead `Span`), demonstrating the
//!    branch-only claim directly.
//! 2. **Pipeline, telemetry off** — full analysis wall-clock with
//!    `config.telemetry = false` (the default; what every non-profiling
//!    run pays).
//! 3. **Pipeline, telemetry on** — the same analysis with recording
//!    enabled, to show what `--profile` / `--stats-json` cost.
//!
//! The verdict stream must be byte-identical across both pipeline modes —
//! observability must never change analysis results.
//!
//! `--smoke` runs a reduced single-round configuration for CI; `--scale F`
//! sizes the corpus (default 1.0).

use pata_bench::harness::{bench, hold, time_once};
use pata_core::telemetry::{Span, Telemetry};
use pata_core::{AnalysisConfig, AnalysisSession};
use pata_corpus::{Corpus, OsProfile};

fn run_pipeline(module: &pata_ir::Module, telemetry: bool) -> (Vec<String>, u64) {
    let config = AnalysisConfig::builder()
        .threads(1)
        .telemetry(telemetry)
        .build()
        .expect("valid bench config");
    let outcome = AnalysisSession::new(config).analyze_module(module.clone());
    let verdicts = outcome.reports.iter().map(ToString::to_string).collect();
    (verdicts, outcome.stats.paths_explored)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.2 } else { 1.0 });
    let rounds = if smoke { 1 } else { 5 };
    println!(
        "Telemetry overhead benchmark (linux profile, scale {scale}{})",
        if smoke { ", smoke mode" } else { "" }
    );

    // 1. The disabled recording site: one relaxed atomic load + branch.
    let tel = Telemetry::new(false);
    bench("telemetry/disabled_is_enabled_check", || {
        hold(tel.is_enabled())
    });
    bench("telemetry/disabled_span_lifecycle", || {
        let span = Span::start(tel.is_enabled(), "bench.site");
        hold(span.is_live())
    });

    // 2 + 3. Full pipeline with telemetry off vs on.
    let corpus = Corpus::generate(&OsProfile::linux().with_scale(scale));
    let module = corpus.compile().expect("corpus compiles");

    let mut off_s = f64::INFINITY;
    let mut on_s = f64::INFINITY;
    let baseline = run_pipeline(&module, false);
    for _ in 0..rounds {
        let (r, t) = time_once(|| run_pipeline(&module, false));
        assert_eq!(r, baseline, "telemetry-off runs must be deterministic");
        off_s = off_s.min(t);

        let (r, t) = time_once(|| run_pipeline(&module, true));
        assert_eq!(
            r, baseline,
            "enabling telemetry must not change verdicts or path counts"
        );
        on_s = on_s.min(t);
    }

    let overhead_on = 100.0 * (on_s / off_s - 1.0);
    println!();
    println!("{:<28} {:>10}", "configuration", "seconds");
    println!("{}", "-".repeat(40));
    println!("{:<28} {:>10.4}", "telemetry off (default)", off_s);
    println!("{:<28} {:>10.4}", "telemetry on", on_s);
    println!();
    println!(
        "verdict streams: identical across modes ({} reports)",
        baseline.0.len()
    );
    println!("telemetry-on overhead vs off: {overhead_on:+.1}%");

    if smoke {
        println!();
        println!("PASS: smoke mode — verdict identity and recording sites exercised");
        return;
    }
    // Enabled mode is a profiling mode: the per-root labeled histograms
    // behind `--profile`'s top-N table dominate its cost (~1.5µs per root
    // for span, label, merge, and snapshot). Gate loosely — the point is
    // catching accidental per-instruction recording (which shows up as
    // 2-10x, not percents), while the disabled path stays the product
    // guarantee enforced above.
    if overhead_on < 25.0 {
        println!();
        println!("PASS: telemetry-on overhead {overhead_on:+.1}% (target <25%)");
    } else {
        println!();
        println!("FAIL: telemetry-on overhead {overhead_on:+.1}% (target <25%)");
        std::process::exit(1);
    }
}
