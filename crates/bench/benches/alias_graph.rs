//! Micro-benchmarks for the alias graph: the Fig. 5 update rules and the
//! journal rollback that gives each path its own graph.

use pata_bench::harness::{bench, hold};
use pata_core::alias::AliasGraph;
use pata_ir::{Interner, VarId};

fn main() {
    let mut interner = Interner::new();
    let fields: Vec<_> = (0..8).map(|i| interner.intern(&format!("f{i}"))).collect();

    bench("alias_graph/move_chain_100", || {
        let mut g = AliasGraph::new();
        for i in 1..100usize {
            g.handle_move(VarId::from_index(i), VarId::from_index(i - 1));
        }
        hold(g.node_count())
    });

    bench("alias_graph/gep_load_tree_100", || {
        let mut g = AliasGraph::new();
        for i in 0..100usize {
            let base = VarId::from_index(i % 10);
            let t = VarId::from_index(100 + i);
            let r = VarId::from_index(300 + i);
            g.handle_gep(t, base, fields[i % fields.len()]);
            g.handle_load(r, t);
        }
        hold(g.node_count())
    });

    {
        let mut g = AliasGraph::new();
        for i in 1..40usize {
            g.handle_move(VarId::from_index(i), VarId::from_index(i - 1));
        }
        bench("alias_graph/mark_rollback_50ops", || {
            let mark = g.mark();
            for i in 0..50usize {
                g.handle_gep(
                    VarId::from_index(200 + i),
                    VarId::from_index(i % 40),
                    fields[i % fields.len()],
                );
            }
            g.rollback(mark);
            hold(g.node_count())
        });
    }

    {
        let mut g = AliasGraph::new();
        for i in 1..20usize {
            g.handle_move(VarId::from_index(i), VarId::from_index(0));
        }
        let t = VarId::from_index(50);
        let n = g.handle_gep(t, VarId::from_index(0), fields[0]);
        bench("alias_graph/access_paths", || {
            hold(g.access_paths(n, 2).len())
        });
    }
}
