//! Machine-readable benchmark results.
//!
//! The smoke benches (exploration, persistence) append their headline
//! numbers to `results/BENCH_stage1.json` so CI can print a stage-timing
//! one-liner and later runs can diff against a recorded baseline. The file
//! is a single JSON object with one *section per bench, each on its own
//! line* — the line discipline is what lets this zero-dependency writer
//! read-modify-write the document without a JSON parser:
//!
//! ```json
//! {
//!   "exploration": {"steps_per_sec": 2971532.0, "forks": 20118, ...},
//!   "persistence": {"cold_s": 0.91, "warm_s": 0.04, ...}
//! }
//! ```
//!
//! Sections are rewritten in place (matched by name) and kept sorted, so
//! re-running one bench never clobbers another's numbers.

use std::path::PathBuf;

/// Repo-relative path of the stage-1 results document. Bench binaries run
/// with the package directory as cwd, so the path is anchored at this
/// crate's manifest, not the invocation cwd.
pub fn bench_stage1_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_stage1.json"
    ))
}

/// Builds a one-line JSON object from pre-encoded values (numbers or
/// already-quoted strings).
pub fn object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}: {v}", pata_core::json::quote(k)))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Inserts or replaces `section` (a one-line `{...}` object) in
/// `results/BENCH_stage1.json`, creating the file on first use.
pub fn write_section(name: &str, section: &str) -> std::io::Result<()> {
    assert!(
        !section.contains('\n'),
        "a results section must be a single line"
    );
    let path = bench_stage1_path();
    let mut sections = read_sections(&std::fs::read_to_string(&path).unwrap_or_default());
    match sections.iter_mut().find(|(n, _)| n == name) {
        Some((_, body)) => *body = section.to_owned(),
        None => sections.push((name.to_owned(), section.to_owned())),
    }
    sections.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::from("{\n");
    for (i, (n, body)) in sections.iter().enumerate() {
        out.push_str(&format!(
            "  {}: {body}{}\n",
            pata_core::json::quote(n),
            if i + 1 < sections.len() { "," } else { "" }
        ));
    }
    out.push_str("}\n");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&path, out)
}

/// Extracts `(name, object-line)` pairs from a document produced by
/// [`write_section`]. Unrecognized lines are dropped (the writer always
/// regenerates the full document).
fn read_sections(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, body)) = rest.split_once("\": ") else {
            continue;
        };
        let body = body.trim_end_matches(',');
        if body.starts_with('{') && body.ends_with('}') {
            out.push((name.to_owned(), body.to_owned()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_roundtrip_and_replace() {
        let doc = "{\n  \"b\": {\"x\": 1},\n  \"a\": {\"y\": 2}\n}\n";
        let mut sections = read_sections(doc);
        assert_eq!(
            sections,
            vec![
                ("b".to_owned(), "{\"x\": 1}".to_owned()),
                ("a".to_owned(), "{\"y\": 2}".to_owned()),
            ]
        );
        sections[0].1 = "{\"x\": 9}".to_owned();
        assert_eq!(sections[0].1, "{\"x\": 9}");
    }

    #[test]
    fn object_builds_one_line() {
        let o = object(&[("a", "1".to_owned()), ("b", "2.5".to_owned())]);
        assert_eq!(o, "{\"a\": 1, \"b\": 2.5}");
        assert!(!o.contains('\n'));
    }
}
