//! Regenerates **Table 5** — analysis results of the four OSes: analyzed
//! files/LOC, typestates (alias-aware vs unaware), SMT constraints
//! (alias-aware vs unaware), dropped repeated/false bugs, found/real bugs
//! per type (NPD/UVA/ML), and time.
//!
//! Shape targets from the paper (§5.1): alias awareness drops ~49.8% of
//! typestates and ~87.3% of SMT constraints; the overall false-positive
//! rate is ~28%; NPD dominates found bugs.

use pata_bench::{fmt_time, kind_cell, parse_scale, rule, run_profile};
use pata_core::AnalysisConfig;
use pata_corpus::OsProfile;

fn main() {
    let scale = parse_scale();
    println!("Table 5: Analysis results of the four OSes (scale {scale})");
    rule(126);
    println!(
        "{:<16} {:>6} {:>8} {:>21} {:>23} {:>8} {:>8} {:>18} {:>18} {:>8}",
        "OS",
        "Files",
        "LOC",
        "Typestates aw/unaw",
        "Constraints aw/unaw",
        "DropRep",
        "DropFls",
        "Found (N/U/M)",
        "Real (N/U/M)",
        "Time"
    );
    rule(126);

    let mut tot_ts = (0u64, 0u64);
    let mut tot_cs = (0u64, 0u64);
    let mut tot_found = 0usize;
    let mut tot_real = 0usize;
    let mut runs = Vec::new();
    for profile in OsProfile::all() {
        let p = profile.with_scale(scale);
        let run = run_profile(&p, AnalysisConfig::default());
        let s = &run.outcome.stats;
        tot_ts.0 += s.typestates_aware;
        tot_ts.1 += s.typestates_unaware;
        tot_cs.0 += s.constraints_aware;
        tot_cs.1 += s.constraints_unaware;
        tot_found += run.score.total_found();
        tot_real += run.score.total_real();
        println!(
            "{:<16} {:>6} {:>8} {:>10}/{:<10} {:>11}/{:<11} {:>8} {:>8} {:>18} {:>18} {:>8}",
            p.name,
            s.files_analyzed,
            s.loc_analyzed,
            s.typestates_aware,
            s.typestates_unaware,
            s.constraints_aware,
            s.constraints_unaware,
            s.repeated_bugs_dropped,
            s.false_bugs_dropped,
            kind_cell(&run.score, "found"),
            kind_cell(&run.score, "real"),
            fmt_time(run.seconds)
        );
        runs.push((p.name, run));
    }
    rule(126);

    // Stage-2 validation performance: canonical-key cache and incremental
    // scope reuse (see DESIGN.md "Performance architecture").
    println!();
    println!("Stage-2 validation (cache + incremental solver):");
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>12} {:>10}",
        "OS", "CacheHit", "CacheMiss", "HitRate", "ScopeReuse", "Steals"
    );
    rule(72);
    for (name, run) in &runs {
        let s = &run.outcome.stats;
        let lookups = (s.validation_cache_hits + s.validation_cache_misses).max(1);
        println!(
            "{:<16} {:>10} {:>10} {:>8.1}% {:>12} {:>10}",
            name,
            s.validation_cache_hits,
            s.validation_cache_misses,
            100.0 * s.validation_cache_hits as f64 / lookups as f64,
            s.validation_scope_reuse,
            s.work_steals,
        );
    }
    rule(72);
    let ts_drop = 100.0 * (1.0 - tot_ts.0 as f64 / tot_ts.1.max(1) as f64);
    let cs_drop = 100.0 * (1.0 - tot_cs.0 as f64 / tot_cs.1.max(1) as f64);
    let fp_rate = 100.0 * (1.0 - tot_real as f64 / tot_found.max(1) as f64);
    println!("Alias-aware typestate reduction:  {ts_drop:.1}%   (paper: 49.8%)");
    println!("Alias-aware constraint reduction: {cs_drop:.1}%   (paper: 87.3%)");
    println!("Overall false-positive rate:      {fp_rate:.1}%   (paper: 28%)");
    println!();
    println!("Paper reference (full-size totals): found 797 (647/122/28), real 574 (463/90/21)");
}
