//! Regenerates **Table 7** — generality: the three additional checkers
//! (double lock/unlock, array-index underflow, division by zero) on the
//! Linux profile.
//!
//! Shape target (paper §5.5): tens of additional bugs, most of them real —
//! each checker implemented in 100-200 lines on the same framework.

use pata_bench::{parse_scale, rule, run_profile};
use pata_core::{AnalysisConfig, BugKind};
use pata_corpus::OsProfile;

fn main() {
    let scale = parse_scale();
    println!("Table 7: Bugs found by three additional checkers in Linux (scale {scale})");
    let profile = OsProfile::linux().with_scale(scale);
    let config = AnalysisConfig::builder()
        .checkers(vec![
            BugKind::DoubleLock,
            BugKind::ArrayIndexUnderflow,
            BugKind::DivisionByZero,
        ])
        .build()
        .expect("valid table-7 config");
    let run = run_profile(&profile, config);

    rule(70);
    println!("{:<26} {:>12} {:>12}", "Bug type", "Found", "Real");
    rule(70);
    let mut tot = (0, 0);
    for kind in [
        BugKind::DoubleLock,
        BugKind::ArrayIndexUnderflow,
        BugKind::DivisionByZero,
    ] {
        let f = run.score.found_of(kind);
        let r = run.score.real_of(kind);
        tot.0 += f;
        tot.1 += r;
        println!("{:<26} {:>12} {:>12}", kind.as_str(), f, r);
    }
    rule(70);
    println!("{:<26} {:>12} {:>12}", "Total", tot.0, tot.1);
    println!();
    println!("Paper reference: double lock/unlock 22/18, array-index underflow 23/20,");
    println!("                 division by zero 7/5, total 52/43");
}
