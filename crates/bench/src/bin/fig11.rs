//! Regenerates **Figure 11** — distribution of the real bugs PATA finds,
//! by OS part.
//!
//! Shape targets: drivers hold ~75% of Linux bugs; third-party modules
//! hold ~68% and subsystems ~25% of IoT-OS bugs.

use pata_bench::{parse_scale, rule, run_profile};
use pata_core::AnalysisConfig;
use pata_corpus::OsProfile;
use pata_ir::Category;

fn main() {
    let scale = parse_scale();
    println!("Figure 11: Distribution of the found real bugs (scale {scale})");

    // (a) Linux.
    let linux = run_profile(
        &OsProfile::linux().with_scale(scale),
        AnalysisConfig::default(),
    );
    println!("\n(a) Linux");
    rule(54);
    let total: usize = linux.score.real_by_category.iter().map(|(_, n)| n).sum();
    for cat in Category::ALL {
        let n = linux
            .score
            .real_by_category
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if n > 0 {
            let pct = 100.0 * n as f64 / total.max(1) as f64;
            println!("{:<14} {:>5}  {:>5.1}%  {}", cat.as_str(), n, pct, bar(pct));
        }
    }
    println!("(paper: drivers 75%, network+fs 16%, others 9%)");

    // (b) IoT OSes combined.
    let mut iot: Vec<(Category, usize)> = Vec::new();
    for p in [OsProfile::zephyr(), OsProfile::riot(), OsProfile::tencent()] {
        let run = run_profile(&p.with_scale(scale), AnalysisConfig::default());
        for (c, n) in run.score.real_by_category {
            match iot.iter_mut().find(|(cc, _)| *cc == c) {
                Some((_, m)) => *m += n,
                None => iot.push((c, n)),
            }
        }
    }
    println!("\n(b) IoT OSes");
    rule(54);
    let total: usize = iot.iter().map(|(_, n)| n).sum();
    for cat in Category::ALL {
        let n = iot
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if n > 0 {
            let pct = 100.0 * n as f64 / total.max(1) as f64;
            println!("{:<14} {:>5}  {:>5.1}%  {}", cat.as_str(), n, pct, bar(pct));
        }
    }
    println!("(paper: third-party 68%, subsystem 25%, others 7%)");
}

fn bar(pct: f64) -> String {
    "#".repeat((pct / 2.5).round() as usize)
}
