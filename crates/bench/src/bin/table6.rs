//! Regenerates **Table 6** — sensitivity analysis: PATA vs PATA-NA (the
//! alias-unaware variant) on the Linux profile.
//!
//! Shape targets (paper §5.4): PATA-NA's real bugs are a subset of PATA's;
//! PATA finds many bugs PATA-NA misses; PATA-NA's false-positive rate is
//! far higher (69% vs 28%); PATA-NA runs faster.

use pata_bench::{fmt_time, kind_cell, parse_scale, rule, run_profile};
use pata_core::AnalysisConfig;
use pata_corpus::OsProfile;

fn main() {
    let scale = parse_scale();
    println!("Table 6: Sensitivity analysis results in Linux (scale {scale})");
    let profile = OsProfile::linux().with_scale(scale);

    let na = run_profile(&profile, AnalysisConfig::without_alias());
    let pata = run_profile(&profile, AnalysisConfig::default());

    rule(92);
    println!(
        "{:<14} {:>22} {:>22} {:>10} {:>10}",
        "Variant", "Found (N/U/M)", "Real (N/U/M)", "FP rate", "Time"
    );
    rule(92);
    for (name, run) in [("PATA-NA", &na), ("PATA", &pata)] {
        println!(
            "{:<14} {:>22} {:>22} {:>9.1}% {:>10}",
            name,
            kind_cell(&run.score, "found"),
            kind_cell(&run.score, "real"),
            100.0 * run.score.false_positive_rate(),
            fmt_time(run.seconds)
        );
    }
    rule(92);
    println!(
        "PATA finds {} real bugs missed by PATA-NA (paper: 260); NA-only real bugs: {}",
        pata.score
            .total_real()
            .saturating_sub(na.score.total_real()),
        na.score
            .total_real()
            .saturating_sub(pata.score.total_real().min(na.score.total_real()))
    );
    println!("Paper reference: PATA-NA found 620 / real 194 (FP 69%), PATA found 627 / real 454 (FP 28%)");
}
