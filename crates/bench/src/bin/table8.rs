//! Regenerates **Table 8** — comparison of PATA with the baseline tool
//! families on all four OS profiles.
//!
//! Shape targets (paper §6): PATA finds the most real bugs with the lowest
//! false-positive rate; the intraprocedural family misses cross-function /
//! alias bugs and reports infeasible-path FPs; SVF-Null misses everything
//! flowing through interface-function parameters (D1); the value-flow leak
//! detector finds only never-freed allocations; PATA costs more time than
//! the light-weight baselines.

use pata_baselines::all_baselines;
use pata_bench::{fmt_time, parse_scale, rule, run_baseline, run_profile};
use pata_core::AnalysisConfig;
use pata_corpus::OsProfile;

fn main() {
    let scale = parse_scale();
    println!("Table 8: Comparison results on the four OS models (scale {scale})");
    let baselines = all_baselines();
    rule(100);
    println!(
        "{:<16} {:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "OS", "Tool", "Found", "Real", "FPs", "FP rate", "Time"
    );
    rule(100);
    for profile in OsProfile::all() {
        let p = profile.with_scale(scale);
        let pata = run_profile(&p, AnalysisConfig::default());
        print_row(
            p.name,
            "PATA",
            pata.score.total_found(),
            pata.score.total_real(),
            pata.score.false_positives,
            pata.seconds,
        );
        for b in &baselines {
            let (score, secs) = run_baseline(&pata.corpus, b.as_ref());
            print_row(
                "",
                b.name(),
                score.total_found(),
                score.total_real(),
                score.false_positives,
                secs,
            );
        }
        rule(100);
    }
    println!(
        "Paper reference (Linux): PATA 627/454; Cppcheck 324/51; Smatch 423/110; CSA 1151/196"
    );
    println!("Paper reference (IoT):   PATA finds 24/67/29 real; Infer 1/10/4; Saber 0/2/0; SVF-Null 0/1/3");
}

fn print_row(os: &str, tool: &str, found: usize, real: usize, fps: usize, secs: f64) {
    let rate = if found == 0 {
        0.0
    } else {
        100.0 * (found - real) as f64 / found as f64
    };
    println!(
        "{:<16} {:<14} {:>10} {:>10} {:>10} {:>9.1}% {:>10}",
        os,
        tool,
        found,
        real,
        fps,
        rate,
        fmt_time(secs)
    );
}
