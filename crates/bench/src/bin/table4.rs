//! Regenerates **Table 4** — information about the four checked OSes
//! (version, source files, LOC).
//!
//! The corpus is a scaled synthetic model (see `pata-corpus`), so absolute
//! numbers differ from the paper by the scale factor; the *shape* —
//! Linux ≫ RIOT > TencentOS ≈ Zephyr, with a sizeable not-compiled
//! fraction — is the reproduction target.

use pata_bench::{parse_scale, rule};
use pata_corpus::{Corpus, OsProfile};

fn main() {
    let scale = parse_scale();
    println!("Table 4: Information about the four checked OSes (scale {scale})");
    rule(84);
    println!(
        "{:<16} {:<22} {:>16} {:>10} {:>12}",
        "OS", "Version", "Files (gen/all)", "LOC", "Functions"
    );
    rule(84);
    for profile in OsProfile::all() {
        let p = profile.with_scale(scale);
        let corpus = Corpus::generate(&p);
        let module = corpus.compile().expect("corpus compiles");
        let all_files = corpus.files.len() + p.unanalyzed_file_count();
        println!(
            "{:<16} {:<22} {:>9}/{:<6} {:>10} {:>12}",
            p.name,
            p.version,
            corpus.files.len(),
            all_files,
            corpus.loc(),
            module.functions().len()
        );
    }
    rule(84);
    println!("Paper reference (full-size):");
    println!("  Linux kernel 5.6      28,260 files  14.2M LOC");
    println!("  Zephyr 2.1.0           1,669 files   383K LOC");
    println!("  RIOT 2020.04           4,402 files 1,575K LOC");
    println!("  TencentOS-tiny 23313e  1,497 files   572K LOC");
}
