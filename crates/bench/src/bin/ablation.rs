//! Ablation study over PATA's design choices (beyond the paper's Table 6):
//! each row disables or varies one mechanism on the same Linux-model
//! corpus, showing what it contributes.
//!
//! * `PATA`            — the full system (baseline row).
//! * `no-alias`        — PATA-NA (Table 6): per-variable states + symbols.
//! * `no-validation`   — stage 2 disabled: every stage-1 candidate reported.
//! * `loops=2`         — two loop iterations per path (§7 future work).
//! * `resolve-fptrs`   — alias-graph function-pointer resolution (§7).

use pata_bench::{fmt_time, parse_scale, rule, run_profile};
use pata_core::AnalysisConfig;
use pata_corpus::OsProfile;

fn main() {
    let scale = parse_scale();
    println!("Ablation study on the Linux model (scale {scale})");
    let profile = OsProfile::linux().with_scale(scale);

    let build = |b: pata_core::AnalysisConfigBuilder| b.build().expect("valid ablation config");
    let rows: Vec<(&str, AnalysisConfig)> = vec![
        ("PATA", AnalysisConfig::default()),
        ("no-alias", AnalysisConfig::without_alias()),
        (
            "no-validation",
            build(AnalysisConfig::builder().validate_paths(false)),
        ),
        (
            "loops=2",
            build(AnalysisConfig::builder().loop_iterations(2)),
        ),
        (
            "resolve-fptrs",
            build(AnalysisConfig::builder().resolve_fptrs(true)),
        ),
    ];

    rule(96);
    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>10} {:>12} {:>12} {:>8}",
        "Variant", "Found", "Real", "FP rate", "Paths", "DropFalse", "Insts", "Time"
    );
    rule(96);
    for (name, config) in rows {
        let run = run_profile(&profile, config);
        println!(
            "{:<16} {:>8} {:>8} {:>8.1}% {:>10} {:>12} {:>12} {:>8}",
            name,
            run.score.total_found(),
            run.score.total_real(),
            100.0 * run.score.false_positive_rate(),
            run.outcome.stats.paths_explored,
            run.outcome.stats.false_bugs_dropped,
            run.outcome.stats.insts_processed,
            fmt_time(run.seconds)
        );
    }
    rule(96);
    println!("Reading guide: alias awareness buys both recall and precision (Table 6);");
    println!("validation buys precision only; deeper loops and fptr resolution buy recall");
    println!("on iteration-dependent and callback-dependent bugs at extra path cost.");
}
