//! A small self-contained micro-benchmark harness (no external crates):
//! calibrates an iteration count per benchmark, takes several samples and
//! prints the best and average time per iteration.
//!
//! Used by the `benches/*.rs` targets (`cargo bench`). Not statistics-grade
//! — it exists to show relative costs and catch order-of-magnitude
//! regressions offline.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Samples taken after calibration.
const SAMPLES: usize = 5;

/// Re-export so benches can `use pata_bench::harness::hold;` values out of
/// the optimizer's reach.
pub use std::hint::black_box as hold;

/// One timed result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Best observed nanoseconds per iteration.
    pub best_ns: f64,
    /// Mean nanoseconds per iteration over all samples.
    pub avg_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// Runs `f` repeatedly, prints `name  <best> ns/iter (avg <avg>)` and
/// returns the measurement.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    // Calibrate: double the batch size until one batch is long enough to
    // time reliably.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= SAMPLE_TARGET || iters >= 1 << 24 {
            break;
        }
        iters = if elapsed.is_zero() {
            iters * 16
        } else {
            let scale = SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64();
            (iters as f64 * scale.clamp(1.5, 16.0)).ceil() as u64
        };
    }

    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per);
        total += per;
    }
    let m = Measurement {
        best_ns: best,
        avg_ns: total / SAMPLES as f64,
        iters,
    };
    println!(
        "{name:<44} {:>14} ns/iter   (avg {})",
        fmt_ns(m.best_ns),
        fmt_ns(m.avg_ns)
    );
    m
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}")
    }
}

/// Times one execution of `f`, returning (result, seconds).
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let m = bench("harness/self_test", || (0..100u64).sum::<u64>());
        assert!(m.best_ns > 0.0);
        assert!(m.iters >= 1);
        assert!(m.avg_ns >= m.best_ns);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12");
        assert_eq!(fmt_ns(1500.0), "1.5us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns(3e9), "3.00s");
    }
}
