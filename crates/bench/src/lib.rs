//! # pata-bench — harness regenerating the paper's tables and figures
//!
//! One binary per evaluation artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table4` | Table 4 — information about the four checked OSes |
//! | `table5` | Table 5 — analysis results (typestates, SMT constraints, dropped/found/real bugs, time) |
//! | `table6` | Table 6 — sensitivity: PATA vs PATA-NA |
//! | `table7` | Table 7 — three additional checkers |
//! | `table8` | Table 8 — comparison with baseline tool families |
//! | `fig11`  | Figure 11 — distribution of found bugs by OS part |
//!
//! Every binary accepts `--scale <f64>` (default 0.5) to size the generated
//! corpus, and prints machine-readable rows followed by the paper's
//! reference values for shape comparison. Micro-benches (run with
//! `cargo bench`, no external harness) live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod results;

use pata_baselines::Analyzer;
use pata_core::{AnalysisConfig, AnalysisOutcome, AnalysisSession, BugKind};
use pata_corpus::{Corpus, OsProfile, Score};
use std::time::Instant;

/// Everything measured for one OS profile.
pub struct ProfileRun {
    /// The generated corpus.
    pub corpus: Corpus,
    /// PATA's outcome (reports + stats).
    pub outcome: AnalysisOutcome,
    /// PATA's score against ground truth.
    pub score: Score,
    /// Wall-clock seconds for analysis only.
    pub seconds: f64,
}

/// Parses `--scale <f>` from argv (default 0.5).
pub fn parse_scale() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

/// Generates + analyzes one profile with the given config.
pub fn run_profile(profile: &OsProfile, config: AnalysisConfig) -> ProfileRun {
    let corpus = Corpus::generate(profile);
    let module = corpus.compile().expect("generated corpus must compile");
    let start = Instant::now();
    let outcome = AnalysisSession::new(config).analyze_module(module);
    let seconds = start.elapsed().as_secs_f64();
    let score = corpus.manifest.score(&outcome.reports);
    ProfileRun {
        corpus,
        outcome,
        score,
        seconds,
    }
}

/// Runs a baseline analyzer on an existing corpus, returning its score and
/// wall-clock seconds.
pub fn run_baseline(corpus: &Corpus, analyzer: &dyn Analyzer) -> (Score, f64) {
    let module = corpus.compile().expect("generated corpus must compile");
    let start = Instant::now();
    let reports = analyzer.run(&module);
    let seconds = start.elapsed().as_secs_f64();
    (corpus.manifest.score(&reports), seconds)
}

/// Formats a `total (NPD/UVA/ML)` cell in the paper's layout.
pub fn kind_cell(score: &Score, which: &str) -> String {
    let get = |kind: BugKind| match which {
        "found" => score.found_of(kind),
        _ => score.real_of(kind),
    };
    let total: usize = match which {
        "found" => score.total_found(),
        _ => score.total_real(),
    };
    format!(
        "{total} ({}/{}/{})",
        get(BugKind::NullPointerDeref),
        get(BugKind::UninitVarAccess),
        get(BugKind::MemoryLeak)
    )
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Renders seconds as `XmYYs`.
pub fn fmt_time(seconds: f64) -> String {
    let total = seconds.round() as u64;
    format!("{}m{:02}s", total / 60, total % 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_profile_end_to_end() {
        let run = run_profile(
            &OsProfile::tencent().with_scale(0.3),
            AnalysisConfig {
                threads: 1,
                ..AnalysisConfig::default()
            },
        );
        assert!(run.score.total_found() > 0, "PATA should report something");
        assert!(
            run.score.total_real() > 0,
            "PATA should find injected bugs: {:?}",
            run.score
        );
        // The headline claim: FP rate well below 50%.
        assert!(
            run.score.false_positive_rate() < 0.5,
            "FP rate too high: {:.2} ({:?})",
            run.score.false_positive_rate(),
            run.score
        );
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(0.2), "0m00s");
        assert_eq!(fmt_time(61.0), "1m01s");
        assert_eq!(fmt_time(3601.0), "60m01s");
    }
}
