//! SVF-Null — the paper's Table 8 comparator built by replacing PATA's
//! path-based alias analysis with a points-to analysis (§6: "we replace the
//! path-based alias analysis with the SVF's flow-sensitive points-to
//! analysis in PATA, to implement a new tool named SVF-Null to detect
//! null-pointer dereferences").
//!
//! Mechanism: collect null *evidence* (a branch testing `p == NULL`, or a
//! `p = NULL` assignment) and dereference sites per function; report when a
//! dereferenced pointer **is or may-alias (by points-to)** an evidenced
//! pointer and the dereference is CFG-reachable from the evidence point.
//! There is no path-feasibility validation, and aliases that flow through
//! the pointer parameters of module interface functions are invisible
//! because those parameters have empty points-to sets (difficulty D1) — the
//! two reasons the paper's SVF-Null both misses PATA's bugs and reports
//! false positives.

use crate::points_to::PointsTo;
use crate::Analyzer;
use pata_core::{BugKind, BugReport};
use pata_ir::{
    BlockId, Cfg, CmpOp, ConstVal, Function, InstKind, Module, Operand, Terminator, VarId,
};
use std::collections::{HashMap, HashSet, VecDeque};

/// The SVF-Null analyzer.
#[derive(Debug, Default)]
pub struct SvfNullAnalyzer;

/// Blocks reachable from `from` (inclusive).
pub(crate) fn reachable_from(cfg: &Cfg, from: BlockId) -> Vec<bool> {
    let mut seen = vec![false; cfg.len()];
    let mut queue = VecDeque::new();
    seen[from.index()] = true;
    queue.push_back(from);
    while let Some(b) = queue.pop_front() {
        for &s in cfg.succs(b) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                queue.push_back(s);
            }
        }
    }
    seen
}

/// Null-evidence collection shared with the intraprocedural baseline:
/// `(variable, block where it is null, line)`.
pub(crate) fn null_evidence(func: &Function) -> Vec<(VarId, BlockId, u32)> {
    // cond temp -> (tested var, null-on-true)
    let mut cond_null: HashMap<VarId, (VarId, bool)> = HashMap::new();
    let mut out = Vec::new();
    for (bi, block) in func.blocks().iter().enumerate() {
        for inst in &block.insts {
            match &inst.kind {
                InstKind::Cmp { dst, op, lhs, rhs } => {
                    let (var, konst) = match (lhs, rhs) {
                        (Operand::Var(v), Operand::Const(c)) => (*v, *c),
                        (Operand::Const(c), Operand::Var(v)) => (*v, *c),
                        _ => continue,
                    };
                    if konst == ConstVal::Null {
                        match op {
                            CmpOp::Eq => {
                                cond_null.insert(*dst, (var, true));
                            }
                            CmpOp::Ne => {
                                cond_null.insert(*dst, (var, false));
                            }
                            _ => {}
                        }
                    }
                }
                InstKind::Const {
                    dst,
                    value: ConstVal::Null,
                } => {
                    out.push((*dst, BlockId::from_index(bi), inst.loc.line));
                }
                _ => {}
            }
        }
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = &block.term
        {
            if let Some(&(var, null_on_true)) = cond_null.get(cond) {
                let null_block = if null_on_true { *then_bb } else { *else_bb };
                out.push((var, null_block, block.term_loc.line));
            }
        }
    }
    out
}

/// All dereference sites `(pointer, block, line)` in a function.
pub(crate) fn deref_sites(module: &Module, func: &Function) -> Vec<(VarId, BlockId, u32)> {
    let mut out = Vec::new();
    for (bi, block) in func.blocks().iter().enumerate() {
        for inst in &block.insts {
            let ptr = match &inst.kind {
                InstKind::Load { addr, .. } => Some(*addr),
                InstKind::Store { addr, .. } => Some(*addr),
                InstKind::Gep { base, .. } => Some(*base),
                _ => None,
            };
            if let Some(p) = ptr {
                if module.var(p).ty.is_pointer() {
                    out.push((p, BlockId::from_index(bi), inst.loc.line));
                }
            }
        }
    }
    out
}

impl Analyzer for SvfNullAnalyzer {
    fn name(&self) -> &'static str {
        "SVF-Null"
    }

    fn run(&self, module: &Module) -> Vec<BugReport> {
        let pt = PointsTo::analyze(module);
        let mut reports = Vec::new();
        let mut seen = HashSet::new();
        for func in module.functions() {
            let cfg = Cfg::new(func);
            let evidence = null_evidence(func);
            let derefs = deref_sites(module, func);
            for &(ev_var, ev_block, ev_line) in &evidence {
                let reach = reachable_from(&cfg, ev_block);
                for &(ptr, db, line) in &derefs {
                    if !reach[db.index()] {
                        continue;
                    }
                    let aliased = ptr == ev_var || pt.may_alias(ptr, ev_var);
                    if !aliased {
                        continue;
                    }
                    if !seen.insert((func.id(), ev_line, line)) {
                        continue;
                    }
                    reports.push(BugReport {
                        kind: BugKind::NullPointerDeref,
                        file: module.file(func.file()).name.clone(),
                        function: func.name().to_owned(),
                        origin_line: ev_line,
                        site_line: line,
                        category: func.category(),
                        alias_paths: Vec::new(),
                        message: format!(
                            "possible null-pointer dereference in `{}` (points-to aliasing)",
                            func.name()
                        ),
                    });
                }
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<BugReport> {
        let m = pata_cc::compile_one("s.c", src).unwrap();
        SvfNullAnalyzer.run(&m)
    }

    #[test]
    fn same_variable_check_then_deref_found() {
        let reports = run(r#"
            int f(int *p) {
                if (p == NULL) { }
                return *p;
            }
            "#);
        assert!(!reports.is_empty());
    }

    #[test]
    fn guarded_deref_not_reported() {
        let reports = run(r#"
            int f(int *p) {
                if (p == NULL) { return -1; }
                return *p;
            }
            "#);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn misses_interface_alias_bug_d1() {
        // Fig. 3 shape: the alias flows through the interface parameter's
        // field — empty points-to sets hide it.
        let reports = run(r#"
            struct cfg_t { int frnd; };
            struct model_t { struct cfg_t *user_data; };
            static void send_status(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                int x = cfg->frnd;
            }
            static void friend_set(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                if (!cfg) {
                    send_status(model);
                }
            }
            static struct ops bt_ops = { .set = friend_set };
            "#);
        assert!(
            reports.is_empty(),
            "points-to-based analysis must miss the D1 alias bug: {reports:?}"
        );
    }

    #[test]
    fn reports_infeasible_path_fp() {
        // `p` is reassigned before the deref — flow-insensitive evidence
        // still fires: a false positive PATA would not produce.
        let reports = run(r#"
            int f(int c) {
                int x = 5;
                int *p = NULL;
                if (c > 0) {
                    p = &x;
                    return *p;
                }
                return 0;
            }
            "#);
        assert!(!reports.is_empty(), "expected the flow-insensitive FP");
    }
}
