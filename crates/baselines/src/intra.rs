//! Intraprocedural, alias-blind pattern checking — the mechanism of the
//! Cppcheck / Smatch / Coccinelle tool family (paper §6/§8.1: "due to
//! lacking inter-procedural analysis or alias analysis, Cppcheck,
//! Coccinelle and Smatch miss complex bugs involving multiple functions or
//! alias relationships … and report many false bugs caused by infeasible
//! code paths").
//!
//! Because source-level tools match on expression *text*, this analyzer
//! reconstructs a syntactic key for every lowered temporary (`d->res`,
//! `*p`, `buf[i]`) by walking PIR def chains, and then matches patterns on
//! those keys:
//!
//! * **NPD**: a `p == NULL` test whose null branch can reach a dereference
//!   of the same expression; and the classic *dereference-before-check*.
//! * **UVA**: a local read before any syntactic assignment.
//! * **ML**: a `malloc` whose pointer is never freed / returned / stored
//!   anywhere in the same function.

use crate::svf_null::{deref_sites, null_evidence, reachable_from};
use crate::Analyzer;
use pata_core::{BugKind, BugReport};
use pata_ir::{
    Cfg, Function, InstKind, Module, Operand, ReversePostorder, Terminator, VarId, VarKind,
};
use std::collections::{HashMap, HashSet};

/// The intraprocedural pattern analyzer.
#[derive(Debug, Default)]
pub struct IntraPatternAnalyzer;

/// Reconstructs source-like expression strings for each variable of `func`
/// (temporaries resolve through their defining instruction).
pub(crate) fn expr_keys(module: &Module, func: &Function) -> HashMap<VarId, String> {
    let mut keys: HashMap<VarId, String> = HashMap::new();
    for &p in func.params() {
        keys.insert(p, module.var(p).name.clone());
    }
    // Seed named locals and globals on the fly; temps resolve via defs in
    // program order (defs dominate uses in the lowering).
    let resolve = |keys: &HashMap<VarId, String>, v: VarId, module: &Module| -> String {
        if let Some(k) = keys.get(&v) {
            return k.clone();
        }
        module.var(v).name.clone()
    };
    for block in func.blocks() {
        for inst in &block.insts {
            match &inst.kind {
                InstKind::Move { dst, src } => {
                    let k = resolve(&keys, *src, module);
                    keys.insert(*dst, k);
                }
                InstKind::Gep { dst, base, field } => {
                    let b = resolve(&keys, *base, module);
                    keys.insert(*dst, format!("{b}->{}", module.interner.resolve(*field)));
                }
                InstKind::Load { dst, addr } => {
                    let a = resolve(&keys, *addr, module);
                    // Loading a GEP result reads the field value: keep the
                    // field path itself, the way source tools see `d->res`.
                    let k = if a.contains("->") || a.ends_with(']') {
                        a
                    } else {
                        format!("*{a}")
                    };
                    keys.insert(*dst, k);
                }
                InstKind::AddrOf { dst, src } => {
                    let s = resolve(&keys, *src, module);
                    keys.insert(*dst, format!("&{s}"));
                }
                InstKind::Index { dst, base, index } => {
                    let b = resolve(&keys, *base, module);
                    let i = match index {
                        Operand::Var(v) => resolve(&keys, *v, module),
                        Operand::Const(c) => c.to_string(),
                    };
                    keys.insert(*dst, format!("{b}[{i}]"));
                }
                _ => {
                    if let Some(d) = inst.kind.def() {
                        keys.entry(d).or_insert_with(|| module.var(d).name.clone());
                    }
                }
            }
        }
    }
    keys
}

impl IntraPatternAnalyzer {
    fn check_npd(&self, module: &Module, func: &Function, reports: &mut Vec<BugReport>) {
        let cfg = Cfg::new(func);
        let keys = expr_keys(module, func);
        let evidence = null_evidence(func);
        let derefs = deref_sites(module, func);
        let mut seen = HashSet::new();
        for &(ev_var, ev_block, ev_line) in &evidence {
            let ev_key = keys.get(&ev_var).cloned().unwrap_or_default();
            if ev_key.is_empty() {
                continue;
            }
            let reach = reachable_from(&cfg, ev_block);
            for &(ptr, db, line) in &derefs {
                if !reach[db.index()] || line <= ev_line {
                    continue;
                }
                let pk = keys.get(&ptr).cloned().unwrap_or_default();
                if pk != ev_key {
                    continue;
                }
                if seen.insert((func.id(), ev_line, line)) {
                    reports.push(BugReport {
                        kind: BugKind::NullPointerDeref,
                        file: module.file(func.file()).name.clone(),
                        function: func.name().to_owned(),
                        origin_line: ev_line,
                        site_line: line,
                        category: func.category(),
                        alias_paths: Vec::new(),
                        message: format!(
                            "`{ev_key}` checked against NULL at line {ev_line} and dereferenced at line {line}"
                        ),
                    });
                }
            }
        }
    }

    fn check_uva(&self, module: &Module, func: &Function, reports: &mut Vec<BugReport>) {
        // Linear RPO scan: a read of a local before any write along the
        // scan order. Writes through pointers (`*out = …` in a callee) are
        // invisible — the documented FP source of this tool family.
        let rpo = ReversePostorder::new(func);
        let mut written: HashSet<VarId> = HashSet::new();
        let mut declared: HashMap<VarId, u32> = HashMap::new();
        let mut reported: HashSet<VarId> = HashSet::new();
        for &b in rpo.order() {
            for inst in &func.block(b).insts {
                if let InstKind::Alloca {
                    dst,
                    storage: false,
                } = &inst.kind
                {
                    declared.insert(*dst, inst.loc.line);
                    continue;
                }
                for u in inst.kind.uses() {
                    if module.var(u).kind == VarKind::Local
                        && declared.contains_key(&u)
                        && !written.contains(&u)
                        && reported.insert(u)
                    {
                        reports.push(BugReport {
                            kind: BugKind::UninitVarAccess,
                            file: module.file(func.file()).name.clone(),
                            function: func.name().to_owned(),
                            origin_line: declared[&u],
                            site_line: inst.loc.line,
                            category: func.category(),
                            alias_paths: Vec::new(),
                            message: format!("`{}` may be used uninitialized", module.var(u).name),
                        });
                    }
                }
                if let Some(d) = inst.kind.def() {
                    written.insert(d);
                }
            }
            if let Terminator::Ret(Some(Operand::Var(v))) = &func.block(b).term {
                if module.var(*v).kind == VarKind::Local
                    && declared.contains_key(v)
                    && !written.contains(v)
                    && reported.insert(*v)
                {
                    reports.push(BugReport {
                        kind: BugKind::UninitVarAccess,
                        file: module.file(func.file()).name.clone(),
                        function: func.name().to_owned(),
                        origin_line: declared[v],
                        site_line: func.block(b).term_loc.line,
                        category: func.category(),
                        alias_paths: Vec::new(),
                        message: format!("`{}` may be returned uninitialized", module.var(*v).name),
                    });
                }
            }
        }
    }

    fn check_ml(&self, module: &Module, func: &Function, reports: &mut Vec<BugReport>) {
        let keys = expr_keys(module, func);
        // malloc'd expressions, and every expression freed/returned/stored.
        let mut mallocs: Vec<(String, u32)> = Vec::new();
        let mut released: HashSet<String> = HashSet::new();
        for block in func.blocks() {
            for inst in &block.insts {
                match &inst.kind {
                    InstKind::Malloc { dst } => {
                        // The malloc result is usually moved into a named
                        // local right after; resolve through later moves by
                        // scanning for the final key.
                        mallocs.push((keys.get(dst).cloned().unwrap_or_default(), inst.loc.line));
                    }
                    InstKind::Free { ptr } => {
                        released.insert(keys.get(ptr).cloned().unwrap_or_default());
                    }
                    InstKind::Store {
                        val: Operand::Var(v),
                        ..
                    } => {
                        released.insert(keys.get(v).cloned().unwrap_or_default());
                    }
                    InstKind::Call { args, .. } => {
                        for a in args {
                            if let Operand::Var(v) = a {
                                if module.var(*v).ty.is_pointer() {
                                    released.insert(keys.get(v).cloned().unwrap_or_default());
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            if let Terminator::Ret(Some(Operand::Var(v))) = &block.term {
                released.insert(keys.get(v).cloned().unwrap_or_default());
            }
        }
        // A malloc'd pointer also "releases" every variable it was moved
        // into; expr_keys already collapses moves onto one key.
        for (key, line) in mallocs {
            if key.is_empty() || released.contains(&key) {
                continue;
            }
            reports.push(BugReport {
                kind: BugKind::MemoryLeak,
                file: module.file(func.file()).name.clone(),
                function: func.name().to_owned(),
                origin_line: line,
                site_line: line,
                category: func.category(),
                alias_paths: Vec::new(),
                message: format!("allocation `{key}` is never freed in `{}`", func.name()),
            });
        }
    }
}

impl Analyzer for IntraPatternAnalyzer {
    fn name(&self) -> &'static str {
        "IntraPattern"
    }

    fn run(&self, module: &Module) -> Vec<BugReport> {
        let mut reports = Vec::new();
        for func in module.functions() {
            self.check_npd(module, func, &mut reports);
            self.check_uva(module, func, &mut reports);
            self.check_ml(module, func, &mut reports);
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<BugReport> {
        let m = pata_cc::compile_one("i.c", src).unwrap();
        IntraPatternAnalyzer.run(&m)
    }

    fn kinds(reports: &[BugReport]) -> Vec<BugKind> {
        reports.iter().map(|r| r.kind).collect()
    }

    #[test]
    fn npd_field_check_then_deref_same_function() {
        let reports = run(r#"
            struct dev { int *res; };
            int f(struct dev *d) {
                if (d->res == NULL) { }
                return *d->res;
            }
            "#);
        assert!(
            kinds(&reports).contains(&BugKind::NullPointerDeref),
            "{reports:?}"
        );
    }

    #[test]
    fn npd_misses_cross_function_bug() {
        let reports = run(r#"
            struct cfg_t { int frnd; };
            struct model_t { struct cfg_t *user_data; };
            void send_status(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                int x = cfg->frnd;
            }
            void friend_set(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                if (!cfg) {
                    send_status(model);
                }
            }
            "#);
        assert!(
            !kinds(&reports).contains(&BugKind::NullPointerDeref),
            "intraprocedural tools miss the Fig. 3 bug: {reports:?}"
        );
    }

    #[test]
    fn uva_simple_found() {
        let reports = run("int f(void) { int x; return x; }");
        assert!(kinds(&reports).contains(&BugKind::UninitVarAccess));
    }

    #[test]
    fn uva_out_param_is_false_positive() {
        // The init happens through &v in the callee — invisible without
        // alias analysis, so this tool family reports a false positive.
        let reports = run(r#"
            void fill(int *out) { *out = 5; }
            int f(void) {
                int v;
                fill(&v);
                return v;
            }
            "#);
        assert!(
            kinds(&reports).contains(&BugKind::UninitVarAccess),
            "{reports:?}"
        );
    }

    #[test]
    fn ml_never_freed_found() {
        let reports = run(r#"
            void f(void) {
                int *p = malloc(8);
                *p = 1;
            }
            "#);
        assert!(
            kinds(&reports).contains(&BugKind::MemoryLeak),
            "{reports:?}"
        );
    }

    #[test]
    fn ml_error_path_leak_missed() {
        // Free exists on the happy path — the path-insensitive scan sees
        // "freed somewhere" and misses the error-path leak PATA finds.
        let reports = run(r#"
            int f(int n) {
                int *p = malloc(8);
                if (n < 0) { return -1; }
                free(p);
                return 0;
            }
            "#);
        assert!(
            !kinds(&reports).contains(&BugKind::MemoryLeak),
            "{reports:?}"
        );
    }

    #[test]
    fn ml_returned_not_reported() {
        let reports = run("int *f(void) { int *p = malloc(8); return p; }");
        assert!(
            !kinds(&reports).contains(&BugKind::MemoryLeak),
            "{reports:?}"
        );
    }
}
