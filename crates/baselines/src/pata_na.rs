//! PATA-NA — the alias-unaware variant of PATA used in the paper's
//! sensitivity study (Table 6, §5.4).
//!
//! PATA-NA "does not compute alias relationships in typestate analysis":
//! each variable carries its own typestate (synchronized only across direct
//! assignments) and its own SMT symbol (so the implicit field-equality
//! constraints of Fig. 9 are lost). The paper reports that PATA-NA finds a
//! strict subset of PATA's real bugs with a much higher false-positive rate
//! (69% vs 28%) despite running faster.

use crate::Analyzer;
use pata_core::{AnalysisConfig, AnalysisSession, BugReport, CheckerRegistry};
use pata_ir::Module;

/// The PATA-NA analyzer.
///
/// Checkers are instantiated through a [`CheckerRegistry`] — the same open
/// extension point `Pata` uses — so plugin checkers registered via
/// [`PataNaAnalyzer::with_registry`] run in the alias-unaware variant too.
#[derive(Debug, Default)]
pub struct PataNaAnalyzer {
    /// Optional configuration override (checkers, budgets).
    pub config: Option<AnalysisConfig>,
    registry: CheckerRegistry,
}

impl PataNaAnalyzer {
    /// Creates PATA-NA with a custom base configuration; the alias mode is
    /// forced off regardless.
    pub fn with_config(config: AnalysisConfig) -> Self {
        PataNaAnalyzer {
            config: Some(config),
            registry: CheckerRegistry::with_builtins(),
        }
    }

    /// Creates PATA-NA with a custom checker registry (and optionally a
    /// base configuration).
    pub fn with_registry(config: Option<AnalysisConfig>, registry: CheckerRegistry) -> Self {
        PataNaAnalyzer { config, registry }
    }
}

impl Analyzer for PataNaAnalyzer {
    fn name(&self) -> &'static str {
        "PATA-NA"
    }

    fn run(&self, module: &Module) -> Vec<BugReport> {
        let mut config = self.config.clone().unwrap_or_default();
        config.alias_mode = pata_core::AliasMode::None;
        let checkers = self.registry.instantiate_for(&config.checkers);
        let outcome = AnalysisSession::new(config).analyze_module_with(module.clone(), &checkers);
        outcome.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pata_core::BugKind;

    #[test]
    fn na_reports_fig9_false_positive_that_pata_drops() {
        // Paper Fig. 9: infeasible q-deref path. PATA's shared symbols
        // refute it; PATA-NA's per-variable symbols cannot.
        let src = r#"
            struct s { int f; };
            void func(struct s *p, int *q) {
                struct s *t;
                if (q == NULL) {
                    p->f = 0;
                }
                t = p;
                if (t->f != 0) {
                    int v = *q;
                }
            }
        "#;
        let module = pata_cc::compile_one("fig9.c", src).unwrap();

        let na = PataNaAnalyzer::default().run(&module);
        assert!(
            na.iter().any(|r| r.kind == BugKind::NullPointerDeref),
            "PATA-NA should report the Fig. 9 false positive: {na:?}"
        );

        let pata = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module.clone());
        assert!(
            !pata
                .reports
                .iter()
                .any(|r| r.kind == BugKind::NullPointerDeref),
            "PATA should drop it: {:?}",
            pata.reports
        );
    }

    #[test]
    fn na_false_leak_through_callee_free() {
        // free() through a callee parameter: PATA's alias graph sees the
        // parameter and the caller pointer as one alias set; PATA-NA keeps
        // separate per-variable states and reports a false leak.
        let src = r#"
            void release(int *buf) { free(buf); }
            void user(void) {
                int *p = malloc(32);
                release(p);
            }
        "#;
        let module = pata_cc::compile_one("leak.c", src).unwrap();

        let na = PataNaAnalyzer::default().run(&module);
        assert!(
            na.iter().any(|r| r.kind == BugKind::MemoryLeak),
            "PATA-NA reports a false leak: {na:?}"
        );

        let pata = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module.clone());
        assert!(
            !pata.reports.iter().any(|r| r.kind == BugKind::MemoryLeak),
            "PATA sees the free through the alias set: {:?}",
            pata.reports
        );
    }
}
