//! # pata-baselines — comparison analyzers for the PATA evaluation
//!
//! The paper compares PATA against seven static tools (Table 8) and against
//! an alias-unaware variant of itself (Table 6). This crate reproduces the
//! *mechanisms* of those tool families so the comparison's shape can be
//! regenerated:
//!
//! | Module | Stands in for | Mechanism |
//! |---|---|---|
//! | [`pata_na`] | PATA-NA (Table 6) | PATA with alias analysis disabled |
//! | [`points_to`] | SVF / Saber's substrate | Andersen-style inclusion-based points-to analysis |
//! | [`svf_null`] | SVF-Null (Table 8) | points-to-aliasing + flow-based NPD detection |
//! | [`intra`] | Cppcheck / Smatch / Coccinelle | intraprocedural, alias-blind pattern checking |
//! | [`value_flow`] | Saber (Table 8) | source-sink leak detection on a def-use value-flow graph |
//!
//! All analyzers implement [`Analyzer`], producing the same
//! [`pata_core::BugReport`]s that PATA produces, so the corpus scorer can
//! grade every tool identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod intra;
pub mod pata_na;
pub mod points_to;
pub mod svf_null;
pub mod value_flow;

use pata_core::BugReport;
use pata_ir::Module;

/// A uniform interface over every analyzer in the comparison.
pub trait Analyzer {
    /// Tool name as it appears in the comparison tables.
    fn name(&self) -> &'static str;

    /// Runs the analyzer over a module, producing bug reports.
    fn run(&self, module: &Module) -> Vec<BugReport>;
}

/// Instantiates the full comparison roster (Table 8's baseline side).
pub fn all_baselines() -> Vec<Box<dyn Analyzer>> {
    vec![
        Box::new(intra::IntraPatternAnalyzer::default()),
        Box::new(svf_null::SvfNullAnalyzer::default()),
        Box::new(value_flow::ValueFlowLeakAnalyzer::default()),
        Box::new(pata_na::PataNaAnalyzer::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_distinct_names() {
        let names: Vec<&str> = all_baselines().iter().map(|a| a.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
