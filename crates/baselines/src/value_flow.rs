//! Saber-like value-flow leak detection (paper §6/§8.1).
//!
//! Saber builds a sparse value-flow graph over def-use chains (with
//! points-to analysis resolving indirect flows) and detects memory leaks as
//! source-sink reachability problems: a `malloc` source must reach a `free`
//! sink or escape. The analysis is **path-insensitive**: if *any* path
//! frees the object, the source is considered safe — which is exactly why
//! this family misses the error-path leaks PATA reports (Fig. 12c), while
//! points-to blind spots (D1) can also produce false leaks.

use crate::points_to::PointsTo;
use crate::Analyzer;
use pata_core::{BugKind, BugReport};
use pata_ir::{Callee, InstKind, Module, Operand, Terminator, VarId};
use std::collections::{HashMap, HashSet, VecDeque};

/// The Saber-like analyzer (memory leaks only, as in Table 8).
#[derive(Debug, Default)]
pub struct ValueFlowLeakAnalyzer;

impl Analyzer for ValueFlowLeakAnalyzer {
    fn name(&self) -> &'static str {
        "ValueFlowLeak"
    }

    fn run(&self, module: &Module) -> Vec<BugReport> {
        let pt = PointsTo::analyze(module);

        // Def-use value-flow edges between variables.
        let mut edges: HashMap<VarId, Vec<VarId>> = HashMap::new();
        let mut add = |from: VarId, to: VarId| edges.entry(from).or_default().push(to);
        // (source var, function, line) per malloc site.
        let mut sources = Vec::new();
        // Vars flowing into free / escaping (stored, returned by an
        // interface function, passed to an opaque callee).
        let mut freed: HashSet<VarId> = HashSet::new();
        let mut escaped: HashSet<VarId> = HashSet::new();
        // Store/Load matching through the points-to solution.
        let mut stores: Vec<(VarId, VarId)> = Vec::new(); // (addr, val)
        let mut loads: Vec<(VarId, VarId)> = Vec::new(); // (addr, dst)

        for func in module.functions() {
            for block in func.blocks() {
                for inst in &block.insts {
                    match &inst.kind {
                        InstKind::Malloc { dst } => {
                            sources.push((*dst, func.id(), inst.loc.line));
                        }
                        InstKind::Move { dst, src } => add(*src, *dst),
                        InstKind::Free { ptr } => {
                            freed.insert(*ptr);
                        }
                        InstKind::Store {
                            addr,
                            val: Operand::Var(v),
                        } => {
                            if module.var(*v).ty.is_pointer() {
                                escaped.insert(*v);
                            }
                            stores.push((*addr, *v));
                        }
                        InstKind::Load { dst, addr } => loads.push((*addr, *dst)),
                        InstKind::Call { dst, callee, args } => match callee {
                            Callee::Direct(f) => {
                                let params = module.function(*f).params().to_vec();
                                for (i, p) in params.iter().enumerate() {
                                    if let Some(Operand::Var(a)) = args.get(i) {
                                        add(*a, *p);
                                    }
                                }
                                if let Some(d) = dst {
                                    for b in module.function(*f).blocks() {
                                        if let Terminator::Ret(Some(Operand::Var(r))) = &b.term {
                                            add(*r, *d);
                                        }
                                    }
                                }
                            }
                            _ => {
                                // Opaque callee: pointer arguments escape.
                                for a in args {
                                    if let Operand::Var(v) = a {
                                        if module.var(*v).ty.is_pointer() {
                                            escaped.insert(*v);
                                        }
                                    }
                                }
                            }
                        },
                        _ => {}
                    }
                }
                // A pointer returned by an interface function escapes to
                // the (unknown) external caller.
                if func.is_interface() || module_is_root(module, func.id()) {
                    if let Terminator::Ret(Some(Operand::Var(r))) = &block.term {
                        if module.var(*r).ty.is_pointer() {
                            escaped.insert(*r);
                        }
                    }
                }
            }
        }

        // Indirect flows: a load from an address that may-alias a stored
        // address propagates the stored value (resolved with points-to; D1
        // parameters resolve to nothing).
        for &(saddr, sval) in &stores {
            for &(laddr, ldst) in &loads {
                if pt.may_alias(saddr, laddr) {
                    edges.entry(sval).or_default().push(ldst);
                }
            }
        }

        // Source-sink reachability per malloc site.
        let mut reports = Vec::new();
        for (src, func_id, line) in sources {
            let mut seen = HashSet::new();
            let mut queue = VecDeque::new();
            seen.insert(src);
            queue.push_back(src);
            let mut safe = false;
            while let Some(v) = queue.pop_front() {
                if freed.contains(&v) || escaped.contains(&v) {
                    safe = true;
                    break;
                }
                if let Some(next) = edges.get(&v) {
                    for &n in next {
                        if seen.insert(n) {
                            queue.push_back(n);
                        }
                    }
                }
            }
            if !safe {
                let func = module.function(func_id);
                reports.push(BugReport {
                    kind: BugKind::MemoryLeak,
                    file: module.file(func.file()).name.clone(),
                    function: func.name().to_owned(),
                    origin_line: line,
                    site_line: line,
                    category: func.category(),
                    alias_paths: Vec::new(),
                    message: format!("allocation at line {line} never reaches a free (value-flow)"),
                });
            }
        }
        reports
    }
}

/// Whether a function has no direct callers (recomputed locally so the
/// analyzer does not depend on the collector having run).
fn module_is_root(module: &Module, f: pata_ir::FuncId) -> bool {
    for func in module.functions() {
        for block in func.blocks() {
            for inst in &block.insts {
                if let InstKind::Call {
                    callee: Callee::Direct(t),
                    ..
                } = &inst.kind
                {
                    if *t == f {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<BugReport> {
        let m = pata_cc::compile_one("v.c", src).unwrap();
        ValueFlowLeakAnalyzer.run(&m)
    }

    #[test]
    fn never_freed_malloc_found() {
        let reports = run("void f(void) { int *p = malloc(8); *p = 1; }");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, BugKind::MemoryLeak);
    }

    #[test]
    fn freed_through_callee_not_reported() {
        let reports = run(r#"
            void release(int *b) { free(b); }
            void f(void) { int *p = malloc(8); release(p); }
            "#);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn error_path_leak_missed() {
        // Path-insensitive: the happy-path free marks the source safe, so
        // the error-path leak (which PATA reports) is missed.
        let reports = run(r#"
            int f(int n) {
                int *p = malloc(8);
                if (n < 0) { return -1; }
                free(p);
                return 0;
            }
            "#);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn returned_pointer_escapes() {
        let reports = run("int *f(void) { int *p = malloc(8); return p; }");
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn stored_pointer_escapes() {
        let reports = run(r#"
            struct dev { int *buf; };
            void f(struct dev *d) { int *p = malloc(8); d->buf = p; }
            "#);
        assert!(reports.is_empty(), "{reports:?}");
    }
}
