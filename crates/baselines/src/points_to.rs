//! Andersen-style inclusion-based points-to analysis.
//!
//! This is the substrate the SVF/Saber tool family builds on (paper §8.1):
//! flow- and path-insensitive subset constraints solved to a fixpoint, with
//! a per-allocation-site heap model. It exhibits exactly the weakness the
//! paper identifies as difficulty **D1**: pointer parameters of module
//! interface functions are never assigned an object, so their points-to
//! sets stay *empty* and aliases flowing through them are missed.
//!
//! Constraint generation (field-insensitive, as in the classic algorithm):
//!
//! * `p = &x`      → `loc(x) ∈ pts(p)`
//! * `p = malloc`  → `heap(site) ∈ pts(p)`
//! * `p = q`       → `pts(p) ⊇ pts(q)`
//! * `p = *q`      → `∀ o ∈ pts(q): pts(p) ⊇ contents(o)`
//! * `*q = p`      → `∀ o ∈ pts(q): contents(o) ⊇ pts(p)`
//! * direct calls  → parameter/return copies (`⊇`)

use pata_ir::{Callee, InstKind, Module, Operand, Terminator, VarId};
use std::collections::{BTreeSet, HashMap};

/// An abstract object: a stack slot or a heap allocation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbsObj {
    /// The storage of an address-taken variable.
    Stack(VarId),
    /// A heap allocation site (function index, site counter).
    Heap(u32, u32),
}

/// The points-to solution.
#[derive(Debug, Default)]
pub struct PointsTo {
    pts: HashMap<VarId, BTreeSet<AbsObj>>,
    contents: HashMap<AbsObj, BTreeSet<AbsObj>>,
}

impl PointsTo {
    /// The points-to set of `v` (empty if never constrained — the D1 case).
    pub fn pts(&self, v: VarId) -> &BTreeSet<AbsObj> {
        static EMPTY: std::sync::OnceLock<BTreeSet<AbsObj>> = std::sync::OnceLock::new();
        self.pts
            .get(&v)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Whether two variables may alias: their points-to sets intersect.
    /// Variables with empty sets alias nothing — the paper's D1 blind spot.
    pub fn may_alias(&self, a: VarId, b: VarId) -> bool {
        if a == b {
            return true;
        }
        let pa = self.pts(a);
        if pa.is_empty() {
            return false;
        }
        self.pts(b).iter().any(|o| pa.contains(o))
    }

    /// Runs Andersen's algorithm on `module` to a fixpoint.
    pub fn analyze(module: &Module) -> Self {
        #[derive(Debug)]
        enum C {
            Addr(VarId, AbsObj),
            Copy(VarId, VarId),  // pts(dst) ⊇ pts(src)
            Load(VarId, VarId),  // p = *q
            Store(VarId, VarId), // *q = p  (q, p)
        }
        let mut cons = Vec::new();
        let mut heap_counter = 0u32;
        for func in module.functions() {
            let fidx = func.id().index() as u32;
            for block in func.blocks() {
                for inst in &block.insts {
                    match &inst.kind {
                        InstKind::Move { dst, src } => cons.push(C::Copy(*dst, *src)),
                        InstKind::AddrOf { dst, src } => {
                            cons.push(C::Addr(*dst, AbsObj::Stack(*src)));
                        }
                        InstKind::Alloca { dst, storage: true } => {
                            cons.push(C::Addr(*dst, AbsObj::Stack(*dst)));
                        }
                        InstKind::Malloc { dst } => {
                            cons.push(C::Addr(*dst, AbsObj::Heap(fidx, heap_counter)));
                            heap_counter += 1;
                        }
                        InstKind::Load { dst, addr } => cons.push(C::Load(*dst, *addr)),
                        InstKind::Store { addr, val } => {
                            if let Operand::Var(v) = val {
                                cons.push(C::Store(*addr, *v));
                            }
                        }
                        // Field-insensitive: &q->f and &q[i] are treated as
                        // copies of the base pointer's target.
                        InstKind::Gep { dst, base, .. } | InstKind::Index { dst, base, .. } => {
                            cons.push(C::Copy(*dst, *base));
                        }
                        InstKind::Call {
                            dst,
                            callee: Callee::Direct(f),
                            args,
                        } => {
                            let params = module.function(*f).params().to_vec();
                            for (i, p) in params.iter().enumerate() {
                                if let Some(Operand::Var(a)) = args.get(i) {
                                    cons.push(C::Copy(*p, *a));
                                }
                            }
                            if let Some(d) = dst {
                                // Return copies.
                                for block in module.function(*f).blocks() {
                                    if let Terminator::Ret(Some(Operand::Var(r))) = &block.term {
                                        cons.push(C::Copy(*d, *r));
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        let mut solution = PointsTo::default();
        // Naive fixpoint iteration — fine at corpus scale, and faithful to
        // the cubic worst case the paper cites for whole-OS unscalability.
        loop {
            let mut changed = false;
            for c in &cons {
                match c {
                    C::Addr(p, o) => {
                        changed |= solution.pts.entry(*p).or_default().insert(*o);
                    }
                    C::Copy(dst, src) => {
                        let add: Vec<AbsObj> = solution
                            .pts
                            .get(src)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default();
                        let set = solution.pts.entry(*dst).or_default();
                        for o in add {
                            changed |= set.insert(o);
                        }
                    }
                    C::Load(p, q) => {
                        let objs: Vec<AbsObj> = solution
                            .pts
                            .get(q)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default();
                        let mut add = Vec::new();
                        for o in objs {
                            if let Some(cs) = solution.contents.get(&o) {
                                add.extend(cs.iter().copied());
                            }
                        }
                        let set = solution.pts.entry(*p).or_default();
                        for o in add {
                            changed |= set.insert(o);
                        }
                    }
                    C::Store(q, p) => {
                        let objs: Vec<AbsObj> = solution
                            .pts
                            .get(q)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default();
                        let vals: Vec<AbsObj> = solution
                            .pts
                            .get(p)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default();
                        for o in objs {
                            let set = solution.contents.entry(o).or_default();
                            for v in &vals {
                                changed |= set.insert(*v);
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        pata_cc::compile_one("pt.c", src).unwrap()
    }

    fn var(m: &Module, func: &str, name: &str) -> VarId {
        let f = m.function(m.function_by_name(func).unwrap());
        let fid = f.id();
        (0..m.var_count())
            .map(VarId::from_index)
            .find(|&v| {
                let info = m.var(v);
                info.func == Some(fid) && info.name == name
            })
            .unwrap_or_else(|| panic!("no var {name} in {func}"))
    }

    #[test]
    fn addr_of_gives_alias() {
        let m = compile(
            r#"
            void f(void) {
                int x = 0;
                int *p = &x;
                int *q = &x;
                *p = 1;
            }
            "#,
        );
        let pt = PointsTo::analyze(&m);
        let p = var(&m, "f", "p");
        let q = var(&m, "f", "q");
        assert!(pt.may_alias(p, q));
    }

    #[test]
    fn distinct_heap_sites_do_not_alias() {
        let m = compile(
            r#"
            void f(void) {
                int *a = malloc(8);
                int *b = malloc(8);
                free(a);
                free(b);
            }
            "#,
        );
        let pt = PointsTo::analyze(&m);
        let a = var(&m, "f", "a");
        let b = var(&m, "f", "b");
        assert!(!pt.may_alias(a, b));
        assert!(pt.may_alias(a, a));
    }

    #[test]
    fn interface_param_has_empty_pts_d1() {
        // The paper's D1: `probe` has no caller, so `d` points at nothing
        // and the load through it yields an empty set too.
        let m = compile(
            r#"
            struct dev { int *res; };
            static int my_probe(struct dev *d) {
                int *r = d->res;
                return *r;
            }
            static struct drv drv_reg = { .probe = my_probe };
            "#,
        );
        let pt = PointsTo::analyze(&m);
        let d = var(&m, "my_probe", "d");
        let r = var(&m, "my_probe", "r");
        assert!(
            pt.pts(d).is_empty(),
            "interface parameter must have empty pts"
        );
        assert!(pt.pts(r).is_empty());
        assert!(!pt.may_alias(d, r));
    }

    #[test]
    fn flow_through_direct_call() {
        let m = compile(
            r#"
            int *identity(int *p) { return p; }
            void f(void) {
                int x = 0;
                int *a = &x;
                int *b = identity(a);
                *b = 1;
            }
            "#,
        );
        let pt = PointsTo::analyze(&m);
        let a = var(&m, "f", "a");
        let b = var(&m, "f", "b");
        assert!(pt.may_alias(a, b));
    }

    #[test]
    fn store_load_through_heap() {
        let m = compile(
            r#"
            void f(void) {
                int x = 0;
                int **cell = malloc(8);
                *cell = &x;
                int *out = *cell;
                *out = 1;
            }
            "#,
        );
        let pt = PointsTo::analyze(&m);
        let out = var(&m, "f", "out");
        assert!(pt.pts(out).contains(&AbsObj::Stack(var(&m, "f", "x"))));
    }
}
