//! # pata-corpus — synthetic OS corpus with ground-truth bugs
//!
//! The paper evaluates PATA on Linux 5.6, Zephyr 2.1.0, RIOT 2020.04 and
//! TencentOS-tiny (Table 4). Reproducing that requires the OS sources, a
//! full C17 front-end and dozens of CPU-hours; this crate substitutes a
//! *generator* that emits mini-C modules reproducing the structural
//! properties the paper's techniques depend on (see DESIGN.md):
//!
//! * module interface functions registered through function-pointer struct
//!   fields — no explicit callers, empty points-to sets (difficulty D1);
//! * struct-field access chains and cross-function alias flows (Fig. 3);
//! * error-handling `goto` paths and early returns (Fig. 12c);
//! * infeasible paths guarded by aliased fields (Fig. 9).
//!
//! Bugs of all six checked types are injected from templates together with
//! a ground-truth [`manifest::Manifest`], so found/real/false-positive
//! counts are *measured*, not estimated — the analogue of the paper's
//! manual confirmation of 574 real bugs. *False-positive traps* are also
//! injected: code that is correct (under invariants outside the analysis'
//! view: external-function contracts, loop bounds, concurrency ordering —
//! the paper's §5.2 FP taxonomy) but that one or more analyzers report.
//!
//! # Example
//!
//! ```
//! use pata_corpus::{OsProfile, Corpus};
//!
//! let corpus = Corpus::generate(&OsProfile::zephyr().with_scale(0.2));
//! let module = corpus.compile().expect("corpus compiles");
//! assert!(module.functions().len() > 10);
//! assert!(!corpus.manifest.bugs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod manifest;
pub mod profile;
pub mod rng;
pub mod templates;

pub use generator::Corpus;
pub use manifest::{GroundTruth, Manifest, Score};
pub use profile::OsProfile;
pub use rng::Prng;
