//! A small seeded PRNG (splitmix64) for deterministic corpus generation.
//!
//! The generator must be reproducible per `profile.seed` across platforms
//! and toolchain versions without external crates, so the corpus carries
//! its own generator: splitmix64 (Steele et al., "Fast splittable
//! pseudorandom number generators", OOPSLA'14) — a 64-bit state, full-period
//! mixer that passes BigCrush and needs no warm-up.

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[lo, hi)`. Panics when the range is empty.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Multiply-shift bounded rejection-free mapping (Lemire). The bias
        // for spans ≪ 2^64 is far below anything corpus statistics can see.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128 as usize
    }

    /// Uniform element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0, items.len())]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values from the splitmix64 reference implementation
        // with seed 1234567.
        let mut r = Prng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3, 17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Prng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Prng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "20 elements should move");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Prng::seed_from_u64(11);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
