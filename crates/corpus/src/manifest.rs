//! Ground-truth manifests and report scoring.
//!
//! Every injected bug (and every injected false-positive trap) is recorded
//! with its file, function, kind and line. Scoring a tool's reports against
//! the manifest yields the found/real/false-positive counts of the paper's
//! Tables 5-8 exactly, replacing the paper's manual confirmation step with
//! exact ground truth.

use pata_core::{BugKind, BugReport};
use pata_ir::Category;
use std::collections::HashSet;

/// How many lines a report may deviate from the manifest entry and still
/// count as the same bug (reports may point at the origin or the site).
const LINE_TOLERANCE: u32 = 4;

/// One ground-truth entry.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Stable id (template name + counter).
    pub id: String,
    /// File the bug lives in.
    pub file: String,
    /// Function containing the buggy site.
    pub function: String,
    /// Bug type (serialized as the paper's abbreviation).
    pub kind: BugKind,
    /// Line of the buggy operation.
    pub line: u32,
    /// OS part for the Fig. 11 distribution.
    pub category: Category,
    /// Which template injected it (for per-pattern diagnostics).
    pub template: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl GroundTruth {
    /// One JSON object line (kind and category use the paper's spellings).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\": \"{}\", \"file\": \"{}\", \"function\": \"{}\", \"kind\": \"{}\", \
             \"line\": {}, \"category\": \"{}\", \"template\": \"{}\"}}",
            json_escape(&self.id),
            json_escape(&self.file),
            json_escape(&self.function),
            self.kind.abbrev(),
            self.line,
            self.category.as_str(),
            json_escape(&self.template),
        )
    }
}

/// The full ground truth for one generated corpus.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Real injected bugs.
    pub bugs: Vec<GroundTruth>,
    /// Injected false-positive traps (correct code some analyzers report).
    pub traps: Vec<GroundTruth>,
}

impl Manifest {
    /// Renders the whole manifest as a JSON document.
    pub fn to_json(&self) -> String {
        let render = |entries: &[GroundTruth]| -> String {
            entries
                .iter()
                .map(|e| format!("  {}", e.to_json()))
                .collect::<Vec<_>>()
                .join(",\n")
        };
        format!(
            "{{\"bugs\": [\n{}\n], \"traps\": [\n{}\n]}}\n",
            render(&self.bugs),
            render(&self.traps)
        )
    }

    /// Scores a tool's reports against this ground truth.
    pub fn score(&self, reports: &[BugReport]) -> Score {
        let mut matched: HashSet<usize> = HashSet::new();
        let mut score = Score::default();
        for report in reports {
            score.add_found(report.kind);
            let hit = self.bugs.iter().enumerate().find(|(i, b)| {
                !matched.contains(i)
                    && b.kind == report.kind
                    && b.file == report.file
                    && (line_close(b.line, report.site_line)
                        || line_close(b.line, report.origin_line))
            });
            match hit {
                Some((i, b)) => {
                    matched.insert(i);
                    score.add_real(report.kind, b.category);
                }
                None => score.false_positives += 1,
            }
        }
        score.missed = self.bugs.len() - matched.len();
        score
    }
}

fn line_close(a: u32, b: u32) -> bool {
    a.abs_diff(b) <= LINE_TOLERANCE
}

/// Per-kind found/real counters in the paper's table layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Score {
    /// Reports produced, per kind (Table 5 "Found bugs").
    pub found: Vec<(BugKind, usize)>,
    /// Reports matching ground truth, per kind (Table 5 "Real bugs").
    pub real: Vec<(BugKind, usize)>,
    /// Real bugs per category (Fig. 11 distribution).
    pub real_by_category: Vec<(Category, usize)>,
    /// Reports matching nothing in the manifest.
    pub false_positives: usize,
    /// Ground-truth bugs no report matched.
    pub missed: usize,
}

impl Score {
    fn bump(list: &mut Vec<(BugKind, usize)>, kind: BugKind) {
        match list.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => list.push((kind, 1)),
        }
    }

    fn add_found(&mut self, kind: BugKind) {
        Self::bump(&mut self.found, kind);
    }

    fn add_real(&mut self, kind: BugKind, category: Category) {
        Self::bump(&mut self.real, kind);
        match self
            .real_by_category
            .iter_mut()
            .find(|(c, _)| *c == category)
        {
            Some((_, n)) => *n += 1,
            None => self.real_by_category.push((category, 1)),
        }
    }

    /// Total reports.
    pub fn total_found(&self) -> usize {
        self.found.iter().map(|(_, n)| n).sum()
    }

    /// Total true positives.
    pub fn total_real(&self) -> usize {
        self.real.iter().map(|(_, n)| n).sum()
    }

    /// The paper's headline metric: `1 - real/found` (28% for PATA).
    pub fn false_positive_rate(&self) -> f64 {
        let found = self.total_found();
        if found == 0 {
            return 0.0;
        }
        1.0 - self.total_real() as f64 / found as f64
    }

    /// Found count for one kind.
    pub fn found_of(&self, kind: BugKind) -> usize {
        self.found
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Real count for one kind.
    pub fn real_of(&self, kind: BugKind) -> usize {
        self.real
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(kind: BugKind, file: &str, line: u32) -> GroundTruth {
        GroundTruth {
            id: "b1".into(),
            file: file.into(),
            function: "f".into(),
            kind,
            line,
            category: Category::Drivers,
            template: "t".into(),
        }
    }

    fn report(kind: BugKind, file: &str, line: u32) -> BugReport {
        BugReport {
            kind,
            file: file.into(),
            function: "f".into(),
            origin_line: line,
            site_line: line,
            category: Category::Drivers,
            alias_paths: Vec::new(),
            message: String::new(),
        }
    }

    #[test]
    fn exact_match_is_real() {
        let m = Manifest {
            bugs: vec![truth(BugKind::NullPointerDeref, "a.c", 10)],
            traps: vec![],
        };
        let s = m.score(&[report(BugKind::NullPointerDeref, "a.c", 11)]);
        assert_eq!(s.total_real(), 1);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.missed, 0);
    }

    #[test]
    fn wrong_kind_or_file_is_fp() {
        let m = Manifest {
            bugs: vec![truth(BugKind::NullPointerDeref, "a.c", 10)],
            traps: vec![],
        };
        let s = m.score(&[
            report(BugKind::MemoryLeak, "a.c", 10),
            report(BugKind::NullPointerDeref, "b.c", 10),
        ]);
        assert_eq!(s.total_real(), 0);
        assert_eq!(s.false_positives, 2);
        assert_eq!(s.missed, 1);
    }

    #[test]
    fn duplicate_reports_count_one_real() {
        let m = Manifest {
            bugs: vec![truth(BugKind::NullPointerDeref, "a.c", 10)],
            traps: vec![],
        };
        let s = m.score(&[
            report(BugKind::NullPointerDeref, "a.c", 10),
            report(BugKind::NullPointerDeref, "a.c", 12),
        ]);
        assert_eq!(s.total_real(), 1);
        assert_eq!(s.false_positives, 1);
    }

    #[test]
    fn fp_rate() {
        let m = Manifest {
            bugs: vec![truth(BugKind::NullPointerDeref, "a.c", 10)],
            traps: vec![],
        };
        let s = m.score(&[
            report(BugKind::NullPointerDeref, "a.c", 10),
            report(BugKind::NullPointerDeref, "a.c", 99),
        ]);
        assert!((s.false_positive_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn manifest_renders_json() {
        let m = Manifest {
            bugs: vec![truth(BugKind::MemoryLeak, "x.c", 7)],
            traps: vec![truth(BugKind::UninitVarAccess, "y.c", 3)],
        };
        let json = m.to_json();
        assert!(json.contains("\"kind\": \"ML\""), "{json}");
        assert!(json.contains("\"kind\": \"UVA\""), "{json}");
        assert!(json.contains("\"file\": \"x.c\""), "{json}");
        assert!(json.contains("\"line\": 7"), "{json}");
    }
}
