//! Code templates: injected real bugs, false-positive traps, and clean
//! distractor code.
//!
//! Each template models a bug pattern from the paper's case studies
//! (Figs. 1, 3, 9, 12) or its false-positive taxonomy (§5.2), instantiated
//! with per-file unique names. Templates record *marks* — the ground-truth
//! line of the bug (or trap) relative to the snippet start.

use pata_core::BugKind;

/// Per-file naming context.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Unique suffix appended to all identifiers.
    pub suffix: String,
    /// The file's device struct name.
    pub dev: String,
    /// The file's config struct name.
    pub cfg: String,
}

impl Ctx {
    /// Creates the context for file number `idx`.
    pub fn new(idx: usize) -> Self {
        let suffix = format!("f{idx}");
        Ctx {
            suffix: suffix.clone(),
            dev: format!("dev_{suffix}"),
            cfg: format!("cfg_{suffix}"),
        }
    }

    fn n(&self, base: &str) -> String {
        format!("{base}_{}", self.suffix)
    }
}

/// A ground-truth mark within a snippet.
#[derive(Debug, Clone)]
pub struct Mark {
    /// Bug type.
    pub kind: BugKind,
    /// Line index within the snippet (0-based).
    pub rel_line: usize,
    /// Containing function.
    pub function: String,
    /// `true` for false-positive traps (correct code some tools report).
    pub trap: bool,
    /// Template name.
    pub template: &'static str,
}

/// A generated code fragment.
#[derive(Debug, Clone, Default)]
pub struct Snippet {
    /// Source lines (no trailing newlines).
    pub lines: Vec<String>,
    /// Ground-truth marks.
    pub marks: Vec<Mark>,
    /// Functions to register through a function-pointer struct (making
    /// them module interface functions — the paper's D1 pattern).
    pub interfaces: Vec<String>,
}

impl Snippet {
    fn push(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    fn mark(&mut self, kind: BugKind, function: &str, trap: bool, template: &'static str) {
        // Marks the line that will be pushed next.
        self.marks.push(Mark {
            kind,
            rel_line: self.lines.len(),
            function: function.to_owned(),
            trap,
            template,
        });
    }
}

/// The struct definitions every generated file starts with.
pub fn struct_defs(ctx: &Ctx) -> Vec<String> {
    vec![
        format!(
            "struct {} {{ int frnd; int count; int *data; struct {} *next; int flags; int mode; }};",
            ctx.cfg, ctx.cfg
        ),
        format!(
            "struct {} {{ struct {} *user_data; int *res; int nlanes; int state; int lockw; \
struct {} *alt; int irq; int dma; }};",
            ctx.dev, ctx.cfg, ctx.cfg
        ),
    ]
}

/// A template: instantiates a snippet for a context.
pub type Template = fn(&Ctx) -> Snippet;

// ====================================================================
// Real-bug templates
// ====================================================================

/// Fig. 1: field checked against NULL, then dereferenced anyway.
fn npd_intra_field(ctx: &Ctx) -> Snippet {
    let f = ctx.n("probe");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push("    if (d->state == 9) {");
    s.push("        log_warn(\"late probe\");");
    s.push("    }");
    s.push("    if (d->res == NULL) {");
    s.push("        log_warn(\"missing resource\");");
    s.push("    }");
    s.mark(BugKind::NullPointerDeref, &f, false, "npd_intra_field");
    s.push("    return *d->res;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Single-variable check + dereference (the "easy" bug every tool finds).
fn npd_single_var(ctx: &Ctx) -> Snippet {
    let f = ctx.n("read");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push("    int *p = d->res;");
    s.push("    if (p == NULL) {");
    s.push("        report_error(1);");
    s.push("    }");
    s.mark(BugKind::NullPointerDeref, &f, false, "npd_single_var");
    s.push("    return *p;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Fig. 3 (Zephyr friend_set): NULL check in the caller, dereference
/// through an alias in the callee — only alias-aware interprocedural
/// analysis finds it.
fn npd_cross_fn(ctx: &Ctx) -> Snippet {
    let status = ctx.n("status");
    let set = ctx.n("set");
    let mut s = Snippet::default();
    s.push(format!("static void {status}(struct {} *d) {{", ctx.dev));
    s.push(format!("    struct {} *cfg = d->user_data;", ctx.cfg));
    s.mark(BugKind::NullPointerDeref, &status, false, "npd_cross_fn");
    s.push("    int v = cfg->frnd;");
    s.push("    use_value(v);");
    s.push("}");
    s.push(format!("static void {set}(struct {} *d) {{", ctx.dev));
    s.push(format!("    struct {} *cfg = d->user_data;", ctx.cfg));
    s.push("    if (!cfg) {");
    s.push("        goto send;");
    s.push("    }");
    s.push("    cfg->frnd = 1;");
    s.push("    return;");
    s.push("send:");
    s.push(format!("    {status}(d);"));
    s.push("}");
    s.interfaces.push(set);
    s
}

/// NULL stored through a field on one path, dereferenced later — the
/// store-const flavour (invisible to assignment-pattern matchers).
fn npd_null_store(ctx: &Ctx) -> Snippet {
    let f = ctx.n("reset");
    let mut s = Snippet::default();
    s.push(format!(
        "static void {f}(struct {} *d, int hard) {{",
        ctx.dev
    ));
    s.push("    if (hard) {");
    s.push("        d->res = NULL;");
    s.push("    }");
    s.push("    if (d->state > 2) {");
    s.mark(BugKind::NullPointerDeref, &f, false, "npd_null_store");
    s.push("        *d->res = 0;");
    s.push("    }");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Scalar local initialized on one branch only, used after the join.
fn uva_scalar_branch(ctx: &Ctx) -> Snippet {
    let f = ctx.n("calc");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push("    int ret;");
    s.push("    if (d->state > 0) {");
    s.push("        ret = d->count * 2;");
    s.push("    }");
    s.mark(BugKind::UninitVarAccess, &f, false, "uva_scalar_branch");
    s.push("    return ret;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Fig. 12d (TencentOS pthread_create): heap storage allocated, aliased,
/// and read field-wise without initialization.
fn uva_heap_field(ctx: &Ctx) -> Snippet {
    let f = ctx.n("spawn");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(int n) {{"));
    s.push("    int *stack = tos_mmheap_alloc(n);");
    s.push(format!(
        "    struct {} *ctl = (struct {} *)stack;",
        ctx.cfg, ctx.cfg
    ));
    s.mark(BugKind::UninitVarAccess, &f, false, "uva_heap_field");
    s.push("    int task = ctl->frnd;");
    s.push("    register_task(stack, task);");
    s.push("    return task;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Fig. 12c (RIOT make_message): allocation leaks on an error-handling
/// early return.
fn ml_error_path(ctx: &Ctx) -> Snippet {
    let f = ctx.n("make_msg");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(int size, int flags) {{"));
    s.push("    if (size > 4096) {");
    s.push("        size = 4096;");
    s.push("    }");
    s.push("    int *message = malloc(size);");
    s.push("    if (message == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    message[0] = size;");
    s.push("    if (flags < 0) {");
    s.mark(BugKind::MemoryLeak, &f, false, "ml_error_path");
    s.push("        return -2;");
    s.push("    }");
    s.push("    free(message);");
    s.push("    return 0;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Leak where the happy path frees through a callee; the error path drops
/// the object. Alias-unaware tracking double-reports, path-insensitive
/// tools miss it.
fn ml_callee_free(ctx: &Ctx) -> Snippet {
    let put = ctx.n("put_buf");
    let grab = ctx.n("grab");
    let mut s = Snippet::default();
    s.push(format!("static void {put}(int *b) {{"));
    s.push("    free(b);");
    s.push("}");
    s.push(format!("static int {grab}(int n) {{"));
    s.push("    int *p = malloc(n);");
    s.push("    if (p == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    if (n > 64) {");
    s.mark(BugKind::MemoryLeak, &grab, false, "ml_callee_free");
    s.push("        return -2;");
    s.push("    }");
    s.push(format!("    {put}(p);"));
    s.push("    return 0;");
    s.push("}");
    s.interfaces.push(grab);
    s
}

/// A `goto` jumps over the initialization — the uninitialized value is
/// read at the shared exit label (goto-heavy kernel error handling).
fn uva_goto_skip_init(ctx: &Ctx) -> Snippet {
    let f = ctx.n("parse");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push("    int len;");
    s.push("    if (d->state < 0) {");
    s.push("        goto out;");
    s.push("    }");
    s.push("    len = d->count;");
    s.push("out:");
    s.mark(BugKind::UninitVarAccess, &f, false, "uva_goto_skip_init");
    s.push("    return len;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Cascading error labels where the final label dereferences a pointer
/// that one incoming path proved NULL (the Fig. 12 error-path family).
fn npd_error_label(ctx: &Ctx) -> Snippet {
    let f = ctx.n("open");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push(format!("    struct {} *c = d->user_data;", ctx.cfg));
    s.push("    int *buf = kmalloc(16);");
    s.push("    if (buf == NULL) {");
    s.push("        return -12;");
    s.push("    }");
    s.push("    if (c == NULL) {");
    s.push("        goto err_free;");
    s.push("    }");
    s.push("    c->count = 1;");
    s.push("    free(buf);");
    s.push("    return 0;");
    s.push("err_free:");
    s.push("    free(buf);");
    s.mark(BugKind::NullPointerDeref, &f, false, "npd_error_label");
    s.push("    return c->frnd;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// The classic two-allocation bug: the second allocation's failure path
/// forgets to release the first (ubiquitous in real kernel probe code).
fn ml_second_alloc_fails(ctx: &Ctx) -> Snippet {
    let f = ctx.n("init2");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(int n) {{"));
    s.push("    int *a = malloc(n);");
    s.push("    if (a == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    int *b = malloc(n);");
    s.push("    if (b == NULL) {");
    s.mark(BugKind::MemoryLeak, &f, false, "ml_second_alloc_fails");
    s.push("        return -1;");
    s.push("    }");
    s.push("    a[0] = n;");
    s.push("    b[0] = n;");
    s.push("    free(a);");
    s.push("    free(b);");
    s.push("    return 0;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// A plain never-freed, never-escaping allocation — the leak class every
/// tool in the comparison can find (Saber's detectable case).
fn ml_never_freed(ctx: &Ctx) -> Snippet {
    let f = ctx.n("log_stat");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.mark(BugKind::MemoryLeak, &f, false, "ml_never_freed");
    s.push("    int *slot = malloc(16);");
    s.push("    if (slot == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    slot[0] = d->state;");
    s.push("    return slot[0];");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Double lock on a retry path; the lock object is reached through two
/// distinct GEP temporaries that only alias-aware tracking unifies.
fn dl_retry_path(ctx: &Ctx) -> Snippet {
    let f = ctx.n("worker");
    let mut s = Snippet::default();
    s.push(format!(
        "static int {f}(struct {} *d, int retry) {{",
        ctx.dev
    ));
    s.push("    spin_lock(&d->lockw);");
    s.push("    if (retry > 3) {");
    s.mark(BugKind::DoubleLock, &f, false, "dl_retry_path");
    s.push("        spin_lock(&d->lockw);");
    s.push("    }");
    s.push("    d->state = 1;");
    s.push("    spin_unlock(&d->lockw);");
    s.push("    return 0;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Array indexed with a value proven negative on the reported path.
fn aiu_negative(ctx: &Ctx) -> Snippet {
    let f = ctx.n("pick");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d, int idx) {{", ctx.dev));
    s.push("    int table[16];");
    s.push("    table[0] = d->count;");
    s.push("    if (idx < 0) {");
    s.mark(BugKind::ArrayIndexUnderflow, &f, false, "aiu_negative");
    s.push("        return table[idx];");
    s.push("    }");
    s.push("    return table[0];");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Division by a value the branch just proved zero.
fn dbz_checked_zero(ctx: &Ctx) -> Snippet {
    let f = ctx.n("rate");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d, int hz) {{", ctx.dev));
    s.push("    if (hz == 0) {");
    s.mark(BugKind::DivisionByZero, &f, false, "dbz_checked_zero");
    s.push("        return d->count / hz;");
    s.push("    }");
    s.push("    return d->count / hz;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Freed buffer read again on a late path (use-after-free; the framework's
/// seventh checker).
fn uaf_late_read(ctx: &Ctx) -> Snippet {
    let f = ctx.n("drain");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d, int n) {{", ctx.dev));
    s.push("    int *q = malloc(n);");
    s.push("    if (q == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    q[0] = d->state;");
    s.push("    free(q);");
    s.push("    if (d->state > 3) {");
    s.mark(BugKind::UseAfterFree, &f, false, "uaf_late_read");
    s.push("        return q[0];");
    s.push("    }");
    s.push("    return 0;");
    s.push("}");
    s.interfaces.push(f);
    s
}

// ====================================================================
// False-positive traps (§5.2 taxonomy)
// ====================================================================

/// External-contract NPD: `get_cfg_slot` never returns NULL in this
/// configuration, but no analyzer can know — everyone reports.
fn trap_npd_extern_contract(ctx: &Ctx) -> Snippet {
    let f = ctx.n("attach");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push(format!(
        "    struct {} *c = get_cfg_slot(d->state);",
        ctx.cfg
    ));
    s.push("    if (c == NULL) {");
    s.push("        log_warn(\"impossible by contract\");");
    s.push("    }");
    s.mark(
        BugKind::NullPointerDeref,
        &f,
        true,
        "trap_npd_extern_contract",
    );
    s.push("    return c->frnd;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Loop-guaranteed assignment (the caller contract guarantees `n >= 1`),
/// reported because loops are unrolled once (§5.2, loop false positives).
fn trap_npd_loop(ctx: &Ctx) -> Snippet {
    let f = ctx.n("scan");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d, int n) {{", ctx.dev));
    s.push(format!("    struct {} *hit = NULL;", ctx.cfg));
    s.push("    int i;");
    s.push("    for (i = 0; i < n; i++) {");
    s.push("        hit = d->user_data;");
    s.push("    }");
    s.mark(BugKind::NullPointerDeref, &f, true, "trap_npd_loop");
    s.push("    return hit->frnd;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Concurrency/contract UVA: `is_dma_ready` is always true when this
/// callback runs, so the memset always happens (§5.2, thread unawareness).
fn trap_uva_concurrent_init(ctx: &Ctx) -> Snippet {
    let f = ctx.n("readcfg");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(int n) {{"));
    s.push("    int *buf = kmalloc(n);");
    s.push("    if (buf == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    if (is_dma_ready()) {");
    s.push("        memset(buf, 0, n);");
    s.push("    }");
    s.mark(
        BugKind::UninitVarAccess,
        &f,
        true,
        "trap_uva_concurrent_init",
    );
    s.push("    int v = buf[0];");
    s.push("    free(buf);");
    s.push("    return v;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Fig. 9: the dereference path is infeasible because the guard field and
/// the stored field alias. PATA's shared-symbol validation drops it;
/// per-variable encodings report it (the Table 6 gap).
fn trap_npd_infeasible_alias(ctx: &Ctx) -> Snippet {
    let f = ctx.n("sync");
    let mut s = Snippet::default();
    s.push(format!("static void {f}(struct {} *d, int *q) {{", ctx.dev));
    s.push(format!("    struct {} *t;", ctx.dev));
    s.push("    if (q == NULL) {");
    s.push("        d->nlanes = 0;");
    s.push("    }");
    s.push("    t = d;");
    s.push("    if (t->nlanes != 0) {");
    s.mark(
        BugKind::NullPointerDeref,
        &f,
        true,
        "trap_npd_infeasible_alias",
    );
    s.push("        *q = 1;");
    s.push("    }");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Correct callee-free: alias-unaware leak tracking false-positives here.
fn trap_ml_callee_free(ctx: &Ctx) -> Snippet {
    let put = ctx.n("put2");
    let send = ctx.n("send");
    let mut s = Snippet::default();
    s.push(format!("static void {put}(int *b) {{"));
    s.push("    free(b);");
    s.push("}");
    s.push(format!(
        "static int {send}(struct {} *d, int n) {{",
        ctx.dev
    ));
    s.mark(BugKind::MemoryLeak, &send, true, "trap_ml_callee_free");
    s.push("    int *buf = malloc(n);");
    s.push("    if (buf == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    buf[0] = d->state;");
    s.push(format!("    {put}(buf);"));
    s.push("    return 0;");
    s.push("}");
    s.interfaces.push(send);
    s
}

/// Out-parameter initialization: alias-blind UVA checkers report.
fn trap_uva_out_param(ctx: &Ctx) -> Snippet {
    let fetch = ctx.n("fetch");
    let query = ctx.n("query");
    let mut s = Snippet::default();
    s.push(format!("static void {fetch}(int *out) {{"));
    s.push("    *out = 7;");
    s.push("}");
    s.push(format!("static int {query}(void) {{"));
    s.push("    int val;");
    s.push(format!("    {fetch}(&val);"));
    s.mark(BugKind::UninitVarAccess, &query, true, "trap_uva_out_param");
    s.push("    return val;");
    s.push("}");
    s.interfaces.push(query);
    s
}

/// Flow-insensitive NPD trap: `p` starts NULL but is reassigned and
/// guarded before the dereference.
fn trap_npd_flow_insensitive(ctx: &Ctx) -> Snippet {
    let f = ctx.n("route");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push("    int *p = NULL;");
    s.push("    if (d->state > 0) {");
    s.push("        p = d->res;");
    s.push("        if (p != NULL) {");
    s.mark(
        BugKind::NullPointerDeref,
        &f,
        true,
        "trap_npd_flow_insensitive",
    );
    s.push("            return *p;");
    s.push("        }");
    s.push("    }");
    s.push("    return 0;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// The paper's §5.2 array false positive: `buf[i + 1]` is written, then
/// read back as `buf[j]` with `j == i + 1` — semantically the same
/// element, but the two access paths differ, so the element looks
/// uninitialized to PATA's array-insensitive alias graph.
fn trap_uva_array(ctx: &Ctx) -> Snippet {
    let f = ctx.n("fold");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d, int i) {{", ctx.dev));
    s.push("    int *buf = kmalloc(32);");
    s.push("    if (buf == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    buf[i + 1] = d->count;");
    s.push("    int j = i + 1;");
    s.mark(BugKind::UninitVarAccess, &f, true, "trap_uva_array");
    s.push("    int v = buf[j];");
    s.push("    kfree(buf);");
    s.push("    return v;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// External-contract division trap: `read_step` never returns zero, but
/// the zero branch is feasible for the analysis (Table 7 FP source).
fn trap_dbz_contract(ctx: &Ctx) -> Snippet {
    let f = ctx.n("div_guard");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push("    int step = read_step();");
    s.push("    if (step == 0) {");
    s.push("        log_warn(\"impossible by contract\");");
    s.push("    }");
    s.mark(BugKind::DivisionByZero, &f, true, "trap_dbz_contract");
    s.push("    return d->count / step;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// External-contract index trap: `pos` is documented non-negative, so the
/// wrapped index cannot be negative — but the analysis cannot know.
fn trap_aiu_contract(ctx: &Ctx) -> Snippet {
    let f = ctx.n("wrap");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d, int pos) {{", ctx.dev));
    s.push("    int ring[8];");
    s.push("    ring[0] = d->count;");
    s.push("    int idx = pos % 8;");
    s.push("    if (idx < 0) {");
    s.push("        log_warn(\"negative wrap\");");
    s.push("    }");
    s.mark(BugKind::ArrayIndexUnderflow, &f, true, "trap_aiu_contract");
    s.push("    return ring[idx];");
    s.push("}");
    s.interfaces.push(f);
    s
}

// ====================================================================
// Clean distractor templates
// ====================================================================

fn clean_guarded_deref(ctx: &Ctx) -> Snippet {
    let f = ctx.n("info");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push("    if (d->res == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    return *d->res;");
    s.push("}");
    s.interfaces.push(f);
    s
}

fn clean_balanced_lock(ctx: &Ctx) -> Snippet {
    let f = ctx.n("tick");
    let mut s = Snippet::default();
    s.push(format!("static void {f}(struct {} *d) {{", ctx.dev));
    s.push("    spin_lock(&d->lockw);");
    s.push("    d->state = d->state + 1;");
    s.push("    spin_unlock(&d->lockw);");
    s.push("}");
    s.interfaces.push(f);
    s
}

fn clean_alloc_free(ctx: &Ctx) -> Snippet {
    let f = ctx.n("copy");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(int n) {{"));
    s.push("    int *tmp = kzalloc(n);");
    s.push("    if (tmp == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    int total = tmp[0] + n;");
    s.push("    free(tmp);");
    s.push("    return total;");
    s.push("}");
    s.interfaces.push(f);
    s
}

fn clean_helper_chain(ctx: &Ctx) -> Snippet {
    let clamp = ctx.n("clamp");
    let scale = ctx.n("scale");
    let mut s = Snippet::default();
    s.push(format!("static int {clamp}(int v, int lo, int hi) {{"));
    s.push("    if (v < lo) { return lo; }");
    s.push("    if (v > hi) { return hi; }");
    s.push("    return v;");
    s.push("}");
    s.push(format!(
        "static int {scale}(struct {} *d, int k) {{",
        ctx.dev
    ));
    s.push("    int raw = d->count * k;");
    s.push(format!("    return {clamp}(raw, 0, 4096);"));
    s.push("}");
    s.interfaces.push(scale);
    s
}

/// Feature-flag tuning: a run of independent symmetric diamonds (both arms
/// assign the same locals, control falls through) — the quirks-table /
/// config-flag shape that dominates real probe functions. Path count is
/// exponential in the diamond count while the analysis state reconverges at
/// every join, so this is also the shape where exploration reuse pays.
fn clean_feature_tune(ctx: &Ctx) -> Snippet {
    let f = ctx.n("tune");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push("    int rate = 0;");
    s.push("    int burst = 0;");
    s.push("    int win = 0;");
    s.push("    int depth = 0;");
    s.push("    if (d->flags > 0) { rate = 100; } else { rate = 10; }");
    s.push("    if (d->mode > 1) { burst = 8; } else { burst = 1; }");
    s.push("    if (d->irq > 0) { win = 4; } else { win = 2; }");
    s.push("    if (d->dma > 0) { depth = 16; } else { depth = 2; }");
    s.push("    if (d->nlanes > 1) { rate = rate + burst; } else { rate = rate - burst; }");
    s.push("    if (d->state > 0) { win = win + depth; } else { win = win - depth; }");
    s.push("    return rate + win;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Both arms of each branch acknowledge through the same small helper —
/// the notify/ack idiom. The two call sites reach the helper with identical
/// analysis state, so the callee summary recorded at the first site replays
/// at the second.
fn clean_ack_paths(ctx: &Ctx) -> Snippet {
    let ping = ctx.n("ping");
    let f = ctx.n("poll");
    let mut s = Snippet::default();
    s.push(format!("static int {ping}(int n) {{"));
    s.push("    if (n > 0) { n = n - 1; }");
    s.push("    if (n > 4) { n = 4; }");
    s.push("    return n;");
    s.push("}");
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push("    int a = 0;");
    s.push("    int b = 0;");
    s.push("    if (d->irq > 0) {");
    s.push(format!("        a = {ping}(2);"));
    s.push("    } else {");
    s.push(format!("        a = {ping}(2);"));
    s.push("    }");
    s.push("    if (d->dma > 0) {");
    s.push(format!("        b = {ping}(3);"));
    s.push("    } else {");
    s.push(format!("        b = {ping}(3);"));
    s.push("    }");
    s.push("    return a + b;");
    s.push("}");
    s.interfaces.push(f);
    s
}

fn clean_loop_sum(ctx: &Ctx) -> Snippet {
    let f = ctx.n("sum");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(int *vals, int n) {{"));
    s.push("    int total = 0;");
    s.push("    int i;");
    s.push("    for (i = 0; i < n; i++) {");
    s.push("        total += vals[i];");
    s.push("    }");
    s.push("    return total;");
    s.push("}");
    s.interfaces.push(f);
    s
}

fn clean_state_machine(ctx: &Ctx) -> Snippet {
    let f = ctx.n("step");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d, int ev) {{", ctx.dev));
    s.push("    if (ev == 1 && d->state == 0) {");
    s.push("        d->state = 1;");
    s.push("        return 0;");
    s.push("    }");
    s.push("    if (ev == 2 || d->state > 1) {");
    s.push("        d->state = 2;");
    s.push("        return 1;");
    s.push("    }");
    s.push("    return -1;");
    s.push("}");
    s.interfaces.push(f);
    s
}

fn clean_init_path(ctx: &Ctx) -> Snippet {
    let f = ctx.n("setup");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push(format!("    struct {} *cfg = d->user_data;", ctx.cfg));
    s.push("    if (cfg == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    cfg->count = 0;");
    s.push("    cfg->frnd = d->nlanes;");
    s.push("    return 0;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Long alias chain over one config object — the paper's motivation for
/// merging typestates: every link joins the same alias set.
fn clean_alias_chain(ctx: &Ctx) -> Snippet {
    let f = ctx.n("chain");
    let mut s = Snippet::default();
    s.push(format!("static int {f}(struct {} *d) {{", ctx.dev));
    s.push(format!("    struct {} *a = d->user_data;", ctx.cfg));
    s.push(format!("    struct {} *b = a;", ctx.cfg));
    s.push(format!("    struct {} *c2 = b;", ctx.cfg));
    s.push(format!("    struct {} *e = c2;", ctx.cfg));
    s.push("    if (e == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    int acc = e->frnd + b->count;");
    s.push("    acc += c2->flags;");
    s.push("    return acc;");
    s.push("}");
    s.interfaces.push(f);
    s
}

/// Three-deep call pipeline re-deriving the same field pointer in every
/// frame — the Fig. 7 pattern where `foo:t` and `bar:t` share one node.
fn clean_call_pipeline(ctx: &Ctx) -> Snippet {
    let l3 = ctx.n("commit");
    let l2 = ctx.n("apply");
    let l1 = ctx.n("dispatch");
    let mut s = Snippet::default();
    s.push(format!("static int {l3}(struct {} *d) {{", ctx.dev));
    s.push(format!("    struct {} *cfg = d->user_data;", ctx.cfg));
    s.push("    if (cfg == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    cfg->count = cfg->count + 1;");
    s.push("    return cfg->count;");
    s.push("}");
    s.push(format!(
        "static int {l2}(struct {} *d, int mode) {{",
        ctx.dev
    ));
    s.push(format!("    struct {} *cfg = d->user_data;", ctx.cfg));
    s.push("    if (cfg == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push("    if (mode > 0) {");
    s.push("        cfg->mode = mode;");
    s.push("    }");
    s.push(format!("    return {l3}(d);"));
    s.push("}");
    s.push(format!(
        "static int {l1}(struct {} *d, int mode) {{",
        ctx.dev
    ));
    s.push(format!("    struct {} *cfg = d->user_data;", ctx.cfg));
    s.push("    if (cfg == NULL) {");
    s.push("        return -1;");
    s.push("    }");
    s.push(format!("    return {l2}(d, mode);"));
    s.push("}");
    s.interfaces.push(l1);
    s
}

// ====================================================================
// Registries
// ====================================================================

/// Real-bug templates for the three main checkers (Table 5 workload).
pub fn main_bug_templates() -> Vec<(&'static str, Template)> {
    vec![
        ("npd_intra_field", npd_intra_field as Template),
        ("npd_single_var", npd_single_var),
        ("npd_cross_fn", npd_cross_fn),
        ("npd_null_store", npd_null_store),
        ("uva_scalar_branch", uva_scalar_branch),
        ("uva_heap_field", uva_heap_field),
        ("ml_error_path", ml_error_path),
        ("ml_callee_free", ml_callee_free),
        ("ml_never_freed", ml_never_freed),
        ("uva_goto_skip_init", uva_goto_skip_init),
        ("npd_error_label", npd_error_label),
        ("ml_second_alloc_fails", ml_second_alloc_fails),
    ]
}

/// Additional-checker bug templates (Table 7 workload).
pub fn extra_bug_templates() -> Vec<(&'static str, Template)> {
    vec![
        ("dl_retry_path", dl_retry_path as Template),
        ("aiu_negative", aiu_negative),
        ("dbz_checked_zero", dbz_checked_zero),
        ("uaf_late_read", uaf_late_read),
    ]
}

/// False-positive traps.
pub fn trap_templates() -> Vec<(&'static str, Template)> {
    vec![
        (
            "trap_npd_extern_contract",
            trap_npd_extern_contract as Template,
        ),
        ("trap_npd_loop", trap_npd_loop),
        ("trap_uva_concurrent_init", trap_uva_concurrent_init),
        ("trap_npd_infeasible_alias", trap_npd_infeasible_alias),
        ("trap_ml_callee_free", trap_ml_callee_free),
        ("trap_uva_out_param", trap_uva_out_param),
        ("trap_npd_flow_insensitive", trap_npd_flow_insensitive),
        ("trap_uva_array", trap_uva_array),
        ("trap_dbz_contract", trap_dbz_contract),
        ("trap_aiu_contract", trap_aiu_contract),
    ]
}

/// Clean distractor templates (the bulk of every OS).
pub fn clean_templates() -> Vec<(&'static str, Template)> {
    vec![
        ("clean_guarded_deref", clean_guarded_deref as Template),
        ("clean_balanced_lock", clean_balanced_lock),
        ("clean_alloc_free", clean_alloc_free),
        ("clean_helper_chain", clean_helper_chain),
        ("clean_feature_tune", clean_feature_tune),
        ("clean_ack_paths", clean_ack_paths),
        ("clean_loop_sum", clean_loop_sum),
        ("clean_state_machine", clean_state_machine),
        ("clean_init_path", clean_init_path),
        ("clean_alias_chain", clean_alias_chain),
        ("clean_call_pipeline", clean_call_pipeline),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_templates() -> Vec<(&'static str, Template)> {
        let mut all = main_bug_templates();
        all.extend(extra_bug_templates());
        all.extend(trap_templates());
        all.extend(clean_templates());
        all
    }

    #[test]
    fn every_template_compiles_standalone() {
        for (name, t) in all_templates() {
            let ctx = Ctx::new(0);
            let snippet = t(&ctx);
            let mut text = struct_defs(&ctx).join("\n");
            text.push('\n');
            text.push_str(&snippet.lines.join("\n"));
            let result = pata_cc::compile_one(&format!("{name}.c"), &text);
            assert!(
                result.is_ok(),
                "template {name} fails to compile: {:?}",
                result.err()
            );
        }
    }

    #[test]
    fn bug_templates_mark_exactly_one_real_bug() {
        for (name, t) in main_bug_templates()
            .into_iter()
            .chain(extra_bug_templates())
        {
            let s = t(&Ctx::new(1));
            let real: Vec<_> = s.marks.iter().filter(|m| !m.trap).collect();
            assert_eq!(real.len(), 1, "{name}");
            assert!(
                real[0].rel_line < s.lines.len(),
                "{name}: mark out of range"
            );
        }
    }

    #[test]
    fn trap_templates_mark_only_traps() {
        for (name, t) in trap_templates() {
            let s = t(&Ctx::new(2));
            assert!(!s.marks.is_empty(), "{name}");
            assert!(s.marks.iter().all(|m| m.trap), "{name}");
        }
    }

    #[test]
    fn clean_templates_mark_nothing() {
        for (name, t) in clean_templates() {
            let s = t(&Ctx::new(3));
            assert!(s.marks.is_empty(), "{name}");
            assert!(!s.interfaces.is_empty(), "{name}: needs an analysis root");
        }
    }

    #[test]
    fn contexts_produce_unique_names() {
        let a = npd_cross_fn(&Ctx::new(1));
        let b = npd_cross_fn(&Ctx::new(2));
        assert_ne!(a.lines, b.lines);
    }
}
