//! OS profiles — scaled-down structural models of the four evaluated OSes
//! (paper Table 4), controlling corpus size, category mix and bug density.

use pata_ir::Category;

/// A weighted category mix: `(category, file share, bug share)`.
///
/// File shares control how many files each OS part gets; bug shares control
/// where injected bugs land, reproducing the Fig. 11 distribution (75% of
/// Linux bugs in drivers, 68% of IoT bugs in third-party modules).
pub type CategoryMix = &'static [(Category, f64, f64)];

const LINUX_MIX: CategoryMix = &[
    (Category::Drivers, 0.58, 0.75),
    (Category::Network, 0.08, 0.09),
    (Category::Filesystem, 0.08, 0.07),
    (Category::CoreKernel, 0.16, 0.05),
    (Category::Other, 0.10, 0.04),
];

const IOT_MIX: CategoryMix = &[
    (Category::ThirdParty, 0.46, 0.68),
    (Category::Subsystem, 0.28, 0.25),
    (Category::CoreKernel, 0.16, 0.04),
    (Category::Other, 0.10, 0.03),
];

/// A scaled model of one evaluated OS.
#[derive(Debug, Clone)]
pub struct OsProfile {
    /// Display name (matches the paper's Table 4 rows).
    pub name: &'static str,
    /// Version string, for Table 4.
    pub version: &'static str,
    /// Number of generated (analyzable) source files at scale 1.0.
    pub base_files: usize,
    /// Additional files that exist but are "not enabled by the compilation
    /// configuration" (paper §5.1 analyzed/all distinction) — reported in
    /// Table 4/5 but not generated.
    pub base_unanalyzed_files: usize,
    /// Mean functions per file.
    pub functions_per_file: usize,
    /// Category mix.
    pub mix: CategoryMix,
    /// Fraction of files receiving one injected real bug.
    pub bug_density: f64,
    /// Fraction of files receiving one false-positive trap.
    pub trap_density: f64,
    /// RNG seed (fixed per profile for reproducibility).
    pub seed: u64,
    /// Scale multiplier applied to file counts.
    pub scale: f64,
}

impl OsProfile {
    /// The Linux 5.6 model.
    pub fn linux() -> Self {
        OsProfile {
            name: "Linux kernel",
            version: "5.6 (modeled)",
            base_files: 420,
            base_unanalyzed_files: 310,
            functions_per_file: 6,
            mix: LINUX_MIX,
            bug_density: 0.55,
            trap_density: 0.29,
            seed: 0x11ab_cd01,
            scale: 1.0,
        }
    }

    /// The Zephyr 2.1.0 model.
    pub fn zephyr() -> Self {
        OsProfile {
            name: "Zephyr",
            version: "2.1.0 (modeled)",
            base_files: 42,
            base_unanalyzed_files: 68,
            functions_per_file: 5,
            mix: IOT_MIX,
            bug_density: 0.42,
            trap_density: 0.20,
            seed: 0x2e9f_0002,
            scale: 1.0,
        }
    }

    /// The RIOT 2020.04 model.
    pub fn riot() -> Self {
        OsProfile {
            name: "RIOT",
            version: "2020.04 (modeled)",
            base_files: 86,
            base_unanalyzed_files: 250,
            functions_per_file: 5,
            mix: IOT_MIX,
            bug_density: 0.52,
            trap_density: 0.24,
            seed: 0x3107_0003,
            scale: 1.0,
        }
    }

    /// The TencentOS-tiny model.
    pub fn tencent() -> Self {
        OsProfile {
            name: "TencentOS-tiny",
            version: "23313e (modeled)",
            base_files: 38,
            base_unanalyzed_files: 100,
            functions_per_file: 5,
            mix: IOT_MIX,
            bug_density: 0.50,
            trap_density: 0.21,
            seed: 0x7e2c_0004,
            scale: 1.0,
        }
    }

    /// All four evaluated OS models, in the paper's order.
    pub fn all() -> Vec<OsProfile> {
        vec![Self::linux(), Self::zephyr(), Self::riot(), Self::tencent()]
    }

    /// Scales the corpus (0.1 = ten times smaller; useful in tests).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the seed (e.g. for robustness experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of files to actually generate.
    pub fn file_count(&self) -> usize {
        ((self.base_files as f64 * self.scale).round() as usize).max(4)
    }

    /// Number of not-compiled files (Table 4 "all" minus "analyzed").
    pub fn unanalyzed_file_count(&self) -> usize {
        (self.base_unanalyzed_files as f64 * self.scale).round() as usize
    }

    /// Splits `file_count` across the category mix.
    pub fn files_per_category(&self) -> Vec<(Category, usize)> {
        let total = self.file_count();
        let mut out = Vec::new();
        let mut assigned = 0;
        for (i, &(cat, share, _)) in self.mix.iter().enumerate() {
            let n = if i + 1 == self.mix.len() {
                total - assigned
            } else {
                ((total as f64 * share).round() as usize).min(total - assigned)
            };
            assigned += n;
            out.push((cat, n));
        }
        out
    }

    /// Bug weight of a category (used to steer injection toward drivers /
    /// third-party modules, matching Fig. 11).
    pub fn bug_share(&self, cat: Category) -> f64 {
        self.mix
            .iter()
            .find(|(c, _, _)| *c == cat)
            .map(|(_, _, b)| *b)
            .unwrap_or(0.0)
    }

    /// File share of a category.
    pub fn file_share(&self, cat: Category) -> f64 {
        self.mix
            .iter()
            .find(|(c, _, _)| *c == cat)
            .map(|(_, f, _)| *f)
            .unwrap_or(0.0)
    }

    /// Path prefix for a category (drives `pata-cc`'s category inference).
    pub fn dir_of(cat: Category) -> &'static str {
        match cat {
            Category::Drivers => "drivers",
            Category::Network => "net",
            Category::Filesystem => "fs",
            Category::Subsystem => "subsys",
            Category::ThirdParty => "third_party",
            Category::CoreKernel => "kernel",
            Category::Other => "lib",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for p in OsProfile::all() {
            let files: f64 = p.mix.iter().map(|(_, f, _)| f).sum();
            let bugs: f64 = p.mix.iter().map(|(_, _, b)| b).sum();
            assert!(
                (files - 1.0).abs() < 1e-9,
                "{}: file shares {files}",
                p.name
            );
            assert!((bugs - 1.0).abs() < 1e-9, "{}: bug shares {bugs}", p.name);
        }
    }

    #[test]
    fn category_split_covers_all_files() {
        for p in OsProfile::all() {
            let split = p.files_per_category();
            let total: usize = split.iter().map(|(_, n)| n).sum();
            assert_eq!(total, p.file_count(), "{}", p.name);
        }
    }

    #[test]
    fn scale_shrinks() {
        let full = OsProfile::linux();
        let small = OsProfile::linux().with_scale(0.1);
        assert!(small.file_count() < full.file_count());
        assert!(small.file_count() >= 4);
    }

    #[test]
    fn linux_is_largest() {
        let sizes: Vec<usize> = OsProfile::all().iter().map(|p| p.file_count()).collect();
        assert!(sizes[0] > sizes[1] && sizes[0] > sizes[2] && sizes[0] > sizes[3]);
    }
}
