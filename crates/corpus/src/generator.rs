//! Corpus assembly: files, registration structs, manifest.
//!
//! Every generated file contains its own struct definitions, a mix of
//! template-instantiated functions (clean distractors, at most one real bug
//! and/or one trap, steered by the profile's densities and category bug
//! shares), and a *registration struct* whose designated initializers take
//! the addresses of the file's entry functions — turning them into module
//! interface functions with no explicit caller (paper Fig. 1 / D1).

use crate::manifest::{GroundTruth, Manifest};
use crate::profile::OsProfile;
use crate::rng::Prng;
use crate::templates::{self, Ctx, Template};
use pata_cc::Compiler;
use pata_ir::{Category, Module};

/// One generated source file.
#[derive(Debug, Clone)]
pub struct GeneratedFile {
    /// Path-like name (`drivers/gpu/dev_f12.c`).
    pub path: String,
    /// Mini-C source text.
    pub text: String,
    /// OS part.
    pub category: Category,
}

/// A generated corpus: files plus ground truth.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The profile used.
    pub profile: OsProfile,
    /// Generated source files.
    pub files: Vec<GeneratedFile>,
    /// Ground-truth manifest.
    pub manifest: Manifest,
}

impl Corpus {
    /// Generates the corpus for `profile` (deterministic per seed).
    pub fn generate(profile: &OsProfile) -> Corpus {
        let mut rng = Prng::seed_from_u64(profile.seed);
        let mut files = Vec::new();
        let mut manifest = Manifest::default();

        let main_bugs = templates::main_bug_templates();
        let extra_bugs = templates::extra_bug_templates();
        let traps = templates::trap_templates();
        let cleans = templates::clean_templates();

        let mut file_idx = 0usize;
        for (category, count) in profile.files_per_category() {
            // Scale injection probability by the category's bug share
            // relative to its file share (drivers get ~1.3×, core ~0.3×).
            let fs = profile.file_share(category).max(1e-6);
            let weight = profile.bug_share(category) / fs;
            let bug_p = (profile.bug_density * weight).min(0.95);
            let trap_p = (profile.trap_density * weight).min(0.8);
            for _ in 0..count {
                let ctx = Ctx::new(file_idx);
                let path = format!(
                    "{}/{}_{}.c",
                    OsProfile::dir_of(category),
                    module_noun(&mut rng),
                    ctx.suffix
                );
                let mut picks: Vec<(&'static str, Template, bool)> = Vec::new();
                if rng.gen_bool(bug_p) {
                    let &(name, t) = rng.choose(&main_bugs);
                    picks.push((name, t, false));
                }
                // Extra-checker bugs are sparser (Table 7 scale).
                if rng.gen_bool(bug_p * 0.25) {
                    let &(name, t) = rng.choose(&extra_bugs);
                    picks.push((name, t, false));
                }
                if rng.gen_bool(trap_p) {
                    // Weighted: the traps PATA itself reports (the paper's
                    // §5.2 FP sources) are drawn more often so the overall
                    // FP rate lands near the paper's 28%.
                    let weighted: Vec<&(&'static str, Template)> = traps
                        .iter()
                        .flat_map(|t| {
                            let w = match t.0 {
                                "trap_npd_extern_contract"
                                | "trap_npd_loop"
                                | "trap_uva_concurrent_init" => 3,
                                "trap_uva_array" => 2,
                                _ => 1,
                            };
                            std::iter::repeat(t).take(w)
                        })
                        .collect();
                    let &&(name, t) = rng.choose(&weighted);
                    picks.push((name, t, true));
                }
                let n_clean = rng.gen_range(2, profile.functions_per_file.max(3) + 1);
                for _ in 0..n_clean {
                    let &(name, t) = rng.choose(&cleans);
                    if picks.iter().any(|(n, _, _)| *n == name) {
                        continue; // avoid duplicate function names per file
                    }
                    picks.push((name, t, true /*unused for clean*/));
                }
                rng.shuffle(&mut picks);

                let (text, entries) = assemble_file(&ctx, &path, category, &picks);
                for e in entries {
                    if e.1 {
                        manifest.traps.push(e.0);
                    } else {
                        manifest.bugs.push(e.0);
                    }
                }
                files.push(GeneratedFile {
                    path,
                    text,
                    category,
                });
                file_idx += 1;
            }
        }
        Corpus {
            profile: profile.clone(),
            files,
            manifest,
        }
    }

    /// Compiles the corpus into one PIR module.
    ///
    /// # Errors
    ///
    /// Returns front-end diagnostics (should not happen for generated
    /// code — covered by tests).
    pub fn compile(&self) -> Result<Module, Vec<pata_cc::Diag>> {
        let mut cc = Compiler::new();
        for f in &self.files {
            cc.add_source_with_category(&f.path, &f.text, f.category);
        }
        cc.compile()
    }

    /// Total generated lines of code.
    pub fn loc(&self) -> u64 {
        self.files
            .iter()
            .map(|f| f.text.lines().count() as u64)
            .sum()
    }
}

fn module_noun(rng: &mut Prng) -> &'static str {
    const NOUNS: &[&str] = &[
        "mmc", "uart", "spi", "i2c", "dma", "gpio", "phy", "mac", "vfs", "inode", "sock", "queue",
        "timer", "sched", "irq", "pm", "clk", "regmap", "bridge", "codec", "sensor", "radio",
        "mesh", "coap", "mqtt", "shell", "flash", "pwm", "adc", "wdt",
    ];
    *rng.choose(NOUNS)
}

type Entry = (GroundTruth, bool);

fn assemble_file(
    ctx: &Ctx,
    path: &str,
    category: Category,
    picks: &[(&'static str, Template, bool)],
) -> (String, Vec<Entry>) {
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!(
        "// Auto-generated module {} ({})",
        ctx.suffix, category
    ));
    lines.extend(templates::struct_defs(ctx));
    lines.push(String::new());

    let mut entries = Vec::new();
    let mut interfaces = Vec::new();
    let mut seen_names = std::collections::HashSet::new();
    let mut bug_counter = 0usize;
    for (name, template, _) in picks {
        if !seen_names.insert(*name) {
            continue;
        }
        let snippet = template(ctx);
        let base = lines.len();
        for mark in &snippet.marks {
            let truth = GroundTruth {
                id: format!("{}-{}-{}", ctx.suffix, name, bug_counter),
                file: path.to_owned(),
                function: mark.function.clone(),
                kind: mark.kind,
                // +1: manifest lines are 1-based like compiler lines.
                line: (base + mark.rel_line + 1) as u32,
                category,
                template: mark.template.to_owned(),
            };
            entries.push((truth, mark.trap));
            bug_counter += 1;
        }
        lines.extend(snippet.lines.iter().cloned());
        lines.push(String::new());
        interfaces.extend(snippet.interfaces);
    }

    // The registration struct: designated initializers taking the entry
    // functions' addresses. No function in this module calls them, so the
    // collector classifies them as module interface functions.
    if !interfaces.is_empty() {
        let fields: Vec<String> = interfaces
            .iter()
            .enumerate()
            .map(|(i, f)| format!(".op{i} = {f}"))
            .collect();
        lines.push(format!(
            "static struct ops_{} {}_driver = {{ {} }};",
            ctx.suffix,
            ctx.suffix,
            fields.join(", ")
        ));
    }
    (lines.join("\n"), entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_compiles() {
        let corpus = Corpus::generate(&OsProfile::zephyr().with_scale(0.25));
        assert!(corpus.files.len() >= 4);
        assert!(!corpus.manifest.bugs.is_empty());
        let module = corpus.compile().expect("corpus must compile");
        assert!(pata_ir::verify_module(&module).is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&OsProfile::riot().with_scale(0.2));
        let b = Corpus::generate(&OsProfile::riot().with_scale(0.2));
        assert_eq!(a.files.len(), b.files.len());
        for (fa, fb) in a.files.iter().zip(&b.files) {
            assert_eq!(fa.text, fb.text);
        }
        assert_eq!(a.manifest.bugs.len(), b.manifest.bugs.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(&OsProfile::riot().with_scale(0.2));
        let b = Corpus::generate(&OsProfile::riot().with_scale(0.2).with_seed(99));
        assert!(a.files.iter().zip(&b.files).any(|(x, y)| x.text != y.text));
    }

    #[test]
    fn manifest_lines_point_at_marked_source() {
        let corpus = Corpus::generate(&OsProfile::tencent().with_scale(0.4));
        for bug in &corpus.manifest.bugs {
            let file = corpus
                .files
                .iter()
                .find(|f| f.path == bug.file)
                .expect("file exists");
            let line = file.text.lines().nth(bug.line as usize - 1).unwrap_or("");
            assert!(
                !line.trim().is_empty(),
                "{}: line {} empty in {}",
                bug.id,
                bug.line,
                bug.file
            );
        }
    }

    #[test]
    fn linux_profile_bugs_concentrate_in_drivers() {
        let corpus = Corpus::generate(&OsProfile::linux().with_scale(0.4));
        let drivers = corpus
            .manifest
            .bugs
            .iter()
            .filter(|b| b.category == Category::Drivers)
            .count();
        let total = corpus.manifest.bugs.len().max(1);
        let share = drivers as f64 / total as f64;
        assert!(
            share > 0.55,
            "drivers should dominate Linux bugs (Fig. 11): got {share:.2} of {total}"
        );
    }

    #[test]
    fn interface_functions_registered() {
        let corpus = Corpus::generate(&OsProfile::zephyr().with_scale(0.25));
        let module = corpus.compile().unwrap();
        let mut module = module;
        let roots = pata_core::collector::mark_interfaces(&mut module);
        assert!(
            roots.len() >= corpus.files.len(),
            "every generated file contributes at least one analysis root"
        );
    }
}
