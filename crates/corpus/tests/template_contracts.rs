//! Template contracts: every corpus template must behave as designed when
//! compiled standalone — bug templates are found by PATA (with the right
//! checker), trap templates are reported by the tools they target and not
//! by the tools they exempt. These contracts are what make the Table 5-8
//! numbers meaningful.

use pata_core::{AnalysisConfig, AnalysisSession, BugKind};
use pata_corpus::templates::{self, Ctx, Snippet};

fn compile_snippet(name: &str, snippet: &Snippet, ctx: &Ctx) -> pata_ir::Module {
    let mut text = templates::struct_defs(ctx).join("\n");
    text.push('\n');
    text.push_str(&snippet.lines.join("\n"));
    text.push('\n');
    // Register every entry function so it becomes an analysis root even
    // standalone.
    let fields: Vec<String> = snippet
        .interfaces
        .iter()
        .enumerate()
        .map(|(i, f)| format!(".op{i} = {f}"))
        .collect();
    text.push_str(&format!(
        "static struct ops_t reg = {{ {} }};\n",
        fields.join(", ")
    ));
    pata_cc::compile_one(&format!("{name}.c"), &text).expect("template compiles")
}

fn pata_kinds(module: pata_ir::Module, all: bool) -> Vec<BugKind> {
    let config = if all {
        AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::all_checkers()
        }
    } else {
        AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        }
    };
    AnalysisSession::new(config)
        .analyze_module(module)
        .reports
        .iter()
        .map(|r| r.kind)
        .collect()
}

#[test]
fn every_bug_template_is_found_by_pata() {
    let ctx = Ctx::new(7);
    for (name, template) in templates::main_bug_templates()
        .into_iter()
        .chain(templates::extra_bug_templates())
    {
        let snippet = template(&ctx);
        let expected: Vec<BugKind> = snippet
            .marks
            .iter()
            .filter(|m| !m.trap)
            .map(|m| m.kind)
            .collect();
        let module = compile_snippet(name, &snippet, &ctx);
        let found = pata_kinds(module, true);
        for kind in &expected {
            assert!(
                found.contains(kind),
                "template {name}: PATA must find the injected {kind}; found {found:?}"
            );
        }
    }
}

#[test]
fn clean_templates_produce_no_reports() {
    let ctx = Ctx::new(8);
    for (name, template) in templates::clean_templates() {
        let snippet = template(&ctx);
        let module = compile_snippet(name, &snippet, &ctx);
        let found = pata_kinds(module, true);
        assert!(
            found.is_empty(),
            "clean template {name} must be silent; got {found:?}"
        );
    }
}

#[test]
fn pata_visible_traps_fire() {
    // These traps model the paper's §5.2 FP taxonomy — PATA itself reports
    // them (they are counted as PATA false positives in Tables 5/8).
    let pata_traps = [
        "trap_npd_extern_contract",
        "trap_npd_loop",
        "trap_uva_concurrent_init",
        "trap_uva_array",
        "trap_dbz_contract",
        "trap_aiu_contract",
    ];
    let ctx = Ctx::new(9);
    for (name, template) in templates::trap_templates() {
        if !pata_traps.contains(&name) {
            continue;
        }
        let snippet = template(&ctx);
        let expected: Vec<BugKind> = snippet.marks.iter().map(|m| m.kind).collect();
        let module = compile_snippet(name, &snippet, &ctx);
        let found = pata_kinds(module, true);
        for kind in &expected {
            assert!(
                found.contains(kind),
                "trap {name}: PATA should report the {kind} FP; found {found:?}"
            );
        }
    }
}

#[test]
fn pata_exempt_traps_stay_silent() {
    // These traps target *other* tools; PATA's alias-aware validation or
    // state tracking must not report them.
    let exempt = [
        "trap_npd_infeasible_alias",
        "trap_ml_callee_free",
        "trap_uva_out_param",
        "trap_npd_flow_insensitive",
    ];
    let ctx = Ctx::new(10);
    for (name, template) in templates::trap_templates() {
        if !exempt.contains(&name) {
            continue;
        }
        let snippet = template(&ctx);
        let module = compile_snippet(name, &snippet, &ctx);
        let found = pata_kinds(module, true);
        assert!(
            found.is_empty(),
            "trap {name} targets other tools; PATA must stay silent, got {found:?}"
        );
    }
}

#[test]
fn na_reports_its_targeted_traps() {
    use pata_core::AliasMode;
    let na_traps = ["trap_npd_infeasible_alias", "trap_ml_callee_free"];
    let ctx = Ctx::new(11);
    for (name, template) in templates::trap_templates() {
        if !na_traps.contains(&name) {
            continue;
        }
        let snippet = template(&ctx);
        let expected: Vec<BugKind> = snippet.marks.iter().map(|m| m.kind).collect();
        let module = compile_snippet(name, &snippet, &ctx);
        let out = AnalysisSession::new(AnalysisConfig {
            threads: 1,
            alias_mode: AliasMode::None,
            ..AnalysisConfig::default()
        })
        .analyze_module(module);
        let found: Vec<BugKind> = out.reports.iter().map(|r| r.kind).collect();
        for kind in &expected {
            assert!(
                found.contains(kind),
                "trap {name}: PATA-NA should FP with {kind}; found {found:?}"
            );
        }
    }
}
