//! The fault-injection matrix (ISSUE 9 acceptance): every containment
//! path — checker panic, explore panic, validate panic, store IO error,
//! kill-mid-write, deadline hit, live-bytes ceiling — produces a
//! well-formed versioned report with a populated `degraded` section, the
//! session keeps answering, and degraded reports are byte-identical
//! across thread counts and cache configurations for a fixed fault plan.

use pata_core::{
    AnalysisConfig, AnalysisRequest, AnalysisSession, FaultPlan, Report, SessionError,
    SessionOutcome,
};
use std::path::PathBuf;
use std::sync::Arc;

const CORPUS: &[(&str, &str)] = &[
    (
        "drivers/net.c",
        r#"
        struct dev { int *res; int len; };
        int net_probe(struct dev *d) {
            if (d->res == NULL) { }
            return *d->res;
        }
        "#,
    ),
    (
        "drivers/block.c",
        r#"
        int blk_probe(int n) {
            int *m = malloc(n);
            if (m == NULL) { return -1; }
            if (n < 0) { return -2; }
            free(m);
            return 0;
        }
        "#,
    ),
    (
        "drivers/char.c",
        r#"
        int chr_helper(int *p) {
            if (p == NULL) { return 0; }
            return *p;
        }
        int chr_probe(int *p) {
            int x = chr_helper(p);
            return x + *p;
        }
        "#,
    ),
];

fn request() -> AnalysisRequest {
    let mut r = AnalysisRequest::new();
    for (name, text) in CORPUS {
        r = r.file(*name, *text);
    }
    r
}

fn plan(spec: &str) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::parse(spec).expect("valid plan"))
}

fn config(threads: usize, caches: bool, cow: bool, spec: Option<&str>) -> AnalysisConfig {
    let mut b = AnalysisConfig::builder()
        .threads(threads)
        .exploration_cache(caches)
        .callee_memo(caches)
        .cow_state(cow);
    if let Some(spec) = spec {
        b = b.fault_plan(plan(spec));
    }
    b.build().expect("valid config")
}

fn analyze(cfg: AnalysisConfig) -> SessionOutcome {
    AnalysisSession::new(cfg)
        .analyze(&request())
        .expect("analyze succeeds")
}

fn tempdir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pata-faultmx-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The report must survive its own wire format: serialize, re-parse,
/// re-serialize, byte-for-byte.
fn assert_well_formed(report: &Report) {
    let json = report.to_json();
    let back = Report::from_json(&json).expect("round-trips");
    assert_eq!(back.to_json(), json);
    assert_eq!(back.degraded, report.degraded);
}

fn baseline() -> SessionOutcome {
    analyze(config(1, true, true, None))
}

#[test]
fn explore_panic_quarantines_one_root_and_keeps_the_rest() {
    let outcome = analyze(config(1, true, true, Some("explore:net_probe")));
    assert_well_formed(&outcome.report);
    assert_eq!(outcome.report.degraded.len(), 1);
    let d = &outcome.report.degraded[0];
    assert_eq!(d.root, "net_probe");
    assert_eq!(d.stage, "explore");
    assert_eq!(d.action, "quarantined");
    assert_eq!(d.reason, "fault injected: explore:net_probe");
    // The quarantined root contributes no reports; the others are intact.
    assert!(!outcome
        .report
        .reports
        .iter()
        .any(|r| r.function == "net_probe"));
    let base = baseline();
    assert!(base.report.degraded.is_empty());
    let kept: Vec<_> = base
        .report
        .reports
        .iter()
        .filter(|r| r.function != "net_probe")
        .collect();
    assert_eq!(outcome.report.reports.len(), kept.len());
    assert!(outcome.report.reports.len() < base.report.reports.len());
}

#[test]
fn checker_panic_is_contained_like_an_explore_panic() {
    let outcome = analyze(config(1, true, true, Some("checker:chr_probe@1")));
    assert_well_formed(&outcome.report);
    assert_eq!(outcome.report.degraded.len(), 1);
    let d = &outcome.report.degraded[0];
    assert_eq!(
        (d.root.as_str(), d.stage.as_str(), d.action.as_str()),
        ("chr_probe", "explore", "quarantined")
    );
    assert!(!outcome
        .report
        .reports
        .iter()
        .any(|r| r.function == "chr_probe"));
}

#[test]
fn validate_panic_drops_the_group_and_reports_it() {
    let outcome = analyze(config(1, true, true, Some("validate:net_probe")));
    assert_well_formed(&outcome.report);
    assert_eq!(outcome.report.degraded.len(), 1);
    let d = &outcome.report.degraded[0];
    assert_eq!(
        (d.root.as_str(), d.stage.as_str(), d.action.as_str()),
        ("net_probe", "validate", "quarantined")
    );
    assert!(!outcome
        .report
        .reports
        .iter()
        .any(|r| r.function == "net_probe"));
    // Other roots still validated and reported.
    let base = baseline();
    assert!(outcome.report.reports.len() < base.report.reports.len());
}

#[test]
fn deadline_hit_demotes_and_keeps_the_bounded_verdicts() {
    let outcome = analyze(config(1, true, true, Some("deadline:net_probe@1")));
    assert_well_formed(&outcome.report);
    assert_eq!(outcome.report.degraded.len(), 1);
    let d = &outcome.report.degraded[0];
    assert_eq!(
        (
            d.root.as_str(),
            d.stage.as_str(),
            d.action.as_str(),
            d.reason.as_str()
        ),
        ("net_probe", "explore", "demoted", "deadline")
    );
    // The bounded re-run still finds the root's bug (the corpus roots are
    // tiny, far under the demoted budgets).
    assert!(outcome
        .report
        .reports
        .iter()
        .any(|r| r.function == "net_probe"));
    assert_eq!(
        outcome.report.reports.len(),
        baseline().report.reports.len()
    );
}

#[test]
fn live_bytes_ceiling_demotes_too() {
    let outcome = analyze(config(1, true, true, Some("live_bytes:blk_probe@1")));
    assert_well_formed(&outcome.report);
    assert_eq!(outcome.report.degraded.len(), 1);
    let d = &outcome.report.degraded[0];
    assert_eq!(
        (d.root.as_str(), d.action.as_str(), d.reason.as_str()),
        ("blk_probe", "demoted", "live_bytes")
    );
}

#[test]
fn unconditional_resource_trip_escalates_to_quarantine() {
    // The rule fires again in the demoted re-run, so the ladder gives up.
    let outcome = analyze(config(1, true, true, Some("deadline:net_probe")));
    assert_well_formed(&outcome.report);
    assert_eq!(outcome.report.degraded.len(), 1);
    let d = &outcome.report.degraded[0];
    assert_eq!(
        (d.root.as_str(), d.action.as_str(), d.reason.as_str()),
        ("net_probe", "quarantined", "deadline")
    );
    assert!(!outcome
        .report
        .reports
        .iter()
        .any(|r| r.function == "net_probe"));
}

/// Degraded reports are byte-identical across thread counts and cache /
/// cow configurations for a fixed fault plan.
#[test]
fn degraded_reports_byte_identical_across_configs() {
    for spec in [
        "explore:net_probe",
        "checker:chr_probe@1",
        "validate:net_probe",
        "deadline:net_probe@1",
        "live_bytes:blk_probe@1",
        "deadline:net_probe,live_bytes:blk_probe@1,validate:chr_probe",
    ] {
        let reference = analyze(config(1, true, true, Some(spec))).report.to_json();
        for (threads, caches, cow) in [
            (2, true, true),
            (4, true, true),
            (1, false, true),
            (4, false, false),
            (2, true, false),
        ] {
            let got = analyze(config(threads, caches, cow, Some(spec)))
                .report
                .to_json();
            assert_eq!(
                got, reference,
                "spec `{spec}` threads={threads} caches={caches} cow={cow}"
            );
        }
    }
}

/// An empty fault plan is the null hypothesis: byte-identical to no plan.
#[test]
fn zero_fault_runs_match_no_plan_runs() {
    let with_empty = analyze(config(2, true, true, Some("")));
    let without = analyze(config(2, true, true, None));
    assert_eq!(with_empty.report.to_json(), without.report.to_json());
    assert!(with_empty.report.degraded.is_empty());
}

/// Recovery telemetry counters are exact across thread counts for a
/// fixed plan (timing histograms exempt, like every other span).
#[test]
fn recover_counters_exact_across_threads() {
    let run = |threads: usize| {
        let cfg = AnalysisConfig::builder()
            .threads(threads)
            .telemetry(true)
            .fault_plan(plan("explore:net_probe,deadline:blk_probe@1"))
            .build()
            .unwrap();
        let session = AnalysisSession::new(cfg);
        let mut session = session;
        let out = session.analyze(&request()).unwrap();
        out.telemetry
    };
    let t1 = run(1);
    let t4 = run(4);
    for name in [
        "driver.recover.quarantined",
        "driver.recover.demoted",
        "driver.recover.deadline_hits",
        "driver.recover.live_bytes_hits",
    ] {
        let sum = |snap: &pata_core::TelemetrySnapshot| -> u64 { snap.counter_sum(name) };
        assert_eq!(sum(&t1), sum(&t4), "{name}");
    }
}

#[test]
fn store_io_error_degrades_to_cold_start_not_failure() {
    let dir = tempdir("io-error");
    let store = dir.join("pata.store");
    let cfg = AnalysisConfig::builder()
        .threads(1)
        .fault_plan(plan("store.save@1"))
        .build()
        .unwrap();
    let mut session = AnalysisSession::open(cfg, &store);
    let first = session.analyze(&request()).expect("IO fault is not fatal");
    assert_well_formed(&first.report);
    assert!(first.report.degraded.is_empty());
    assert!(!store.exists(), "failed save leaves no store file");
    // The session's next analyze retries the save (hit 2: no fire).
    let second = session.analyze(&request()).unwrap();
    assert_eq!(second.report.to_json(), first.report.to_json());
    assert!(store.exists(), "retry lands");
    // A fresh session warm-starts from the recovered store. The plan spec
    // participates in the config fingerprint, so the warm session must
    // carry the same spec (fresh hit counters; a fully-clean request
    // never saves, so the spent `@1` rule stays dormant anyway).
    let cfg = AnalysisConfig::builder()
        .threads(1)
        .fault_plan(plan("store.save@1"))
        .build()
        .unwrap();
    let mut warm = AnalysisSession::open(cfg, &store);
    let replay = warm.analyze(&request()).unwrap();
    assert_eq!(replay.incremental.dirty_roots, 0);
    assert_eq!(replay.report.to_json(), first.report.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_write_is_contained_and_recovers_cold() {
    let dir = tempdir("kill-mid-write");
    let store = dir.join("pata.store");
    for site in [
        "store.save.before_tmp@1",
        "store.save.mid_tmp@1",
        "store.save.before_rename@1",
        "store.save.after_rename@1",
    ] {
        let cfg = AnalysisConfig::builder()
            .threads(1)
            .fault_plan(plan(site))
            .build()
            .unwrap();
        let mut session = AnalysisSession::open(cfg, &store);
        let err = session.analyze(&request()).expect_err("crash point fires");
        let SessionError::Internal(reason) = err else {
            panic!("expected Internal, got {err}");
        };
        assert!(reason.contains("fault injected"), "{reason}");
        // The same session answers the next request: the panic reset the
        // warm state, the interrupted save completes (hit 2: no fire).
        let retry = session.analyze(&request()).expect("session survives");
        assert_well_formed(&retry.report);
        assert!(store.exists(), "{site}: retry saved the store");
        // Cold start over whatever the "kill" left behind parses cleanly
        // and replays byte-identically.
        let cfg = AnalysisConfig::builder().threads(1).build().unwrap();
        let mut cold = AnalysisSession::open(cfg, &store);
        let replay = cold.analyze(&request()).unwrap();
        assert_eq!(replay.report.to_json(), retry.report.to_json());
        let _ = std::fs::remove_file(&store);
        let _ = std::fs::remove_file(store.with_extension("tmp"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A demoted root's degraded entry is persisted, so a warm replay
/// reproduces the report (degraded section included) byte-identically; a
/// quarantined root is *not* persisted and re-explores next request.
#[test]
fn warm_replay_reproduces_demotions_and_retries_quarantines() {
    let dir = tempdir("warm-replay");
    let store = dir.join("pata.store");
    let spec = "deadline:net_probe@1,explore:blk_probe@1";
    let cfg = AnalysisConfig::builder()
        .threads(1)
        .fault_plan(plan(spec))
        .build()
        .unwrap();
    let mut session = AnalysisSession::open(cfg, &store);
    let first = session.analyze(&request()).unwrap();
    assert_eq!(first.report.degraded.len(), 2);

    // Same session, same request: net_probe (demoted, persisted) replays
    // clean with its degraded entry; blk_probe (quarantined, dropped)
    // re-explores — the plan's @1 hits are spent, so it now succeeds.
    let second = session.analyze(&request()).unwrap();
    assert_eq!(
        second.incremental.dirty_roots, 1,
        "only the quarantined root"
    );
    let demoted: Vec<_> = second
        .report
        .degraded
        .iter()
        .map(|d| (d.root.as_str(), d.action.as_str()))
        .collect();
    assert_eq!(demoted, vec![("net_probe", "demoted")]);
    assert!(second
        .report
        .reports
        .iter()
        .any(|r| r.function == "blk_probe"));

    // A fresh session against the same store and plan spec behaves the
    // same way (fresh hit counters fire the faults again on the dirty
    // root only).
    let cfg = AnalysisConfig::builder()
        .threads(4)
        .fault_plan(plan(spec))
        .build()
        .unwrap();
    let mut warm = AnalysisSession::open(cfg, &store);
    let replay = warm.analyze(&request()).unwrap();
    assert_eq!(replay.report.to_json(), second.report.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}
