//! Integration tests for the telemetry subsystem and the open API
//! (registry, builder, versioned report) across a full pipeline run.

use pata_core::{
    AnalysisConfig, AnalysisOutcome, AnalysisSession, BugKind, CheckerRegistry, RegistryError,
    Report, REPORT_SCHEMA_VERSION,
};

/// A module with several interface functions so the parallel scheduler has
/// real work to spread, and enough state machinery to exercise every
/// counter family (alias ops, typestates, constraints, validation).
const MULTI_ROOT_SRC: &str = r#"
    struct dev { int *res; int lock; int n; };

    static int probe_npd(struct dev *d) {
        if (d->res == NULL) { log_warn("x"); }
        return *d->res;
    }

    static int probe_leak(int n) {
        int *buf = malloc(32);
        if (n > 0) {
            return n;
        }
        free(buf);
        return 0;
    }

    static int probe_clean(struct dev *d) {
        if (d->res == NULL) {
            return -1;
        }
        return *d->res;
    }

    static int probe_infeasible(struct dev *d, int x) {
        if (x == 0) {
            if (d->res == NULL) { log_warn("y"); }
        }
        if (x != 0) {
            return *d->res;
        }
        return 0;
    }

    static struct drv drivers = {
        .p1 = probe_npd,
        .p2 = probe_leak,
        .p3 = probe_clean,
        .p4 = probe_infeasible,
    };
"#;

fn analyze_with_threads(threads: usize) -> AnalysisOutcome {
    let module = pata_cc::compile_one("multi.c", MULTI_ROOT_SRC).unwrap();
    let config = AnalysisConfig::builder()
        .checkers(BugKind::ALL.to_vec())
        .threads(threads)
        .telemetry(true)
        .build()
        .unwrap();
    AnalysisSession::new(config).analyze_module(module)
}

/// Merging per-worker shards must be lossless: every monotonic counter is
/// a commutative sum, so a 4-thread run reports exactly the same counter
/// values as a single-threaded one. (Durations, gauges, and scheduler
/// metrics like `driver.work_steals` legitimately depend on the schedule
/// and are excluded.)
#[test]
fn counters_exact_across_thread_counts() {
    let seq = analyze_with_threads(1);
    let par = analyze_with_threads(4);

    let counters = |outcome: &AnalysisOutcome| {
        let mut cs: Vec<(String, Option<String>, u64)> = outcome
            .telemetry
            .counters()
            .into_iter()
            .filter(|(name, _, _)| !name.starts_with("driver."))
            .map(|(n, l, v)| (n.to_owned(), l.map(str::to_owned), v))
            .collect();
        cs.sort();
        cs
    };
    let seq_counters = counters(&seq);
    assert!(
        seq_counters
            .iter()
            .any(|(n, _, v)| n == "path.paths" && *v > 0),
        "expected real exploration work: {seq_counters:?}"
    );
    assert_eq!(seq_counters, counters(&par));

    // The verdict stream is identical too.
    let render = |o: &AnalysisOutcome| {
        o.reports
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&seq), render(&par));
}

#[test]
fn parallel_run_records_thread_gauge() {
    let par = analyze_with_threads(4);
    // 4 requested threads capped by the number of roots (4).
    assert_eq!(par.telemetry.gauge("driver.threads"), Some(4));
    let seq = analyze_with_threads(1);
    assert_eq!(seq.telemetry.gauge("driver.threads"), Some(1));
}

#[test]
fn per_root_histogram_covers_every_root() {
    let out = analyze_with_threads(2);
    for root in ["probe_npd", "probe_leak", "probe_clean", "probe_infeasible"] {
        let hist = out
            .telemetry
            .get("explore.root", Some(root))
            .unwrap_or_else(|| panic!("missing explore.root histogram for {root}"));
        match hist {
            pata_core::telemetry::Metric::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("explore.root should be a histogram: {other:?}"),
        }
    }
}

#[test]
fn disabled_telemetry_yields_empty_snapshot() {
    let module = pata_cc::compile_one("multi.c", MULTI_ROOT_SRC).unwrap();
    let config = AnalysisConfig::builder().threads(1).build().unwrap();
    let outcome = AnalysisSession::new(config).analyze_module(module);
    assert!(outcome.telemetry.is_empty());
    assert!(outcome.stats.roots > 0, "analysis itself still ran");
}

/// End-to-end schema round-trip on real pipeline output, not hand-built
/// reports.
#[test]
fn pipeline_report_round_trips_through_json() {
    let outcome = analyze_with_threads(1);
    assert!(!outcome.reports.is_empty());
    let report = Report::new(outcome.reports.clone());
    let json = report.to_json();
    let back = Report::from_json(&json).unwrap();
    assert_eq!(back.schema_version, REPORT_SCHEMA_VERSION);
    assert_eq!(back, report);
}

#[test]
fn registry_rejects_duplicate_id_at_api_boundary() {
    let mut registry = CheckerRegistry::with_builtins();
    let err = registry
        .register(Box::new(pata_core::BuiltinChecker(
            BugKind::NullPointerDeref,
        )))
        .unwrap_err();
    assert_eq!(
        err,
        RegistryError::DuplicateId("null-pointer-dereference".to_owned())
    );
    // The failed registration must not have corrupted the registry.
    assert_eq!(registry.ids().len(), 7);
}
