//! IR-level API tests: drive the analyzer on modules built directly with
//! [`pata_ir::FunctionBuilder`] — the integration path for tools that
//! produce PIR from their own front-ends (e.g. an LLVM-bitcode importer).

use pata_core::{AnalysisConfig, AnalysisSession, BugKind};
use pata_ir::{CmpOp, ConstVal, FunctionBuilder, Module, Operand, Type};

fn analyze(module: Module) -> pata_core::AnalysisOutcome {
    AnalysisSession::new(AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::all_checkers()
    })
    .analyze_module(module)
}

/// Hand-builds the paper's Fig. 7 `foo`/`bar` pair with a null dereference:
///
/// ```text
/// bar(p) { r = &p->s; t = *r; a = *t; }          // deref of t
/// foo(p) { r = &p->s; t = *r; if (!t) bar(p); }  // t NULL on that path
/// ```
#[test]
fn fig7_hand_built_ir() {
    let mut m = Module::new();
    let file = m.add_file("fig7.c");
    let s_field = m.interner.intern("s");

    // bar
    let mut b = FunctionBuilder::new(&mut m, "bar", file);
    let p_bar = b.param("p", Type::ptr(Type::Int));
    let r = b.temp(Type::ptr(Type::ptr(Type::Int)));
    let t = b.temp(Type::ptr(Type::Int));
    let a = b.temp(Type::Int);
    b.gep(r, p_bar, s_field, 10);
    b.load(t, r, 11);
    b.load(a, t, 12);
    b.ret(None, 13);
    let bar = b.finish();

    // foo
    let mut b = FunctionBuilder::new(&mut m, "foo", file);
    let p = b.param("p", Type::ptr(Type::Int));
    let r = b.temp(Type::ptr(Type::ptr(Type::Int)));
    let t = b.temp(Type::ptr(Type::Int));
    let cond = b.temp(Type::Bool);
    b.gep(r, p, s_field, 2);
    b.load(t, r, 3);
    b.cmp(
        cond,
        CmpOp::Eq,
        Operand::Var(t),
        Operand::Const(ConstVal::Null),
        4,
    );
    let then_bb = b.new_block();
    let else_bb = b.new_block();
    b.branch(cond, then_bb, else_bb, 4);
    b.switch_to(then_bb);
    b.call(None, pata_ir::Callee::Direct(bar), vec![Operand::Var(p)], 5);
    b.ret(None, 6);
    b.switch_to(else_bb);
    b.ret(None, 8);
    b.finish();

    assert!(pata_ir::verify_module(&m).is_ok());
    let out = analyze(m);
    let npd: Vec<_> = out
        .reports
        .iter()
        .filter(|r| r.kind == BugKind::NullPointerDeref)
        .collect();
    assert_eq!(npd.len(), 1, "{:?}", out.reports);
    assert_eq!(npd[0].function, "bar");
    assert_eq!(npd[0].site_line, 12, "the `a = *t` load in bar");
    assert_eq!(npd[0].origin_line, 4, "the `if (!t)` branch in foo");
}

/// A leak built straight from IR: malloc, a conditional early return, a
/// free on the fall-through.
#[test]
fn leak_hand_built_ir() {
    let mut m = Module::new();
    let file = m.add_file("leak.c");
    let mut b = FunctionBuilder::new(&mut m, "grab", file);
    let n = b.param("n", Type::Int);
    let p = b.local("p", Type::ptr(Type::Int));
    b.malloc(p, 2);
    let cond = b.temp(Type::Bool);
    b.cmp(
        cond,
        CmpOp::Lt,
        Operand::Var(n),
        Operand::Const(ConstVal::Int(0)),
        3,
    );
    let early = b.new_block();
    let rest = b.new_block();
    b.branch(cond, early, rest, 3);
    b.switch_to(early);
    b.ret(Some(Operand::Const(ConstVal::Int(-1))), 4);
    b.switch_to(rest);
    b.free(p, 6);
    b.ret(Some(Operand::Const(ConstVal::Int(0))), 7);
    b.finish();

    let out = analyze(m);
    let ml: Vec<_> = out
        .reports
        .iter()
        .filter(|r| r.kind == BugKind::MemoryLeak)
        .collect();
    assert_eq!(ml.len(), 1, "{:?}", out.reports);
    assert_eq!(ml[0].site_line, 4);
}

/// State sharing across an IR-level store/load roundtrip through a field.
#[test]
fn store_load_alias_roundtrip_ir() {
    let mut m = Module::new();
    let file = m.add_file("rt.c");
    let f = m.interner.intern("slot");
    let mut b = FunctionBuilder::new(&mut m, "rt", file);
    let d = b.param("d", Type::ptr(Type::Int));
    let null_ptr = b.local("np", Type::ptr(Type::Int));
    let gep1 = b.temp(Type::ptr(Type::ptr(Type::Int)));
    let gep2 = b.temp(Type::ptr(Type::ptr(Type::Int)));
    let loaded = b.temp(Type::ptr(Type::Int));
    let sink = b.temp(Type::Int);
    // np = NULL; d->slot = np; loaded = d->slot; sink = *loaded;
    b.assign_const(null_ptr, ConstVal::Null, 2);
    b.gep(gep1, d, f, 3);
    b.store(gep1, null_ptr, 3);
    b.gep(gep2, d, f, 4);
    b.load(loaded, gep2, 4);
    b.load(sink, loaded, 5);
    b.ret(None, 6);
    b.finish();

    let out = analyze(m);
    assert!(
        out.reports
            .iter()
            .any(|r| r.kind == BugKind::NullPointerDeref && r.site_line == 5),
        "NULL must survive the store/load roundtrip: {:?}",
        out.reports
    );
}

/// Budgets bound hand-built pathological CFGs (2^20 paths).
#[test]
fn exponential_cfg_is_bounded() {
    let mut m = Module::new();
    let file = m.add_file("exp.c");
    let mut b = FunctionBuilder::new(&mut m, "wide", file);
    let x = b.param("x", Type::Int);
    // 20 sequential diamonds.
    for i in 0..20u32 {
        let c = b.temp(Type::Bool);
        b.cmp(
            c,
            CmpOp::Gt,
            Operand::Var(x),
            Operand::Const(ConstVal::Int(i as i64)),
            i + 1,
        );
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(c, t, e, i + 1);
        b.switch_to(t);
        b.jump(j, i + 1);
        b.switch_to(e);
        b.jump(j, i + 1);
        b.switch_to(j);
    }
    b.ret(None, 30);
    b.finish();

    let config = AnalysisConfig {
        threads: 1,
        budget: pata_core::PathBudget {
            max_paths: 100,
            ..Default::default()
        },
        ..AnalysisConfig::default()
    };
    let out = AnalysisSession::new(config).analyze_module(m);
    assert!(
        out.stats.paths_explored <= 101,
        "budget must bound exploration"
    );
    assert_eq!(out.stats.budget_exhausted_roots, 1);
}
