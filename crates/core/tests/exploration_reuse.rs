//! Integration tests for the stage-1 exploration-reuse layer: determinism
//! across cache configurations and thread counts (including fork-based
//! intra-root parallelism), and the interaction between the loop budget and
//! the subsumption table.

use pata_core::{AnalysisConfig, AnalysisOutcome, AnalysisSession, BugKind, Report};

/// Driver-style code with reconvergent diamonds (subsumption fodder), a
/// helper called with identical arguments from identical states (callee-memo
/// fodder), and real bugs on some paths so verdict equality is meaningful.
const REUSE_SRC: &str = r#"
    struct dev { int flags; int mode; int irq; int *res; };

    static int clamp(int n) {
        if (n > 4) { n = 4; }
        if (n < 0) { n = 0; }
        return n;
    }

    static int tune(struct dev *d) {
        int rate = 0;
        int win = 0;
        int depth = 0;
        if (d->flags > 0) { rate = 100; } else { rate = 10; }
        if (d->mode > 1) { win = 8; } else { win = 1; }
        if (d->irq > 0) { depth = clamp(2); } else { depth = clamp(2); }
        if (d->flags > 2) { rate = rate + win; } else { rate = rate - win; }
        if (d->res == NULL) { log_warn("tune"); }
        return *d->res + rate + depth;
    }

    static int probe(struct dev *d) {
        int *buf = malloc(64);
        int a = 0;
        if (d->mode > 0) { a = clamp(3); } else { a = clamp(3); }
        if (a > 0) {
            return a;
        }
        free(buf);
        return 0;
    }

    static struct ops dev_ops = { .tune = tune, .probe = probe };
"#;

fn module() -> pata_ir::Module {
    pata_cc::compile_one("reuse.c", REUSE_SRC).unwrap()
}

/// The default checker set (NPD, UVA, ML). Checkers that track integer
/// value facts from branches (AIU, DBZ) make sibling diamond arms
/// *genuinely* divergent states — the fingerprint correctly refuses to
/// subsume them — so the hit-count assertions below use the defaults and
/// [`all_checkers_stay_equivalent`] covers the full set separately.
fn config(caches: bool, threads: usize, fork_depth: usize) -> AnalysisConfig {
    AnalysisConfig::builder()
        .threads(threads)
        .telemetry(true)
        .exploration_cache(caches)
        .callee_memo(caches)
        .fork_depth(fork_depth)
        .build()
        .unwrap()
}

fn run(caches: bool, threads: usize, fork_depth: usize) -> AnalysisOutcome {
    AnalysisSession::new(config(caches, threads, fork_depth)).analyze_module(module())
}

fn report_json(o: &AnalysisOutcome) -> String {
    Report::new(o.reports.clone())
        .with_budget_notes(o.budget_notes.clone())
        .to_json()
}

/// The caches must be invisible in every observable output: the versioned
/// report document and the exploration volume (replay accounts for every
/// path and instruction the live run would have executed).
#[test]
fn caches_are_observationally_equivalent() {
    let off = run(false, 1, 0);
    let on = run(true, 1, 0);

    assert_eq!(report_json(&on), report_json(&off));
    assert_eq!(on.stats.paths_explored, off.stats.paths_explored);
    assert_eq!(on.stats.insts_processed, off.stats.insts_processed);

    // And they must actually do something on this module.
    assert_eq!(off.stats.insts_replayed, 0);
    assert!(
        on.stats.exploration_cache_hits > 0,
        "expected subsumption hits: {:?}",
        on.stats
    );
    assert!(
        on.stats.callee_memo_hits > 0,
        "expected callee-memo hits: {:?}",
        on.stats
    );
    assert!(on.stats.live_steps() < off.stats.live_steps());
}

/// Fork helpers only warm shared tables; verdicts come from the owners.
/// A single heavy root with spare workers forces helper forks, and the
/// report must stay bit-identical to the unforked single-threaded run.
#[test]
fn forked_exploration_matches_sequential_report() {
    let base = run(false, 1, 0);
    let forked = run(true, 4, 2);
    assert_eq!(report_json(&forked), report_json(&base));

    let seq = run(true, 1, 2); // fork depth set but no spare workers
    assert_eq!(report_json(&seq), report_json(&base));
}

/// Telemetry counter equality across cache configurations: everything
/// except the `driver.*` family (scheduler metrics and the exploration
/// hit/replay counters themselves) is a pure function of the explored
/// program, so replay must reproduce it exactly.
#[test]
fn counters_exact_across_cache_configurations() {
    let counters = |o: &AnalysisOutcome| {
        let mut cs: Vec<(String, Option<String>, u64)> = o
            .telemetry
            .counters()
            .into_iter()
            .filter(|(name, _, _)| !name.starts_with("driver."))
            .map(|(n, l, v)| (n.to_owned(), l.map(str::to_owned), v))
            .collect();
        cs.sort();
        cs
    };
    let off = run(false, 1, 0);
    let on = run(true, 1, 0);
    assert!(
        counters(&off)
            .iter()
            .any(|(n, _, v)| n == "path.paths" && *v > 0),
        "expected real exploration work"
    );
    assert_eq!(counters(&on), counters(&off));

    // Forked runs keep the same owner-side counters too: helpers tally
    // into neither stats nor telemetry (only `driver.explore.*` reflects
    // the racy shared-table traffic, and it is excluded above).
    let forked = run(true, 4, 2);
    assert_eq!(counters(&forked), counters(&off));
}

/// With every built-in checker enabled the value-tracking ones (AIU, DBZ)
/// shrink the reuse opportunities, but whatever the caches still replay
/// must remain observationally invisible.
#[test]
fn all_checkers_stay_equivalent() {
    let mk = |caches: bool| {
        let config = AnalysisConfig::builder()
            .checkers(BugKind::ALL.to_vec())
            .threads(1)
            .exploration_cache(caches)
            .callee_memo(caches)
            .build()
            .unwrap();
        AnalysisSession::new(config).analyze_module(module())
    };
    let off = mk(false);
    let on = mk(true);
    assert_eq!(report_json(&on), report_json(&off));
    assert_eq!(on.stats.paths_explored, off.stats.paths_explored);
    assert_eq!(on.stats.insts_processed, off.stats.insts_processed);
}

/// The fork representation (copy-on-write undo journal vs literal clone,
/// the `cow_state` knob) must be invisible in every observable output,
/// whatever the cache configuration or thread count.
#[test]
fn cow_state_is_observationally_equivalent() {
    let mk = |cow: bool, caches: bool, threads: usize| {
        let config = AnalysisConfig::builder()
            .threads(threads)
            .cow_state(cow)
            .exploration_cache(caches)
            .callee_memo(caches)
            .build()
            .unwrap();
        AnalysisSession::new(config).analyze_module(module())
    };
    let base = mk(true, false, 1);
    for cow in [true, false] {
        for caches in [true, false] {
            for threads in [1usize, 2, 4] {
                let o = mk(cow, caches, threads);
                assert_eq!(
                    report_json(&o),
                    report_json(&base),
                    "cow {cow}, caches {caches}, threads {threads}"
                );
                assert_eq!(o.stats.paths_explored, base.stats.paths_explored);
                assert_eq!(o.stats.insts_processed, base.stats.insts_processed);
            }
        }
    }
}

/// A loop body re-enters its header block with a *different* fingerprint
/// each iteration (the visit count of a cyclic block is part of the key),
/// so subsumption never short-circuits the loop cut: with caches on, a
/// tight loop budget truncates paths at exactly the same place.
#[test]
fn loop_budget_interacts_soundly_with_subsumption() {
    const LOOP_SRC: &str = r#"
        struct dev { int n; int *res; };

        static int drain(struct dev *d) {
            int total = 0;
            int i;
            for (i = 0; i < d->n; i++) {
                if (d->res == NULL) { log_warn("drain"); }
                total += *d->res;
            }
            return total;
        }

        static struct ops drain_ops = { .drain = drain };
    "#;
    let module = pata_cc::compile_one("loop.c", LOOP_SRC).unwrap();
    for iterations in [1usize, 2, 3] {
        let mk = |caches: bool| {
            let config = AnalysisConfig::builder()
                .threads(1)
                .loop_iterations(iterations)
                .exploration_cache(caches)
                .callee_memo(caches)
                .build()
                .unwrap();
            AnalysisSession::new(config).analyze_module(module.clone())
        };
        let off = mk(false);
        let on = mk(true);
        assert_eq!(
            report_json(&on),
            report_json(&off),
            "iterations {iterations}"
        );
        assert_eq!(on.stats.paths_explored, off.stats.paths_explored);
        assert_eq!(on.stats.insts_processed, off.stats.insts_processed);
    }
}

/// A memo hit consumes exactly the budget of the live exploration it
/// replaces, and a recording that would cross a budget line triggers the
/// deterministic cache-free re-run — so even truncated verdicts match.
#[test]
fn budget_exhaustion_reruns_cache_free() {
    let mk = |caches: bool, max_insts: usize| {
        let config = AnalysisConfig::builder()
            .threads(1)
            .max_insts(max_insts)
            .exploration_cache(caches)
            .callee_memo(caches)
            .build()
            .unwrap();
        AnalysisSession::new(config).analyze_module(module())
    };
    // Budgets chosen to land mid-exploration: some roots exhaust, some
    // complete. Every configuration must still agree on the report.
    for max_insts in [50usize, 200, 1000] {
        let off = mk(false, max_insts);
        let on = mk(true, max_insts);
        assert_eq!(report_json(&on), report_json(&off), "max_insts {max_insts}");
        if !off.budget_notes.is_empty() {
            // The re-run path marks its notes as cache-free verdicts.
            assert!(
                on.budget_notes.iter().all(|n| n.caches_disabled),
                "exhausted roots must re-run cache-free: {:?}",
                on.budget_notes
            );
        }
    }
}
