//! Fork-cost tests for the copy-on-write path state (ISSUE 8): forking a
//! branch must cost O(changed), not O(live state).
//!
//! The corpus generator below builds roots whose live state at the single
//! branch point grows with `k` (k heap objects, k placed pointers), so a
//! representation that copies the live state pays more per fork as `k`
//! grows. The copy-on-write journal must instead pay a fixed-size mark:
//! `driver.explore.fork.bytes_copied / forks` stays exactly flat in `k`,
//! while the clone-based baseline (`cow_state(false)`) grows.
//!
//! Independently, both representations must be observationally equivalent:
//! byte-identical report documents across cow on/off and threads 1/2/4.

use pata_core::{AnalysisConfig, AnalysisSession, Report};

/// One interface root with `k` live heap allocations before a single
/// branch: the deeper the state, the more a clone-based fork must copy.
fn deep_src(k: usize) -> String {
    let mut s = String::from("int deep_probe(int *p, int n) {\n");
    for i in 0..k {
        s.push_str(&format!("    int *m{i} = malloc(8);\n"));
    }
    s.push_str("    int acc = 0;\n");
    s.push_str("    if (n > 0) { acc = 1; } else { acc = 2; }\n");
    for i in 0..k {
        s.push_str(&format!("    free(m{i});\n"));
    }
    s.push_str("    return acc;\n}\n");
    s
}

fn config(cow: bool, threads: usize, telemetry: bool) -> AnalysisConfig {
    AnalysisConfig::builder()
        .threads(threads)
        .telemetry(telemetry)
        .exploration_cache(false)
        .callee_memo(false)
        .cow_state(cow)
        .build()
        .unwrap()
}

/// Runs stage 1+2 on `src` and returns the run's fork telemetry:
/// `(forks, bytes_copied)`.
fn fork_counters(src: &str, cow: bool) -> (u64, u64) {
    let module = pata_cc::compile_one("deep.c", src).unwrap();
    let session = AnalysisSession::new(config(cow, 1, true));
    let _ = session.analyze_module(module);
    let snap = session.telemetry().snapshot();
    (
        snap.counter_sum("driver.explore.fork.forks"),
        snap.counter_sum("driver.explore.fork.bytes_copied"),
    )
}

/// The acceptance criterion: `bytes_copied` per fork is flat as path depth
/// grows under copy-on-write, and grows under clone-based forking.
#[test]
fn fork_cost_is_flat_in_live_state_depth() {
    let mut cow_cost = Vec::new();
    let mut clone_cost = Vec::new();
    for k in [4usize, 16, 64] {
        let src = deep_src(k);
        let (forks, copied) = fork_counters(&src, true);
        assert!(forks > 0, "the branch must fork (k = {k})");
        cow_cost.push(copied / forks);

        let (clone_forks, clone_copied) = fork_counters(&src, false);
        assert_eq!(clone_forks, forks, "fork count is representation-free");
        clone_cost.push(clone_copied / clone_forks);
    }
    assert!(
        cow_cost.windows(2).all(|w| w[0] == w[1]),
        "cow fork cost must be O(changed) — flat across state depth, got {cow_cost:?}"
    );
    assert!(
        clone_cost.windows(2).all(|w| w[0] < w[1]),
        "clone fork cost must grow with live state, got {clone_cost:?}"
    );
    assert!(
        cow_cost[0] < clone_cost[0],
        "a cow fork ({} bytes) must be cheaper than the shallowest clone ({} bytes)",
        cow_cost[0],
        clone_cost[0]
    );
}

/// Byte-identical report documents across the fork representation and
/// every tested thread count, on a corpus with enough roots to schedule.
#[test]
fn reports_identical_across_cow_and_threads() {
    let mut src = String::new();
    for r in 0..6 {
        let mut f = format!("int probe_{r}(int *p, int n) {{\n");
        f.push_str("    int *buf = malloc(16);\n");
        f.push_str(&format!(
            "    if (n > {r}) {{ if (p == NULL) {{ log_warn(\"probe\"); }} return *p; }}\n"
        ));
        f.push_str("    free(buf);\n    return 0;\n}\n");
        src.push_str(&f);
    }
    let module = pata_cc::compile_one("many.c", &src).unwrap();

    let report = |cow: bool, threads: usize| {
        let outcome =
            AnalysisSession::new(config(cow, threads, false)).analyze_module(module.clone());
        Report::new(outcome.reports)
            .with_budget_notes(outcome.budget_notes)
            .to_json()
    };
    let base = report(true, 1);
    assert!(
        base.contains("null-pointer-dereference"),
        "a non-empty report document is expected: {base}"
    );
    for cow in [true, false] {
        for threads in [1usize, 2, 4] {
            assert_eq!(
                report(cow, threads),
                base,
                "cow {cow}, threads {threads} must match the sequential cow run"
            );
        }
    }
}
