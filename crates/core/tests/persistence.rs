//! End-to-end tests for the on-disk analysis store: warm restarts replay
//! cached roots byte-identically, and every corruption or version skew
//! falls back to a clean cold start — never an error, never a wrong
//! report.

use pata_core::{
    AnalysisConfig, AnalysisRequest, AnalysisSession, SessionOutcome, STORE_SCHEMA_VERSION,
};
use std::path::PathBuf;

const CORPUS: &[(&str, &str)] = &[
    (
        "drivers/net.c",
        r#"
        struct dev { int *res; int len; };
        int net_probe(struct dev *d) {
            if (d->res == NULL) { }
            return *d->res;
        }
        "#,
    ),
    (
        "drivers/block.c",
        r#"
        int blk_probe(int n) {
            int *m = malloc(n);
            if (m == NULL) { return -1; }
            if (n < 0) { return -2; }
            free(m);
            return 0;
        }
        "#,
    ),
    (
        "drivers/char.c",
        r#"
        int chr_helper(int *p) {
            if (p == NULL) { return 0; }
            return *p;
        }
        int chr_probe(int *p) {
            int x = chr_helper(p);
            return x + *p;
        }
        "#,
    ),
];

fn tempdir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pata-persist-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn request(files: &[(&str, &str)]) -> AnalysisRequest {
    let mut r = AnalysisRequest::new();
    for (name, text) in files {
        r = r.file(*name, *text);
    }
    r
}

fn config(threads: usize) -> AnalysisConfig {
    AnalysisConfig {
        threads,
        ..AnalysisConfig::default()
    }
}

fn run(store: &std::path::Path, threads: usize, files: &[(&str, &str)]) -> SessionOutcome {
    AnalysisSession::open(config(threads), store)
        .analyze(&request(files))
        .unwrap()
}

#[test]
fn warm_restart_replays_byte_identical_report() {
    let dir = tempdir("roundtrip");
    let store = dir.join("store.json");
    let cold = run(&store, 1, CORPUS);
    assert!(!cold.incremental.warm_start);
    assert_eq!(cold.incremental.clean_roots, 0);
    assert!(store.exists(), "store written after analyze");

    // A brand-new process (session) loads the store and replays everything.
    let warm = run(&store, 1, CORPUS);
    assert!(warm.incremental.warm_start);
    assert_eq!(warm.incremental.dirty_roots, 0);
    assert_eq!(warm.incremental.clean_roots, warm.incremental.roots);
    assert_eq!(warm.report.to_json(), cold.report.to_json());
    // Replayed roots do no exploration work.
    assert_eq!(warm.stats.paths_explored, cold.stats.paths_explored);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_is_byte_stable_across_identical_runs() {
    let dir = tempdir("stable");
    let store = dir.join("store.json");
    run(&store, 1, CORPUS);
    let first = std::fs::read_to_string(&store).unwrap();
    run(&store, 1, CORPUS);
    let second = std::fs::read_to_string(&store).unwrap();
    assert_eq!(first, second, "idempotent runs rewrite identical bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_function_dirties_only_its_root() {
    let dir = tempdir("incremental");
    let store = dir.join("store.json");
    run(&store, 1, CORPUS);

    // Append a new file with one new root; existing files untouched, so
    // their functions keep their fingerprints.
    let mut grown: Vec<(&str, &str)> = CORPUS.to_vec();
    grown.push((
        "drivers/tty.c",
        "int tty_probe(int *q) { if (q == NULL) { } return *q; }",
    ));
    let out = run(&store, 1, &grown);
    assert!(out.incremental.warm_start);
    assert_eq!(out.incremental.roots, 4);
    assert_eq!(out.incremental.dirty_roots, 1);
    assert_eq!(out.incremental.clean_roots, 3);
    assert_eq!(out.incremental.changed_functions, 1);

    // The incremental report equals a from-scratch analysis of the same
    // sources.
    let scratch_dir = tempdir("incremental-scratch");
    let scratch = run(&scratch_dir.join("store.json"), 1, &grown);
    assert_eq!(out.report.to_json(), scratch.report.to_json());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch_dir);
}

#[test]
fn corrupted_store_is_a_clean_cold_start() {
    let dir = tempdir("corrupt");
    let store = dir.join("store.json");
    let cold = run(&store, 1, CORPUS);

    for garbage in [
        "not json at all",
        "{\"schema_version\": 1", // truncated document
        "{}",                     // missing fields
        "{\"schema_version\": 1, \"roots\": \"what\"}",
    ] {
        std::fs::write(&store, garbage).unwrap();
        let out = run(&store, 1, CORPUS);
        assert!(!out.incremental.warm_start, "garbage store must be ignored");
        assert_eq!(out.report.to_json(), cold.report.to_json());
        // The bad store was replaced by a fresh valid one.
        let rewritten = std::fs::read_to_string(&store).unwrap();
        assert!(rewritten.contains("\"schema_version\""));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_store_is_a_clean_cold_start() {
    let dir = tempdir("truncate");
    let store = dir.join("store.json");
    let cold = run(&store, 1, CORPUS);
    let full = std::fs::read_to_string(&store).unwrap();
    // Cut the document at several points, including mid-escape territory.
    for frac in [1, 3, 7] {
        let cut = full.len() * frac / 8;
        std::fs::write(&store, &full[..cut]).unwrap();
        let out = run(&store, 1, CORPUS);
        assert!(!out.incremental.warm_start, "truncated at {cut} bytes");
        assert_eq!(out.report.to_json(), cold.report.to_json());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn schema_version_mismatch_invalidates_cleanly() {
    let dir = tempdir("schema");
    let store = dir.join("store.json");
    let cold = run(&store, 1, CORPUS);
    let text = std::fs::read_to_string(&store).unwrap();
    let old = format!("\"schema_version\": {STORE_SCHEMA_VERSION}");
    assert!(text.contains(&old), "store carries its schema version");
    std::fs::write(
        &store,
        text.replace(
            &old,
            &format!("\"schema_version\": {}", STORE_SCHEMA_VERSION + 1),
        ),
    )
    .unwrap();
    let out = run(&store, 1, CORPUS);
    assert!(!out.incremental.warm_start, "future schema must not load");
    assert_eq!(out.report.to_json(), cold.report.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_change_invalidates_the_store() {
    let dir = tempdir("config");
    let store = dir.join("store.json");
    run(&store, 1, CORPUS);
    // A verdict-neutral change (thread count) replays the store fine.
    let out = run(&store, 4, CORPUS);
    assert!(out.incremental.warm_start);
    // A verdict-relevant config change (different checker set) must not
    // replay it.
    let changed = AnalysisConfig {
        threads: 1,
        checkers: vec![pata_core::BugKind::MemoryLeak],
        ..AnalysisConfig::default()
    };
    let out = AnalysisSession::open(changed, &store)
        .analyze(&request(CORPUS))
        .unwrap();
    assert!(!out.incremental.warm_start);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reports_identical_across_thread_counts_cold_warm_and_served() {
    let base_dir = tempdir("threads-base");
    let baseline = run(&base_dir.join("store.json"), 1, CORPUS);
    let expected = baseline.report.to_json();

    for threads in [1, 2, 4] {
        let dir = tempdir(&format!("threads-{threads}"));
        let store = dir.join("store.json");
        let cold = run(&store, threads, CORPUS);
        assert_eq!(cold.report.to_json(), expected, "cold, {threads} threads");
        let warm = run(&store, threads, CORPUS);
        assert_eq!(warm.report.to_json(), expected, "warm, {threads} threads");
        assert_eq!(warm.incremental.dirty_roots, 0);

        // Served through the NDJSON loop (what the daemon runs), same
        // store, the embedded report must be the same document.
        let mut session = AnalysisSession::open(config(threads), &store);
        let files = CORPUS
            .iter()
            .map(|(name, text)| {
                format!(
                    "{{\"name\": {}, \"text\": {}}}",
                    pata_core::json::quote(name),
                    pata_core::json::quote(text)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let input = format!("{{\"id\": 1, \"op\": \"analyze\", \"files\": [{files}]}}\n");
        let mut out = Vec::new();
        pata_core::serve_loop(&mut session, input.as_bytes(), &mut out).unwrap();
        let line = String::from_utf8(out).unwrap();
        let doc = pata_core::json::JsonValue::parse(line.trim()).unwrap();
        // The daemon embeds the canonical report document verbatim, so the
        // exact bytes of the cold report must appear in the response.
        let report_start = line.find("\"report\": ").unwrap() + "\"report\": ".len();
        assert!(
            line[report_start..].starts_with(&expected),
            "served, {threads} threads"
        );
        assert_eq!(
            doc.get("serve")
                .and_then(|s| s.get("dirty_roots"))
                .and_then(|v| v.as_u64()),
            Some(0),
            "served warm, {threads} threads"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn validation_verdicts_survive_restart() {
    let dir = tempdir("verdicts");
    let store = dir.join("store.json");
    run(&store, 1, CORPUS);
    let text = std::fs::read_to_string(&store).unwrap();
    assert!(
        text.contains("\"validation\""),
        "store persists the validation cache"
    );
    // A warm session that re-validates (dirty root sharing constraints)
    // starts with the imported verdicts.
    let session = AnalysisSession::open(config(1), &store);
    assert!(
        !session.validation_cache().export().is_empty(),
        "verdicts imported on open"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
