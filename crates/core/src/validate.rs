//! Alias-aware path validation (paper §3.3).
//!
//! Stage 1 reports possible bugs without checking code-path feasibility;
//! stage 2 translates each candidate's path to SMT constraints and asks the
//! solver whether their conjunction is satisfiable. Because stage 1 already
//! mapped every alias set to a single symbol (Def. 4/5), the constraint
//! systems are small: copy equalities and implicit field equalities
//! (Fig. 9b) never appear — they hold by symbol identity (Fig. 9c).
//!
//! An `Unsat` verdict means the path cannot execute, so the candidate is a
//! false bug and is dropped. `Sat`/`Unknown` keep the candidate (the paper
//! keeps candidates its Z3 encoding cannot refute, §5.2).

use crate::report::PossibleBug;
use pata_smt::{SatResult, Solver, SolverStats};

/// The verdict for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// The path (plus bug condition) is satisfiable — a real report.
    Feasible,
    /// The conjunction is unsatisfiable — a false bug, dropped.
    Infeasible,
}

/// Validates one candidate bug's code path.
///
/// # Example
///
/// ```
/// use pata_core::validate::{validate_constraints, Feasibility};
/// use pata_smt::{Constraint, CmpOp, Term, SymId};
///
/// // x == 0 together with x != 0 — infeasible path.
/// let cs = vec![
///     Constraint::new(CmpOp::Eq, Term::sym(SymId(0)), Term::int(0)),
///     Constraint::new(CmpOp::Ne, Term::sym(SymId(0)), Term::int(0)),
/// ];
/// let (verdict, _) = validate_constraints(&cs, &[]);
/// assert_eq!(verdict, Feasibility::Infeasible);
/// ```
pub fn validate_constraints(
    path: &[pata_smt::Constraint],
    extra: &[pata_smt::Constraint],
) -> (Feasibility, SolverStats) {
    let mut solver = Solver::new();
    // Reserve ids at least as high as any symbol mentioned.
    let mut max_sym = 0u32;
    for c in path.iter().chain(extra) {
        max_sym = max_sym.max(max_sym_in(&c.lhs)).max(max_sym_in(&c.rhs));
    }
    solver.reserve_symbols(max_sym + 1);
    for c in path.iter().chain(extra) {
        solver.assert_constraint(c.clone());
    }
    let (result, stats) = solver.check_with_stats();
    let verdict = match result {
        SatResult::Unsat => Feasibility::Infeasible,
        SatResult::Sat | SatResult::Unknown => Feasibility::Feasible,
    };
    (verdict, stats)
}

fn max_sym_in(t: &pata_smt::Term) -> u32 {
    use pata_smt::Term::*;
    match t {
        Const(_) => 0,
        Sym(s) => s.0,
        Add(a, b) | Sub(a, b) | Mul(a, b) | Opaque(_, a, b) => max_sym_in(a).max(max_sym_in(b)),
        Neg(a) => max_sym_in(a),
    }
}

/// Validates a candidate bug.
pub fn validate(bug: &PossibleBug) -> Feasibility {
    validate_constraints(&bug.constraints, &bug.extra).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pata_smt::{CmpOp, Constraint, SymId, Term};

    #[test]
    fn feasible_when_unconstrained() {
        let (v, _) = validate_constraints(&[], &[]);
        assert_eq!(v, Feasibility::Feasible);
    }

    #[test]
    fn fig9_alias_merged_symbols_refute() {
        // R(p->f)==0 (line 3) and R(t->f)!=0 (line 6) where p->f and t->f
        // share one symbol because p and t alias — paper Fig. 9c.
        let pf = SymId(0);
        let cs = vec![
            Constraint::new(CmpOp::Eq, Term::sym(pf), Term::int(0)),
            Constraint::new(CmpOp::Ne, Term::sym(pf), Term::int(0)),
        ];
        assert_eq!(validate_constraints(&cs, &[]).0, Feasibility::Infeasible);
    }

    #[test]
    fn fig9_unaware_symbols_do_not_refute() {
        // The alias-unaware encoding gives p->f and t->f distinct symbols
        // with no connecting constraint — the false bug survives (PATA-NA's
        // higher false-positive rate, Table 6).
        let pf = SymId(0);
        let tf = SymId(1);
        let cs = vec![
            Constraint::new(CmpOp::Eq, Term::sym(pf), Term::int(0)),
            Constraint::new(CmpOp::Ne, Term::sym(tf), Term::int(0)),
        ];
        assert_eq!(validate_constraints(&cs, &[]).0, Feasibility::Feasible);
    }

    #[test]
    fn extra_bug_condition_participates() {
        // Path says d > 0; bug condition says d == 0 — infeasible.
        let d = SymId(3);
        let path = vec![Constraint::new(CmpOp::Gt, Term::sym(d), Term::int(0))];
        let extra = vec![Constraint::new(CmpOp::Eq, Term::sym(d), Term::int(0))];
        assert_eq!(validate_constraints(&path, &extra).0, Feasibility::Infeasible);
    }
}
