//! Alias-aware path validation (paper §3.3).
//!
//! Stage 1 reports possible bugs without checking code-path feasibility;
//! stage 2 translates each candidate's path to SMT constraints and asks the
//! solver whether their conjunction is satisfiable. Because stage 1 already
//! mapped every alias set to a single symbol (Def. 4/5), the constraint
//! systems are small: copy equalities and implicit field equalities
//! (Fig. 9b) never appear — they hold by symbol identity (Fig. 9c).
//!
//! An `Unsat` verdict means the path cannot execute, so the candidate is a
//! false bug and is dropped. `Sat`/`Unknown` keep the candidate (the paper
//! keeps candidates its Z3 encoding cannot refute, §5.2).
//!
//! ## Validation performance
//!
//! Two layers make stage 2 cheap (see DESIGN.md "Performance
//! architecture"):
//!
//! * [`PathValidator`] keeps one incremental solver alive across
//!   candidates. Path snapshots of the same bug share long constraint
//!   prefixes (they diverge only at late branches), so the validator diffs
//!   each conjunction against the previously asserted one, pops back to the
//!   common prefix and re-asserts only the suffix.
//! * [`ValidationCache`] memoizes whole conjunctions by a canonical
//!   (order- and symbol-rename-independent) key, so identical constraint
//!   systems — across candidates, roots, or whole runs — are solved once.
//!   α-renaming and reordering preserve satisfiability, so a shared key is
//!   always sound; imperfect canonicalization only costs extra misses.

use crate::report::PossibleBug;
use crate::telemetry::TelemetrySink;
use pata_smt::{Constraint, SatResult, Solver, SolverStats, Term};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// The verdict for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// The path (plus bug condition) is satisfiable — a real report.
    Feasible,
    /// The conjunction is unsatisfiable — a false bug, dropped.
    Infeasible,
}

fn to_feasibility(result: SatResult) -> Feasibility {
    match result {
        SatResult::Unsat => Feasibility::Infeasible,
        SatResult::Sat | SatResult::Unknown => Feasibility::Feasible,
    }
}

/// Validates one candidate bug's code path with a fresh solver.
///
/// # Example
///
/// ```
/// use pata_core::validate::{validate_constraints, Feasibility};
/// use pata_smt::{Constraint, CmpOp, Term, SymId};
///
/// // x == 0 together with x != 0 — infeasible path.
/// let cs = vec![
///     Constraint::new(CmpOp::Eq, Term::sym(SymId(0)), Term::int(0)),
///     Constraint::new(CmpOp::Ne, Term::sym(SymId(0)), Term::int(0)),
/// ];
/// let (verdict, _) = validate_constraints(&cs, &[]);
/// assert_eq!(verdict, Feasibility::Infeasible);
/// ```
pub fn validate_constraints(
    path: &[Constraint],
    extra: &[Constraint],
) -> (Feasibility, SolverStats) {
    let mut solver = Solver::new();
    // Reserve ids at least as high as any symbol mentioned.
    let mut max_sym = 0u32;
    for c in path.iter().chain(extra) {
        max_sym = max_sym.max(max_sym_in(&c.lhs)).max(max_sym_in(&c.rhs));
    }
    solver.reserve_symbols(max_sym + 1);
    for c in path.iter().chain(extra) {
        solver.assert_constraint(c.clone());
    }
    let (result, stats) = solver.check_with_stats();
    (to_feasibility(result), stats)
}

fn max_sym_in(t: &Term) -> u32 {
    use pata_smt::Term::*;
    match t {
        Const(_) => 0,
        Sym(s) => s.0,
        Add(a, b) | Sub(a, b) | Mul(a, b) | Opaque(_, a, b) => max_sym_in(a).max(max_sym_in(b)),
        Neg(a) => max_sym_in(a),
    }
}

/// Validates a candidate bug with a fresh solver.
pub fn validate(bug: &PossibleBug) -> Feasibility {
    validate_constraints(&bug.constraints, &bug.extra).0
}

// --------------------------------------------------------------------
// Canonical conjunction keys
// --------------------------------------------------------------------

/// Builds a canonical byte key for a conjunction: constraints are sorted by
/// a symbol-independent structural skeleton, then symbols are renamed in
/// first-occurrence order and the renamed set is serialized. Conjunctions
/// that differ only by constraint order or by a symbol renaming map to the
/// same key.
///
/// The encoding is a compact byte stream (operator tags plus little-endian
/// constants) rather than text — key construction runs on every validated
/// conjunction, so it has to be cheaper than solving the (tiny) system.
fn canonical_key(conj: &[&Constraint]) -> Vec<u8> {
    // Pass 1: symbol-masked skeletons into one scratch buffer; `ranges`
    // remembers each constraint's slice.
    let mut skel = Vec::with_capacity(conj.len() * 24);
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(conj.len());
    for c in conj {
        let start = skel.len();
        encode_constraint(c, None, &mut skel);
        ranges.push((start, skel.len()));
    }
    // Skeleton ties keep input order: deterministic, and ambiguity only
    // costs cache misses, never wrong hits (the key holds the full set).
    let mut order: Vec<u32> = (0..conj.len() as u32).collect();
    order.sort_by(|&a, &b| {
        let (sa, ea) = ranges[a as usize];
        let (sb, eb) = ranges[b as usize];
        skel[sa..ea].cmp(&skel[sb..eb]).then(a.cmp(&b))
    });
    // Pass 2: re-encode in canonical order with symbols renamed in
    // first-occurrence order (index into `rename` = canonical id).
    let mut rename: Vec<pata_smt::SymId> = Vec::new();
    let mut key = Vec::with_capacity(skel.len() + 4 * conj.len());
    for i in order {
        encode_constraint(conj[i as usize], Some(&mut rename), &mut key);
        key.push(b';');
    }
    key
}

fn encode_constraint(
    c: &Constraint,
    mut rename: Option<&mut Vec<pata_smt::SymId>>,
    out: &mut Vec<u8>,
) {
    out.push(c.op as u8);
    encode_term(&c.lhs, rename.as_deref_mut(), out);
    encode_term(&c.rhs, rename, out);
}

// Term tags; CmpOp occupies 0..=5 but streams never interleave ambiguously
// (every position's interpretation is fixed by the grammar).
const TAG_CONST: u8 = 0x10;
const TAG_SYM: u8 = 0x11;
const TAG_SYM_MASKED: u8 = 0x12;
const TAG_ADD: u8 = 0x13;
const TAG_SUB: u8 = 0x14;
const TAG_MUL: u8 = 0x15;
const TAG_NEG: u8 = 0x16;
const TAG_OPAQUE: u8 = 0x17;

fn encode_term(t: &Term, mut rename: Option<&mut Vec<pata_smt::SymId>>, out: &mut Vec<u8>) {
    match t {
        Term::Const(v) => {
            out.push(TAG_CONST);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Term::Sym(s) => match rename {
            Some(map) => {
                // Linear scan: conjunctions mention a handful of symbols.
                let id = map.iter().position(|m| m == s).unwrap_or_else(|| {
                    map.push(*s);
                    map.len() - 1
                }) as u32;
                out.push(TAG_SYM);
                out.extend_from_slice(&id.to_le_bytes());
            }
            None => out.push(TAG_SYM_MASKED),
        },
        Term::Add(a, b) => {
            out.push(TAG_ADD);
            encode_term(a, rename.as_deref_mut(), out);
            encode_term(b, rename, out);
        }
        Term::Sub(a, b) => {
            out.push(TAG_SUB);
            encode_term(a, rename.as_deref_mut(), out);
            encode_term(b, rename, out);
        }
        Term::Mul(a, b) => {
            out.push(TAG_MUL);
            encode_term(a, rename.as_deref_mut(), out);
            encode_term(b, rename, out);
        }
        Term::Neg(a) => {
            out.push(TAG_NEG);
            encode_term(a, rename, out);
        }
        Term::Opaque(op, a, b) => {
            out.push(TAG_OPAQUE);
            out.push(*op as u8);
            encode_term(a, rename.as_deref_mut(), out);
            encode_term(b, rename, out);
        }
    }
}

// --------------------------------------------------------------------
// The shared validation cache
// --------------------------------------------------------------------

const SHARD_COUNT: usize = 16;

/// A concurrent map from canonical conjunction keys to solver verdicts,
/// shared across candidates, analysis runs and threads (it is `Sync`; PATA
/// keeps one per analyzer so repeated runs — e.g. benchmark iterations or
/// re-analysis after small edits — reuse earlier verdicts).
#[derive(Debug, Default)]
pub struct ValidationCache {
    shards: [Mutex<HashMap<Vec<u8>, SatResult>>; SHARD_COUNT],
}

impl ValidationCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: &[u8]) -> &Mutex<HashMap<Vec<u8>, SatResult>> {
        // FNV-1a over the key picks the shard.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h as usize) % SHARD_COUNT]
    }

    /// Looks up a canonical key.
    fn get(&self, key: &[u8]) -> Option<SatResult> {
        let shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.get(key).copied()
    }

    /// Records a verdict.
    fn insert(&self, key: Vec<u8>, result: SatResult) {
        let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        shard.insert(key, result);
    }

    /// Number of cached conjunctions.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached verdict.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Snapshots every cached verdict, sorted by key — the deterministic
    /// order the persistence layer serializes (identical caches produce
    /// identical store bytes).
    pub fn export(&self) -> Vec<(Vec<u8>, SatResult)> {
        let mut entries: Vec<(Vec<u8>, SatResult)> = Vec::with_capacity(self.len());
        for s in &self.shards {
            let shard = s.lock().unwrap_or_else(|e| e.into_inner());
            entries.extend(shard.iter().map(|(k, v)| (k.clone(), *v)));
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        entries
    }

    /// Bulk-loads verdicts (from a persisted store). Existing entries for
    /// the same key are overwritten; a cached verdict is always safe to
    /// adopt because keys canonically identify the conjunction they answer.
    pub fn import(&self, entries: Vec<(Vec<u8>, SatResult)>) {
        for (key, verdict) in entries {
            self.insert(key, verdict);
        }
    }
}

/// Counters for one validator's lifetime, merged into
/// [`crate::AnalysisStats`] by the filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationStats {
    /// Conjunctions answered from the cache without solving.
    pub cache_hits: u64,
    /// Conjunctions solved and inserted into the cache.
    pub cache_misses: u64,
    /// Prefix constraints reused across consecutive solves via solver
    /// scopes (instead of being re-asserted from scratch).
    pub scope_reuse: u64,
    /// Conjunctions validated (with or without a cache).
    pub validated: u64,
}

// --------------------------------------------------------------------
// The incremental path validator
// --------------------------------------------------------------------

/// External symbols stay below this id; opaque symbols interned by the
/// solver are allocated above it so scope rollback can never collide them
/// with alias-set symbols. Candidates mentioning larger ids (never produced
/// by the explorer) fall back to fresh solving.
const OPAQUE_SYM_BASE: u32 = 1 << 16;

/// Validates a stream of candidate conjunctions with one incremental
/// solver, reusing shared constraint prefixes between consecutive
/// candidates and (optionally) a [`ValidationCache`].
///
/// # Example
///
/// ```
/// use pata_core::validate::{Feasibility, PathValidator, ValidationCache};
/// use pata_smt::{CmpOp, Constraint, SymId, Term};
///
/// let cache = ValidationCache::new();
/// let mut v = PathValidator::new(Some(&cache));
/// let guard = Constraint::new(CmpOp::Eq, Term::sym(SymId(0)), Term::int(0));
/// let deref = Constraint::new(CmpOp::Ne, Term::sym(SymId(0)), Term::int(0));
/// assert_eq!(v.feasibility(&[guard.clone()], &[]), Feasibility::Feasible);
/// assert_eq!(v.feasibility(&[guard, deref], &[]), Feasibility::Infeasible);
/// assert_eq!(v.stats().scope_reuse, 1); // the shared guard was not re-asserted
/// ```
#[derive(Debug)]
pub struct PathValidator<'a> {
    solver: Solver,
    /// The conjunction currently asserted, one solver scope per constraint.
    asserted: Vec<Constraint>,
    cache: Option<&'a ValidationCache>,
    stats: ValidationStats,
    /// Telemetry gate, checked once per record site (a plain bool: the
    /// validator is single-threaded, the atomic gate lives on
    /// [`crate::telemetry::Telemetry`]).
    tel_enabled: bool,
    sink: TelemetrySink,
    solve_calls: u64,
    pushes: u64,
    pops: u64,
    max_scope_depth: usize,
}

impl<'a> PathValidator<'a> {
    /// Creates a validator, optionally backed by a shared cache.
    pub fn new(cache: Option<&'a ValidationCache>) -> Self {
        Self::with_telemetry(cache, false)
    }

    /// Creates a validator that records solver telemetry when `telemetry`
    /// is true (drain it with [`PathValidator::take_telemetry`]).
    pub fn with_telemetry(cache: Option<&'a ValidationCache>, telemetry: bool) -> Self {
        let mut solver = Solver::new();
        solver.reserve_symbols(OPAQUE_SYM_BASE);
        PathValidator {
            solver,
            asserted: Vec::new(),
            cache,
            stats: ValidationStats::default(),
            tel_enabled: telemetry,
            sink: TelemetrySink::new(),
            solve_calls: 0,
            pushes: 0,
            pops: 0,
            max_scope_depth: 0,
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ValidationStats {
        self.stats
    }

    /// Drains the recorded telemetry: `validate.*` counters, the
    /// `validate.solve` histogram, and the `smt.*` solver-traffic metrics.
    /// Empty when telemetry was disabled.
    pub fn take_telemetry(&mut self) -> TelemetrySink {
        if !self.tel_enabled {
            return TelemetrySink::new();
        }
        let mut sink = std::mem::take(&mut self.sink);
        sink.add("validate.conjunctions", self.stats.validated);
        sink.add("validate.cache_hit", self.stats.cache_hits);
        sink.add("validate.cache_miss", self.stats.cache_misses);
        sink.add("validate.scope_reuse", self.stats.scope_reuse);
        sink.add("smt.solve_calls", self.solve_calls);
        sink.add("smt.push", self.pushes);
        sink.add("smt.pop", self.pops);
        sink.add("smt.propagations", self.solver.propagations());
        sink.gauge_max("smt.scope_depth.max", self.max_scope_depth as i64);
        sink
    }

    /// Validates one candidate bug.
    pub fn validate(&mut self, bug: &PossibleBug) -> Feasibility {
        self.feasibility(&bug.constraints, &bug.extra)
    }

    /// Decides feasibility of `path ∧ extra`.
    pub fn feasibility(&mut self, path: &[Constraint], extra: &[Constraint]) -> Feasibility {
        self.stats.validated += 1;
        let conj: Vec<&Constraint> = path.iter().chain(extra).collect();
        if let Some(cache) = self.cache {
            let key = canonical_key(&conj);
            if let Some(result) = cache.get(&key) {
                self.stats.cache_hits += 1;
                return to_feasibility(result);
            }
            let result = self.solve(&conj);
            self.stats.cache_misses += 1;
            cache.insert(key, result);
            to_feasibility(result)
        } else {
            to_feasibility(self.solve(&conj))
        }
    }

    fn solve(&mut self, conj: &[&Constraint]) -> SatResult {
        let started = if self.tel_enabled {
            Some(Instant::now())
        } else {
            None
        };
        let result = self.solve_inner(conj);
        if let Some(started) = started {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.sink.record_ns("validate.solve", None, ns);
            self.solve_calls += 1;
            self.max_scope_depth = self.max_scope_depth.max(self.solver.scope_depth());
        }
        result
    }

    fn solve_inner(&mut self, conj: &[&Constraint]) -> SatResult {
        let mut max_sym = 0u32;
        for c in conj {
            max_sym = max_sym.max(max_sym_in(&c.lhs)).max(max_sym_in(&c.rhs));
        }
        if max_sym >= OPAQUE_SYM_BASE {
            // Ids this large would collide with interned opaque symbols;
            // solve from scratch (correct, just not incremental).
            let mut solver = Solver::new();
            solver.reserve_symbols(max_sym + 1);
            for c in conj {
                solver.assert_constraint((*c).clone());
            }
            return solver.check();
        }

        // Pop back to the longest prefix shared with the previous
        // conjunction, then assert only the suffix — one scope each, so the
        // next candidate can rewind to any prefix boundary.
        let shared = self
            .asserted
            .iter()
            .zip(conj)
            .take_while(|(have, want)| *have == **want)
            .count();
        if self.tel_enabled {
            self.pops += self.asserted.len().saturating_sub(shared) as u64;
            self.pushes += (conj.len() - shared) as u64;
        }
        while self.asserted.len() > shared {
            self.solver.pop();
            self.asserted.pop();
        }
        self.stats.scope_reuse += shared as u64;
        for c in &conj[shared..] {
            self.solver.push();
            self.solver.assert_constraint((*c).clone());
            self.asserted.push((*c).clone());
        }
        self.solver.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pata_smt::{CmpOp, Constraint, SymId, Term};

    fn eq0(s: u32) -> Constraint {
        Constraint::new(CmpOp::Eq, Term::sym(SymId(s)), Term::int(0))
    }

    fn ne0(s: u32) -> Constraint {
        Constraint::new(CmpOp::Ne, Term::sym(SymId(s)), Term::int(0))
    }

    #[test]
    fn feasible_when_unconstrained() {
        let (v, _) = validate_constraints(&[], &[]);
        assert_eq!(v, Feasibility::Feasible);
    }

    #[test]
    fn fig9_alias_merged_symbols_refute() {
        // R(p->f)==0 (line 3) and R(t->f)!=0 (line 6) where p->f and t->f
        // share one symbol because p and t alias — paper Fig. 9c.
        let cs = vec![eq0(0), ne0(0)];
        assert_eq!(validate_constraints(&cs, &[]).0, Feasibility::Infeasible);
    }

    #[test]
    fn fig9_unaware_symbols_do_not_refute() {
        // The alias-unaware encoding gives p->f and t->f distinct symbols
        // with no connecting constraint — the false bug survives (PATA-NA's
        // higher false-positive rate, Table 6).
        let cs = vec![eq0(0), ne0(1)];
        assert_eq!(validate_constraints(&cs, &[]).0, Feasibility::Feasible);
    }

    #[test]
    fn extra_bug_condition_participates() {
        // Path says d > 0; bug condition says d == 0 — infeasible.
        let d = SymId(3);
        let path = vec![Constraint::new(CmpOp::Gt, Term::sym(d), Term::int(0))];
        let extra = vec![Constraint::new(CmpOp::Eq, Term::sym(d), Term::int(0))];
        assert_eq!(
            validate_constraints(&path, &extra).0,
            Feasibility::Infeasible
        );
    }

    #[test]
    fn incremental_matches_fresh_on_mixed_stream() {
        // Candidates sharing prefixes of different lengths, mixing verdicts.
        let streams: Vec<Vec<Constraint>> = vec![
            vec![eq0(0), eq0(1)],
            vec![eq0(0), eq0(1), ne0(0)],         // infeasible suffix
            vec![eq0(0), eq0(1), ne0(2)],         // feasible again
            vec![ne0(0)],                         // no shared prefix
            vec![eq0(0), eq0(1), ne0(2), ne0(0)], // deep infeasible
            vec![eq0(0), eq0(1), ne0(2)],         // repeat
        ];
        let mut incremental = PathValidator::new(None);
        for cs in &streams {
            let fresh = validate_constraints(cs, &[]).0;
            assert_eq!(incremental.feasibility(cs, &[]), fresh, "{cs:?}");
        }
        assert!(incremental.stats().scope_reuse > 0);
    }

    #[test]
    fn cache_hits_skip_solving_and_agree() {
        let cache = ValidationCache::new();
        let mut v = PathValidator::new(Some(&cache));
        let cs = vec![eq0(0), ne0(0)];
        assert_eq!(v.feasibility(&cs, &[]), Feasibility::Infeasible);
        assert_eq!(v.feasibility(&cs, &[]), Feasibility::Infeasible);
        assert_eq!(v.stats().cache_hits, 1);
        assert_eq!(v.stats().cache_misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_key_ignores_order_and_renaming() {
        let a = vec![eq0(4), ne0(4)];
        let b = vec![ne0(9), eq0(9)]; // reordered + renamed
        let ka = canonical_key(&a.iter().collect::<Vec<_>>());
        let kb = canonical_key(&b.iter().collect::<Vec<_>>());
        assert_eq!(ka, kb);

        let cache = ValidationCache::new();
        let mut v = PathValidator::new(Some(&cache));
        assert_eq!(v.feasibility(&a, &[]), Feasibility::Infeasible);
        assert_eq!(v.feasibility(&b, &[]), Feasibility::Infeasible);
        assert_eq!(v.stats().cache_hits, 1, "α-equivalent conjunction must hit");
    }

    #[test]
    fn cache_key_distinguishes_different_structure() {
        let a = vec![eq0(0), ne0(0)]; // same symbol: unsat
        let b = vec![eq0(0), ne0(1)]; // different symbols: sat
        let ka = canonical_key(&a.iter().collect::<Vec<_>>());
        let kb = canonical_key(&b.iter().collect::<Vec<_>>());
        assert_ne!(ka, kb);
    }

    #[test]
    fn huge_symbol_ids_fall_back_to_fresh_solving() {
        let big = OPAQUE_SYM_BASE + 7;
        let cs = vec![eq0(big), ne0(big)];
        let mut v = PathValidator::new(None);
        assert_eq!(v.feasibility(&cs, &[]), Feasibility::Infeasible);
        let sat = vec![eq0(big), ne0(big + 1)];
        assert_eq!(v.feasibility(&sat, &[]), Feasibility::Feasible);
    }

    #[test]
    fn telemetry_reflects_solver_traffic() {
        let cache = ValidationCache::new();
        let mut v = PathValidator::with_telemetry(Some(&cache), true);
        v.feasibility(&[eq0(0), eq0(1)], &[]);
        v.feasibility(&[eq0(0), eq0(1), ne0(0)], &[]);
        v.feasibility(&[eq0(0), eq0(1)], &[]); // repeat: cache hit, no solve
        let sink = v.take_telemetry();
        let tel = crate::telemetry::Telemetry::new(true);
        tel.merge(sink);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("validate.conjunctions"), 3);
        assert_eq!(snap.counter("validate.cache_hit"), 1);
        assert_eq!(snap.counter("validate.cache_miss"), 2);
        assert_eq!(snap.counter("smt.solve_calls"), 2);
        assert_eq!(snap.counter("smt.push"), 3);
        assert!(snap.gauge("smt.scope_depth.max") >= Some(2));
        assert_eq!(snap.histogram("validate.solve").unwrap().count, 2);
    }

    #[test]
    fn telemetry_disabled_records_nothing() {
        let mut v = PathValidator::new(None);
        v.feasibility(&[eq0(0), ne0(0)], &[]);
        assert!(v.take_telemetry().is_empty());
    }

    #[test]
    fn cache_is_shared_across_validators() {
        let cache = ValidationCache::new();
        {
            let mut v = PathValidator::new(Some(&cache));
            v.feasibility(&[eq0(0), ne0(0)], &[]);
        }
        let mut v2 = PathValidator::new(Some(&cache));
        assert_eq!(
            v2.feasibility(&[eq0(0), ne0(0)], &[]),
            Feasibility::Infeasible
        );
        assert_eq!(v2.stats().cache_hits, 1);
    }
}
