//! Analysis configuration: checker selection, path budgets, and the
//! alias-awareness switch used for the paper's sensitivity study (Table 6).

use crate::checkers::BugKind;

/// How alias relationships are computed during typestate analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AliasMode {
    /// The paper's path-based alias analysis (§3.1): one state and one SMT
    /// symbol per alias set.
    #[default]
    PathBased,
    /// *PATA-NA* (Table 6): no alias relationships — one state and one SMT
    /// symbol per variable, memory operations are opaque. Used to measure
    /// how much alias awareness contributes.
    None,
}

/// Caps that keep path enumeration tractable on large modules.
///
/// The paper mitigates path explosion by combining path information at
/// function returns (§4 P2) and by unrolling loops/recursion once (§3.1);
/// these budgets additionally bound the total work per analysis root, the
/// way any production static analyzer must.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathBudget {
    /// Maximum completed paths explored per root function.
    pub max_paths: usize,
    /// Maximum instructions processed per root function.
    pub max_insts: usize,
    /// Maximum inlining (call) depth.
    pub max_call_depth: usize,
    /// Maximum instructions on one path (guards runaway inlining).
    pub max_path_len: usize,
    /// How many times a loop body may execute along one path. The paper
    /// unrolls once (§3.1); §7 lists richer loop handling as future work —
    /// raising this explores k-iteration paths at a path-count cost.
    pub loop_iterations: usize,
}

impl Default for PathBudget {
    fn default() -> Self {
        PathBudget {
            max_paths: 4096,
            max_insts: 400_000,
            max_call_depth: 24,
            max_path_len: 16_384,
            loop_iterations: 1,
        }
    }
}

/// Full analysis configuration.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Which checkers run. Defaults to the paper's three main bug types
    /// (NPD, UVA, ML — §5.1).
    pub checkers: Vec<BugKind>,
    /// Alias-awareness mode (Table 6 sensitivity switch).
    pub alias_mode: AliasMode,
    /// Per-root exploration budgets.
    pub budget: PathBudget,
    /// Whether stage 2 validates path feasibility with the SMT solver and
    /// drops unsatisfiable candidates (§3.3). Disabling reproduces a
    /// "no-path-validation" ablation.
    pub validate_paths: bool,
    /// Whether stage 2 memoizes conjunction verdicts in the analyzer's
    /// shared [`crate::validate::ValidationCache`] (canonicalized keys, so
    /// α-equivalent constraint systems are solved once across candidates
    /// and runs). Verdict-neutral: only timing and the hit/miss counters
    /// change. Disable with `--no-validation-cache` to measure the benefit.
    pub validation_cache: bool,
    /// Number of worker threads for root-level parallelism (0 = all cores).
    pub threads: usize,
    /// Resolve indirect calls whose target is pinned by the alias graph
    /// (a `FuncAddr` stored along the current path). The paper's PATA does
    /// not handle function-pointer calls and names this as future work
    /// (§7); off by default to match the paper.
    pub resolve_fptrs: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            checkers: vec![
                BugKind::NullPointerDeref,
                BugKind::UninitVarAccess,
                BugKind::MemoryLeak,
            ],
            alias_mode: AliasMode::PathBased,
            budget: PathBudget::default(),
            validate_paths: true,
            validation_cache: true,
            threads: 0,
            resolve_fptrs: false,
        }
    }
}

impl AnalysisConfig {
    /// A configuration running every built-in checker (Tables 5 + 7).
    pub fn all_checkers() -> Self {
        AnalysisConfig {
            checkers: BugKind::ALL.to_vec(),
            ..AnalysisConfig::default()
        }
    }

    /// The PATA-NA configuration used in the sensitivity study (Table 6).
    pub fn without_alias() -> Self {
        AnalysisConfig {
            alias_mode: AliasMode::None,
            ..AnalysisConfig::default()
        }
    }

    /// Builder-style checker selection.
    pub fn with_checkers(mut self, checkers: Vec<BugKind>) -> Self {
        self.checkers = checkers;
        self
    }

    /// Builder-style budget override.
    pub fn with_budget(mut self, budget: PathBudget) -> Self {
        self.budget = budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_runs_three_paper_checkers() {
        let c = AnalysisConfig::default();
        assert_eq!(c.checkers.len(), 3);
        assert_eq!(c.alias_mode, AliasMode::PathBased);
        assert!(c.validate_paths);
    }

    #[test]
    fn all_checkers_covers_seven() {
        assert_eq!(AnalysisConfig::all_checkers().checkers.len(), 7);
    }

    #[test]
    fn without_alias_is_na_mode() {
        assert_eq!(AnalysisConfig::without_alias().alias_mode, AliasMode::None);
    }
}
