//! Analysis configuration: checker selection, path budgets, and the
//! alias-awareness switch used for the paper's sensitivity study (Table 6).
//!
//! Construct configurations through [`AnalysisConfig::builder`], which
//! validates the result ([`AnalysisConfigBuilder::build`] rejects empty
//! checker sets and zero budgets). The former `with_*` methods survive as
//! deprecated shims.

use crate::checkers::BugKind;
use crate::faultinject::FaultPlan;
use std::fmt;
use std::sync::Arc;

/// How alias relationships are computed during typestate analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AliasMode {
    /// The paper's path-based alias analysis (§3.1): one state and one SMT
    /// symbol per alias set.
    #[default]
    PathBased,
    /// *PATA-NA* (Table 6): no alias relationships — one state and one SMT
    /// symbol per variable, memory operations are opaque. Used to measure
    /// how much alias awareness contributes.
    None,
}

/// Caps that keep path enumeration tractable on large modules.
///
/// The paper mitigates path explosion by combining path information at
/// function returns (§4 P2) and by unrolling loops/recursion once (§3.1);
/// these budgets additionally bound the total work per analysis root, the
/// way any production static analyzer must.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathBudget {
    /// Maximum completed paths explored per root function.
    pub max_paths: usize,
    /// Maximum instructions processed per root function.
    pub max_insts: usize,
    /// Maximum inlining (call) depth.
    pub max_call_depth: usize,
    /// Maximum instructions on one path (guards runaway inlining).
    pub max_path_len: usize,
    /// How many times a loop body may execute along one path. The paper
    /// unrolls once (§3.1); §7 lists richer loop handling as future work —
    /// raising this explores k-iteration paths at a path-count cost.
    pub loop_iterations: usize,
}

impl Default for PathBudget {
    fn default() -> Self {
        PathBudget {
            max_paths: 4096,
            max_insts: 400_000,
            max_call_depth: 24,
            max_path_len: 16_384,
            loop_iterations: 1,
        }
    }
}

/// Full analysis configuration.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Which checkers run. Defaults to the paper's three main bug types
    /// (NPD, UVA, ML — §5.1).
    pub checkers: Vec<BugKind>,
    /// Alias-awareness mode (Table 6 sensitivity switch).
    pub alias_mode: AliasMode,
    /// Per-root exploration budgets.
    pub budget: PathBudget,
    /// Whether stage 2 validates path feasibility with the SMT solver and
    /// drops unsatisfiable candidates (§3.3). Disabling reproduces a
    /// "no-path-validation" ablation.
    pub validate_paths: bool,
    /// Whether stage 2 memoizes conjunction verdicts in the analyzer's
    /// shared [`crate::validate::ValidationCache`] (canonicalized keys, so
    /// α-equivalent constraint systems are solved once across candidates
    /// and runs). Verdict-neutral: only timing and the hit/miss counters
    /// change. Disable with `--no-validation-cache` to measure the benefit.
    pub validation_cache: bool,
    /// Number of worker threads for root-level parallelism (0 = all cores).
    pub threads: usize,
    /// Resolve indirect calls whose target is pinned by the alias graph
    /// (a `FuncAddr` stored along the current path). The paper's PATA does
    /// not handle function-pointer calls and names this as future work
    /// (§7); off by default to match the paper.
    pub resolve_fptrs: bool,
    /// Whether the [`crate::telemetry`] subsystem records counters, span
    /// timers and histograms during the run. Off by default: disabled
    /// telemetry costs one branch per record site (`--stats-json` /
    /// `--profile` turn it on in the CLI).
    pub telemetry: bool,
    /// Stage-1 subsumption cache: skip re-exploring a block whose exact
    /// entry state (fingerprint) was already fully explored from that
    /// block, replaying the recorded effects instead. Verdict-neutral by
    /// construction; disable with `--no-exploration-cache` to measure.
    pub exploration_cache: bool,
    /// Stage-1 callee-summary cache: replay a recorded effect journal for
    /// an inlined call whose callee and entry state match a previous
    /// inlining, instead of re-exploring the callee body. Verdict-neutral;
    /// disable with `--no-callee-memo` to measure.
    pub callee_memo: bool,
    /// How many shallow branch decisions idle workers may pre-force to
    /// explore a heavy root's later DFS regions speculatively, warming the
    /// shared exploration caches (`0` disables intra-root forking). Only
    /// takes effect when there are more worker threads than roots.
    pub fork_depth: usize,
    /// Copy-on-write path state (DESIGN.md "Copy-on-write path state"):
    /// branch forks take a fixed-size mark and sibling arms restore by
    /// undo-journal rollback, costing O(changed). Disabling falls back to
    /// the paper's literal per-successor COPY (deep-cloning the alias
    /// graph, typestate table, path-local maps, frames and constraint
    /// trace at every fork) — observationally identical, and useful as a
    /// differential oracle and as the baseline for the
    /// `driver.explore.fork.*` cost telemetry. Disable with
    /// `--no-cow-state` to measure.
    pub cow_state: bool,
    /// Per-root wall-clock deadline in milliseconds, checked at branch fork
    /// points. `0` disables the deadline. A root that exceeds it is demoted
    /// to a bounded cache-free re-run and, failing that, quarantined into
    /// the report's `degraded` section (DESIGN.md "Fault containment").
    /// Wall-clock trips are inherently environment-dependent; the
    /// byte-identity contract covers injected `deadline` faults.
    pub root_deadline_ms: u64,
    /// Per-root ceiling on the live path-state size estimate in bytes
    /// (the PR 5 `driver.explore.fork.live_bytes` gauge), checked at branch
    /// fork points. `0` disables the ceiling. Exceeding it follows the same
    /// demote-then-quarantine ladder as the deadline. The estimate depends
    /// on the copy-on-write mode, so real trips are config-dependent; the
    /// byte-identity contract covers injected `live_bytes` faults.
    pub max_live_bytes: u64,
    /// Deterministic fault-injection plan for tests and benches
    /// ([`crate::faultinject`]). `None` — the default and the production
    /// path — injects nothing and costs one pointer check per site.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            checkers: vec![
                BugKind::NullPointerDeref,
                BugKind::UninitVarAccess,
                BugKind::MemoryLeak,
            ],
            alias_mode: AliasMode::PathBased,
            budget: PathBudget::default(),
            validate_paths: true,
            validation_cache: true,
            threads: 0,
            resolve_fptrs: false,
            telemetry: false,
            exploration_cache: true,
            callee_memo: true,
            fork_depth: 2,
            cow_state: true,
            root_deadline_ms: 0,
            max_live_bytes: 0,
            fault_plan: None,
        }
    }
}

impl AnalysisConfig {
    /// A configuration running every built-in checker (Tables 5 + 7).
    pub fn all_checkers() -> Self {
        AnalysisConfig {
            checkers: BugKind::ALL.to_vec(),
            ..AnalysisConfig::default()
        }
    }

    /// The PATA-NA configuration used in the sensitivity study (Table 6).
    pub fn without_alias() -> Self {
        AnalysisConfig {
            alias_mode: AliasMode::None,
            ..AnalysisConfig::default()
        }
    }

    /// Starts a validating [`AnalysisConfigBuilder`] from the defaults.
    pub fn builder() -> AnalysisConfigBuilder {
        AnalysisConfigBuilder {
            config: AnalysisConfig::default(),
        }
    }

    /// Builder-style checker selection.
    #[deprecated(since = "0.2.0", note = "use `AnalysisConfig::builder().checkers(..)`")]
    pub fn with_checkers(mut self, checkers: Vec<BugKind>) -> Self {
        self.checkers = checkers;
        self
    }

    /// Builder-style budget override.
    #[deprecated(since = "0.2.0", note = "use `AnalysisConfig::builder().budget(..)`")]
    pub fn with_budget(mut self, budget: PathBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Why [`AnalysisConfigBuilder::build`] refused a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// No checkers selected — the analysis would trivially report nothing.
    EmptyCheckerSet,
    /// The same checker appears twice; its typestate namespace would be
    /// updated twice per event.
    DuplicateChecker(BugKind),
    /// A [`PathBudget`] field is zero; names the offending field.
    ZeroBudget(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyCheckerSet => f.write_str("checker set is empty"),
            ConfigError::DuplicateChecker(kind) => {
                write!(f, "checker `{kind}` selected more than once")
            }
            ConfigError::ZeroBudget(field) => {
                write!(f, "path budget field `{field}` must be non-zero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`AnalysisConfig`].
///
/// ```
/// use pata_core::{AnalysisConfig, BugKind};
///
/// let config = AnalysisConfig::builder()
///     .checkers(BugKind::ALL.to_vec())
///     .threads(2)
///     .telemetry(true)
///     .build()
///     .unwrap();
/// assert_eq!(config.checkers.len(), 7);
///
/// let err = AnalysisConfig::builder().checkers(vec![]).build().unwrap_err();
/// assert_eq!(err.to_string(), "checker set is empty");
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisConfigBuilder {
    config: AnalysisConfig,
}

impl AnalysisConfigBuilder {
    /// Selects the checkers to run.
    pub fn checkers(mut self, checkers: Vec<BugKind>) -> Self {
        self.config.checkers = checkers;
        self
    }

    /// Sets the alias-awareness mode (Table 6 sensitivity switch).
    pub fn alias_mode(mut self, mode: AliasMode) -> Self {
        self.config.alias_mode = mode;
        self
    }

    /// Replaces the whole path budget.
    pub fn budget(mut self, budget: PathBudget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Caps completed paths per root.
    pub fn max_paths(mut self, n: usize) -> Self {
        self.config.budget.max_paths = n;
        self
    }

    /// Caps instructions processed per root.
    pub fn max_insts(mut self, n: usize) -> Self {
        self.config.budget.max_insts = n;
        self
    }

    /// Caps the inlining (call) depth.
    pub fn max_call_depth(mut self, n: usize) -> Self {
        self.config.budget.max_call_depth = n;
        self
    }

    /// Caps instructions on one path.
    pub fn max_path_len(mut self, n: usize) -> Self {
        self.config.budget.max_path_len = n;
        self
    }

    /// Sets how many times a loop body may run along one path.
    pub fn loop_iterations(mut self, n: usize) -> Self {
        self.config.budget.loop_iterations = n;
        self
    }

    /// Enables or disables stage-2 SMT path validation.
    pub fn validate_paths(mut self, on: bool) -> Self {
        self.config.validate_paths = on;
        self
    }

    /// Enables or disables the stage-2 validation cache.
    pub fn validation_cache(mut self, on: bool) -> Self {
        self.config.validation_cache = on;
        self
    }

    /// Sets the worker-thread count (0 = all cores).
    pub fn threads(mut self, n: usize) -> Self {
        self.config.threads = n;
        self
    }

    /// Enables resolution of alias-pinned function-pointer calls.
    pub fn resolve_fptrs(mut self, on: bool) -> Self {
        self.config.resolve_fptrs = on;
        self
    }

    /// Enables telemetry recording for the run.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.config.telemetry = on;
        self
    }

    /// Enables or disables the stage-1 subsumption cache.
    pub fn exploration_cache(mut self, on: bool) -> Self {
        self.config.exploration_cache = on;
        self
    }

    /// Enables or disables the stage-1 callee-summary cache.
    pub fn callee_memo(mut self, on: bool) -> Self {
        self.config.callee_memo = on;
        self
    }

    /// Sets the speculative intra-root fork depth (0 disables forking).
    pub fn fork_depth(mut self, n: usize) -> Self {
        self.config.fork_depth = n;
        self
    }

    /// Enables or disables copy-on-write path state (off = the paper's
    /// literal clone-per-branch COPY semantics; verdict-neutral).
    pub fn cow_state(mut self, on: bool) -> Self {
        self.config.cow_state = on;
        self
    }

    /// Sets the per-root wall-clock deadline in milliseconds (0 = off).
    pub fn root_deadline_ms(mut self, ms: u64) -> Self {
        self.config.root_deadline_ms = ms;
        self
    }

    /// Sets the per-root live-bytes ceiling (0 = off).
    pub fn max_live_bytes(mut self, bytes: u64) -> Self {
        self.config.max_live_bytes = bytes;
        self
    }

    /// Installs a deterministic fault-injection plan for the run.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.config.fault_plan = Some(plan);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<AnalysisConfig, ConfigError> {
        let c = &self.config;
        if c.checkers.is_empty() {
            return Err(ConfigError::EmptyCheckerSet);
        }
        let mut seen = std::collections::HashSet::new();
        for kind in &c.checkers {
            if !seen.insert(*kind) {
                return Err(ConfigError::DuplicateChecker(*kind));
            }
        }
        for (field, value) in [
            ("max_paths", c.budget.max_paths),
            ("max_insts", c.budget.max_insts),
            ("max_call_depth", c.budget.max_call_depth),
            ("max_path_len", c.budget.max_path_len),
            ("loop_iterations", c.budget.loop_iterations),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroBudget(field));
            }
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_runs_three_paper_checkers() {
        let c = AnalysisConfig::default();
        assert_eq!(c.checkers.len(), 3);
        assert_eq!(c.alias_mode, AliasMode::PathBased);
        assert!(c.validate_paths);
    }

    #[test]
    fn all_checkers_covers_seven() {
        assert_eq!(AnalysisConfig::all_checkers().checkers.len(), 7);
    }

    #[test]
    fn without_alias_is_na_mode() {
        assert_eq!(AnalysisConfig::without_alias().alias_mode, AliasMode::None);
    }

    #[test]
    fn builder_defaults_match_default_config() {
        let built = AnalysisConfig::builder().build().unwrap();
        let default = AnalysisConfig::default();
        assert_eq!(built.checkers, default.checkers);
        assert_eq!(built.budget, default.budget);
        assert_eq!(built.threads, default.threads);
        assert!(!built.telemetry);
    }

    #[test]
    fn builder_rejects_empty_checker_set() {
        let err = AnalysisConfig::builder()
            .checkers(vec![])
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptyCheckerSet);
    }

    #[test]
    fn builder_rejects_duplicate_checker() {
        let err = AnalysisConfig::builder()
            .checkers(vec![BugKind::MemoryLeak, BugKind::MemoryLeak])
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::DuplicateChecker(BugKind::MemoryLeak));
    }

    #[test]
    fn builder_rejects_zero_budgets() {
        let err = AnalysisConfig::builder().max_paths(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroBudget("max_paths"));
        let err = AnalysisConfig::builder()
            .loop_iterations(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroBudget("loop_iterations"));
    }

    #[test]
    fn builder_setters_apply() {
        let c = AnalysisConfig::builder()
            .alias_mode(AliasMode::None)
            .max_insts(10)
            .threads(4)
            .validate_paths(false)
            .validation_cache(false)
            .resolve_fptrs(true)
            .telemetry(true)
            .build()
            .unwrap();
        assert_eq!(c.alias_mode, AliasMode::None);
        assert_eq!(c.budget.max_insts, 10);
        assert_eq!(c.threads, 4);
        assert!(!c.validate_paths);
        assert!(!c.validation_cache);
        assert!(c.resolve_fptrs);
        assert!(c.telemetry);
    }

    #[test]
    fn builder_fault_containment_knobs_apply() {
        let plan = Arc::new(FaultPlan::parse("explore:probe_a@1").unwrap());
        let c = AnalysisConfig::builder()
            .root_deadline_ms(250)
            .max_live_bytes(1 << 20)
            .fault_plan(Arc::clone(&plan))
            .build()
            .unwrap();
        assert_eq!(c.root_deadline_ms, 250);
        assert_eq!(c.max_live_bytes, 1 << 20);
        assert_eq!(c.fault_plan.unwrap().spec(), "explore:probe_a@1");
        let d = AnalysisConfig::default();
        assert_eq!(d.root_deadline_ms, 0);
        assert_eq!(d.max_live_bytes, 0);
        assert!(d.fault_plan.is_none());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_compile() {
        let c = AnalysisConfig::default()
            .with_checkers(vec![BugKind::UseAfterFree])
            .with_budget(PathBudget::default());
        assert_eq!(c.checkers, vec![BugKind::UseAfterFree]);
    }
}
