//! Bug candidates and final reports.

use crate::checkers::BugKind;
use pata_ir::{Category, FuncId, InstId, Loc, Module};
use std::fmt;

/// A possible bug produced by stage 1 (typestate tracking without path
/// validation, §3.2). Stage 2 deduplicates and validates these.
#[derive(Debug, Clone)]
pub struct PossibleBug {
    /// Bug type.
    pub kind: BugKind,
    /// Where the offending state was established (e.g. the null check).
    pub origin_loc: Loc,
    /// Establishing instruction (dedup key component).
    pub origin_id: InstId,
    /// Where the bug manifests (e.g. the dereference).
    pub site_loc: Loc,
    /// Manifesting instruction (dedup key component).
    pub site_id: InstId,
    /// The path constraints collected up to the manifestation site
    /// (Table 3 translation with one symbol per alias set).
    pub constraints: Vec<pata_smt::Constraint>,
    /// Additional bug-condition constraints (e.g. `divisor == 0`).
    pub extra: Vec<pata_smt::Constraint>,
    /// Access paths of the offending alias set, rendered in the paper's
    /// `func:var` notation (Fig. 7) — what makes reports "readable".
    pub alias_paths: Vec<String>,
    /// The analysis root (module interface function) whose exploration
    /// found the bug.
    pub root: FuncId,
}

impl PossibleBug {
    /// The deduplication key of §4 P3: two candidates with identical
    /// problematic instructions are the same bug via different paths.
    pub fn dedup_key(&self) -> (BugKind, InstId, InstId) {
        (self.kind, self.origin_id, self.site_id)
    }
}

/// A validated, human-readable bug report (the paper's final output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugReport {
    /// Bug type.
    pub kind: BugKind,
    /// Source file of the manifestation site.
    pub file: String,
    /// Function containing the manifestation site.
    pub function: String,
    /// Line where the offending state was established.
    pub origin_line: u32,
    /// Line where the bug manifests.
    pub site_line: u32,
    /// OS part (drivers / subsystem / third-party …) for Fig. 11.
    pub category: Category,
    /// Access paths of the offending alias set (`func:var` notation).
    pub alias_paths: Vec<String>,
    /// One-line description.
    pub message: String,
}

impl BugReport {
    /// Builds a report from a validated candidate.
    pub fn from_possible(bug: &PossibleBug, module: &Module) -> Self {
        let func = module.function(bug.site_id.func);
        let file = module.file(func.file()).name.clone();
        let kind = bug.kind;
        let alias_note = if bug.alias_paths.is_empty() {
            String::new()
        } else {
            format!(" [alias set: {}]", bug.alias_paths.join(", "))
        };
        let message = format!(
            "{} in `{}`: state established at line {} triggers at line {}{}",
            kind.describe(),
            func.name(),
            bug.origin_loc.line,
            bug.site_loc.line,
            alias_note
        );
        BugReport {
            kind,
            file,
            function: func.name().to_owned(),
            origin_line: bug.origin_loc.line,
            site_line: bug.site_loc.line,
            category: func.category(),
            alias_paths: bug.alias_paths.clone(),
            message,
        }
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{} ({}) — {}",
            self.kind.as_str(),
            self.file,
            self.site_line,
            self.function,
            self.message
        )
    }
}

/// Version of the `degraded` report section. Versioned independently of
/// [`REPORT_SCHEMA_VERSION`]: the section was added as an optional envelope
/// field (no outer schema bump), so it carries its own version gate for
/// future shape changes.
pub const DEGRADED_SECTION_VERSION: u64 = 1;

/// One root the analysis could not fully complete: quarantined after a
/// panic, or demoted to a bounded re-run after tripping a resource budget
/// (DESIGN.md "Fault containment & degraded reports").
///
/// Entries are sorted by `(root, stage)` before serialization so degraded
/// reports stay byte-identical across thread counts and cache
/// configurations for the same failure set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DegradedRoot {
    /// Name of the affected root (module interface function).
    pub root: String,
    /// Pipeline stage where the fault hit: `"explore"`, `"validate"`, or
    /// `"session"`.
    pub stage: String,
    /// Why the root degraded: the panic payload for quarantines, or the
    /// tripped budget (`"deadline"` / `"live_bytes"`) for demotions.
    pub reason: String,
    /// What the pipeline did: `"quarantined"` (root skipped, its verdicts
    /// absent from this report) or `"demoted"` (verdicts come from a
    /// bounded cache-free re-run).
    pub action: String,
}

/// Version of the JSON report schema produced by [`Report::to_json`].
///
/// Bump this when a field is renamed, removed, or changes meaning; adding
/// new optional fields does not require a bump. [`Report::from_json`]
/// rejects documents with a different version rather than guessing.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Error from [`Report::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The document is not well-formed JSON.
    Json(crate::json::JsonError),
    /// The document is valid JSON but does not match the report schema
    /// (wrong version, missing field, wrong type, unknown slug).
    Schema(String),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Json(e) => write!(f, "invalid JSON: {e}"),
            ReportError::Schema(m) => write!(f, "schema mismatch: {m}"),
        }
    }
}

impl std::error::Error for ReportError {}

/// A versioned collection of bug reports — the stable machine-readable
/// output of an analysis run (`pata analyze --json`, `--out`).
///
/// The wire format is:
///
/// ```json
/// {
///   "schema_version": 1,
///   "reports": [
///     {
///       "kind": "null-pointer-dereference",
///       "file": "drv.c",
///       "function": "probe",
///       "origin_line": 10,
///       "site_line": 14,
///       "category": "drivers",
///       "alias_paths": ["probe:p", "probe:q"],
///       "message": "..."
///     }
///   ]
/// }
/// ```
///
/// `kind` uses [`BugKind::as_str`] slugs and `category` uses
/// [`Category::as_str`] labels. [`Report::from_json`] round-trips
/// [`Report::to_json`] exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The schema version the document was written with.
    pub schema_version: u64,
    /// The bug reports, in analysis order.
    pub reports: Vec<BugReport>,
    /// Roots whose exploration was budget-truncated (an *optional* envelope
    /// field: emitted only when non-empty, absent on parse means empty, no
    /// schema bump — truncation detail qualifies the verdicts but does not
    /// change their format).
    pub budget_notes: Vec<crate::stats::BudgetNote>,
    /// Roots quarantined or demoted by the fault-containment layer (an
    /// optional envelope field like `budget_notes`: emitted only when
    /// non-empty under its own [`DEGRADED_SECTION_VERSION`], absent on
    /// parse means no root degraded).
    pub degraded: Vec<DegradedRoot>,
}

impl Report {
    /// Wraps `reports` with the current [`REPORT_SCHEMA_VERSION`].
    pub fn new(reports: Vec<BugReport>) -> Self {
        Report {
            schema_version: REPORT_SCHEMA_VERSION,
            reports,
            budget_notes: Vec::new(),
            degraded: Vec::new(),
        }
    }

    /// Attaches per-root budget-exhaustion notes to the envelope.
    pub fn with_budget_notes(mut self, notes: Vec<crate::stats::BudgetNote>) -> Self {
        self.budget_notes = notes;
        self
    }

    /// Attaches degraded-root entries to the envelope, sorted by
    /// `(root, stage)` so the serialization is deterministic regardless of
    /// the order faults were observed in. Identical entries collapse to
    /// one (an unlabeled `validate` fault can hit several candidate groups
    /// of the same root and would otherwise repeat verbatim).
    pub fn with_degraded(mut self, mut degraded: Vec<DegradedRoot>) -> Self {
        degraded.sort();
        degraded.dedup();
        self.degraded = degraded;
        self
    }

    /// Serializes to the versioned JSON wire format.
    pub fn to_json(&self) -> String {
        use crate::json::quote;
        let mut out = String::new();
        out.push_str("{\"schema_version\": ");
        out.push_str(&self.schema_version.to_string());
        out.push_str(", \"reports\": [");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"kind\": ");
            out.push_str(&quote(r.kind.as_str()));
            out.push_str(", \"file\": ");
            out.push_str(&quote(&r.file));
            out.push_str(", \"function\": ");
            out.push_str(&quote(&r.function));
            out.push_str(", \"origin_line\": ");
            out.push_str(&r.origin_line.to_string());
            out.push_str(", \"site_line\": ");
            out.push_str(&r.site_line.to_string());
            out.push_str(", \"category\": ");
            out.push_str(&quote(r.category.as_str()));
            out.push_str(", \"alias_paths\": [");
            for (j, p) in r.alias_paths.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&quote(p));
            }
            out.push_str("], \"message\": ");
            out.push_str(&quote(&r.message));
            out.push('}');
        }
        out.push(']');
        if !self.budget_notes.is_empty() {
            out.push_str(", \"budget_notes\": [");
            for (i, n) in self.budget_notes.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"root\": ");
                out.push_str(&quote(&n.root));
                out.push_str(", \"reason\": ");
                out.push_str(&quote(&n.reason));
                out.push_str(", \"caches_disabled\": ");
                out.push_str(if n.caches_disabled { "true" } else { "false" });
                out.push('}');
            }
            out.push(']');
        }
        if !self.degraded.is_empty() {
            out.push_str(", \"degraded\": {\"version\": ");
            out.push_str(&DEGRADED_SECTION_VERSION.to_string());
            out.push_str(", \"roots\": [");
            for (i, d) in self.degraded.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"root\": ");
                out.push_str(&quote(&d.root));
                out.push_str(", \"stage\": ");
                out.push_str(&quote(&d.stage));
                out.push_str(", \"reason\": ");
                out.push_str(&quote(&d.reason));
                out.push_str(", \"action\": ");
                out.push_str(&quote(&d.action));
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }

    /// Parses a document produced by [`Report::to_json`]. Fails on
    /// malformed JSON, a schema-version mismatch, or missing/mistyped
    /// fields — silent best-effort decoding would defeat the version gate.
    pub fn from_json(text: &str) -> Result<Report, ReportError> {
        use crate::json::JsonValue;
        let doc = JsonValue::parse(text).map_err(ReportError::Json)?;
        let schema = |m: &str| ReportError::Schema(m.to_string());
        let version = doc
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema("missing schema_version"))?;
        if version != REPORT_SCHEMA_VERSION {
            return Err(ReportError::Schema(format!(
                "unsupported schema_version {version} (expected {REPORT_SCHEMA_VERSION})"
            )));
        }
        let items = doc
            .get("reports")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| schema("missing reports array"))?;
        let mut reports = Vec::with_capacity(items.len());
        for item in items {
            let str_field = |name: &str| {
                item.get(name)
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| ReportError::Schema(format!("missing report field `{name}`")))
            };
            let line_field = |name: &str| {
                item.get(name)
                    .and_then(JsonValue::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| ReportError::Schema(format!("missing report field `{name}`")))
            };
            let kind_slug = str_field("kind")?;
            let kind = BugKind::parse(&kind_slug)
                .ok_or_else(|| ReportError::Schema(format!("unknown bug kind `{kind_slug}`")))?;
            let cat_slug = str_field("category")?;
            let category = Category::ALL
                .into_iter()
                .find(|c| c.as_str() == cat_slug)
                .ok_or_else(|| ReportError::Schema(format!("unknown category `{cat_slug}`")))?;
            let alias_paths = item
                .get("alias_paths")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| schema("missing report field `alias_paths`"))?
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| schema("non-string alias path"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            reports.push(BugReport {
                kind,
                file: str_field("file")?,
                function: str_field("function")?,
                origin_line: line_field("origin_line")?,
                site_line: line_field("site_line")?,
                category,
                alias_paths,
                message: str_field("message")?,
            });
        }
        // Optional envelope field: absent means no root was truncated.
        let mut budget_notes = Vec::new();
        if let Some(items) = doc.get("budget_notes").and_then(JsonValue::as_array) {
            for item in items {
                let str_field = |name: &str| {
                    item.get(name)
                        .and_then(JsonValue::as_str)
                        .map(str::to_owned)
                        .ok_or_else(|| {
                            ReportError::Schema(format!("missing budget note field `{name}`"))
                        })
                };
                budget_notes.push(crate::stats::BudgetNote {
                    root: str_field("root")?,
                    reason: str_field("reason")?,
                    caches_disabled: item
                        .get("caches_disabled")
                        .and_then(JsonValue::as_bool)
                        .ok_or_else(|| schema("missing budget note field `caches_disabled`"))?,
                });
            }
        }
        // Optional envelope field: absent means no root degraded. The
        // section carries its own version gate.
        let mut degraded = Vec::new();
        if let Some(section) = doc.get("degraded") {
            let sec_version = section
                .get("version")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| schema("missing degraded section version"))?;
            if sec_version != DEGRADED_SECTION_VERSION {
                return Err(ReportError::Schema(format!(
                    "unsupported degraded section version {sec_version} \
                     (expected {DEGRADED_SECTION_VERSION})"
                )));
            }
            let roots = section
                .get("roots")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| schema("missing degraded roots array"))?;
            for item in roots {
                let str_field = |name: &str| {
                    item.get(name)
                        .and_then(JsonValue::as_str)
                        .map(str::to_owned)
                        .ok_or_else(|| {
                            ReportError::Schema(format!("missing degraded field `{name}`"))
                        })
                };
                degraded.push(DegradedRoot {
                    root: str_field("root")?,
                    stage: str_field("stage")?,
                    reason: str_field("reason")?,
                    action: str_field("action")?,
                });
            }
        }
        Ok(Report {
            schema_version: version,
            reports,
            budget_notes,
            degraded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pata_ir::BlockId;

    fn inst_id(f: usize, i: usize) -> InstId {
        InstId {
            func: FuncId::from_index(f),
            block: BlockId::from_index(0),
            inst: i,
        }
    }

    #[test]
    fn dedup_key_ignores_path() {
        let a = PossibleBug {
            kind: BugKind::NullPointerDeref,
            origin_loc: Loc::default(),
            origin_id: inst_id(0, 1),
            site_loc: Loc::default(),
            site_id: inst_id(0, 5),
            constraints: vec![],
            extra: vec![],
            alias_paths: vec![],
            root: FuncId::from_index(0),
        };
        let mut b = a.clone();
        b.constraints = vec![pata_smt::Constraint::new(
            pata_smt::CmpOp::Eq,
            pata_smt::Term::int(1),
            pata_smt::Term::int(1),
        )];
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    fn sample_report() -> BugReport {
        BugReport {
            kind: BugKind::UseAfterFree,
            file: "drv/my \"quoted\" file.c".into(),
            function: "my_probe".into(),
            origin_line: 10,
            site_line: 42,
            category: Category::Drivers,
            alias_paths: vec!["my_probe:p".into(), "helper:q->field".into()],
            message: "use after free in `my_probe`\nwith a newline".into(),
        }
    }

    #[test]
    fn report_json_round_trip() {
        let report = Report::new(vec![sample_report()]);
        let json = report.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.schema_version, REPORT_SCHEMA_VERSION);
    }

    #[test]
    fn report_empty_round_trip() {
        let report = Report::new(vec![]);
        let back = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn report_rejects_wrong_version() {
        let json = Report::new(vec![])
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        let err = Report::from_json(&json).unwrap_err();
        assert!(matches!(err, ReportError::Schema(_)), "{err}");
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn report_rejects_missing_field() {
        let json = r#"{"schema_version": 1, "reports": [{"kind": "use-after-free"}]}"#;
        let err = Report::from_json(json).unwrap_err();
        assert!(matches!(err, ReportError::Schema(_)), "{err}");
    }

    #[test]
    fn report_rejects_unknown_kind() {
        let json = Report::new(vec![sample_report()])
            .to_json()
            .replace("use-after-free", "not-a-bug-kind");
        let err = Report::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("not-a-bug-kind"));
    }

    #[test]
    fn degraded_section_round_trips_sorted() {
        let report = Report::new(vec![sample_report()]).with_degraded(vec![
            DegradedRoot {
                root: "zeta_probe".into(),
                stage: "explore".into(),
                reason: "fault injected: explore:zeta_probe".into(),
                action: "quarantined".into(),
            },
            DegradedRoot {
                root: "alpha_probe".into(),
                stage: "validate".into(),
                reason: "deadline".into(),
                action: "demoted".into(),
            },
        ]);
        // with_degraded sorts by (root, stage) for deterministic bytes.
        assert_eq!(report.degraded[0].root, "alpha_probe");
        let json = report.to_json();
        assert!(json.contains("\"degraded\": {\"version\": 1"));
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn degraded_section_absent_when_empty() {
        let report = Report::new(vec![]).with_degraded(vec![]);
        let json = report.to_json();
        assert!(!json.contains("degraded"));
        assert_eq!(Report::from_json(&json).unwrap().degraded, vec![]);
    }

    #[test]
    fn degraded_section_rejects_wrong_version() {
        let json = Report::new(vec![])
            .with_degraded(vec![DegradedRoot {
                root: "r".into(),
                stage: "explore".into(),
                reason: "x".into(),
                action: "quarantined".into(),
            }])
            .to_json()
            .replace(
                "\"degraded\": {\"version\": 1",
                "\"degraded\": {\"version\": 99",
            );
        let err = Report::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("degraded section version 99"));
    }

    #[test]
    fn report_rejects_malformed_json() {
        assert!(matches!(
            Report::from_json("{nope").unwrap_err(),
            ReportError::Json(_)
        ));
    }
}
