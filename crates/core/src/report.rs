//! Bug candidates and final reports.

use crate::checkers::BugKind;
use pata_ir::{Category, FuncId, InstId, Loc, Module};
use std::fmt;

/// A possible bug produced by stage 1 (typestate tracking without path
/// validation, §3.2). Stage 2 deduplicates and validates these.
#[derive(Debug, Clone)]
pub struct PossibleBug {
    /// Bug type.
    pub kind: BugKind,
    /// Where the offending state was established (e.g. the null check).
    pub origin_loc: Loc,
    /// Establishing instruction (dedup key component).
    pub origin_id: InstId,
    /// Where the bug manifests (e.g. the dereference).
    pub site_loc: Loc,
    /// Manifesting instruction (dedup key component).
    pub site_id: InstId,
    /// The path constraints collected up to the manifestation site
    /// (Table 3 translation with one symbol per alias set).
    pub constraints: Vec<pata_smt::Constraint>,
    /// Additional bug-condition constraints (e.g. `divisor == 0`).
    pub extra: Vec<pata_smt::Constraint>,
    /// Access paths of the offending alias set, rendered in the paper's
    /// `func:var` notation (Fig. 7) — what makes reports "readable".
    pub alias_paths: Vec<String>,
    /// The analysis root (module interface function) whose exploration
    /// found the bug.
    pub root: FuncId,
}

impl PossibleBug {
    /// The deduplication key of §4 P3: two candidates with identical
    /// problematic instructions are the same bug via different paths.
    pub fn dedup_key(&self) -> (BugKind, InstId, InstId) {
        (self.kind, self.origin_id, self.site_id)
    }
}

/// A validated, human-readable bug report (the paper's final output).
#[derive(Debug, Clone)]
pub struct BugReport {
    /// Bug type.
    pub kind: BugKind,
    /// Source file of the manifestation site.
    pub file: String,
    /// Function containing the manifestation site.
    pub function: String,
    /// Line where the offending state was established.
    pub origin_line: u32,
    /// Line where the bug manifests.
    pub site_line: u32,
    /// OS part (drivers / subsystem / third-party …) for Fig. 11.
    pub category: Category,
    /// Access paths of the offending alias set (`func:var` notation).
    pub alias_paths: Vec<String>,
    /// One-line description.
    pub message: String,
}

impl BugReport {
    /// Builds a report from a validated candidate.
    pub fn from_possible(bug: &PossibleBug, module: &Module) -> Self {
        let func = module.function(bug.site_id.func);
        let file = module.file(func.file()).name.clone();
        let kind = bug.kind;
        let alias_note = if bug.alias_paths.is_empty() {
            String::new()
        } else {
            format!(" [alias set: {}]", bug.alias_paths.join(", "))
        };
        let message = format!(
            "{} in `{}`: state established at line {} triggers at line {}{}",
            kind.describe(),
            func.name(),
            bug.origin_loc.line,
            bug.site_loc.line,
            alias_note
        );
        BugReport {
            kind,
            file,
            function: func.name().to_owned(),
            origin_line: bug.origin_loc.line,
            site_line: bug.site_loc.line,
            category: func.category(),
            alias_paths: bug.alias_paths.clone(),
            message,
        }
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{} ({}) — {}",
            self.kind.as_str(),
            self.file,
            self.site_line,
            self.function,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pata_ir::BlockId;

    fn inst_id(f: usize, i: usize) -> InstId {
        InstId {
            func: FuncId::from_index(f),
            block: BlockId::from_index(0),
            inst: i,
        }
    }

    #[test]
    fn dedup_key_ignores_path() {
        let a = PossibleBug {
            kind: BugKind::NullPointerDeref,
            origin_loc: Loc::default(),
            origin_id: inst_id(0, 1),
            site_loc: Loc::default(),
            site_id: inst_id(0, 5),
            constraints: vec![],
            extra: vec![],
            alias_paths: vec![],
            root: FuncId::from_index(0),
        };
        let mut b = a.clone();
        b.constraints = vec![pata_smt::Constraint::new(
            pata_smt::CmpOp::Eq,
            pata_smt::Term::int(1),
            pata_smt::Term::int(1),
        )];
        assert_eq!(a.dedup_key(), b.dedup_key());
    }
}
