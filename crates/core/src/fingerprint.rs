//! Cheap incremental 64-bit fingerprints over live analysis state.
//!
//! The exploration-reuse layer (subsumption table and callee-summary
//! cache, see DESIGN.md) keys its tables by a hash of the *exact* live
//! state: alias-graph placements and edges, typestate entries, condition
//! definitions, symbol and function-pointer bindings, and the structural
//! stacks. Every mutation XORs the hash of the touched fact in or out, so
//! the fingerprint stays current under both forward execution and journal
//! rollback at O(1) per update:
//!
//! * XOR is commutative and associative, so the fingerprint is independent
//!   of insertion order — two paths that reconverge to the same literal
//!   state carry the same fingerprint.
//! * XOR is its own inverse, so undoing a mutation applies the identical
//!   update as doing it.
//!
//! Facts are hashed with their *literal* identifiers (node ids, symbol
//! ids, variable ids). Fingerprint equality therefore means literal state
//! equality (modulo 64-bit collisions), which is what makes replaying a
//! recorded effect journal sound: every id a recorded effect mentions
//! denotes the same object in the replaying state.
//!
//! This module also hosts [`FxHashMap`], the multiply-rotate hasher used
//! by every per-step map on the exploration hot path. The keys there are
//! small dense integers (variable ids, node ids, packed tuples) for which
//! the default SipHash is pure overhead; the Fx construction (one multiply
//! and a rotate per word, as popularized by the rustc compiler's FxHash)
//! is a measurable share of the copy-on-write path-state speedup.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-cryptographic hasher for small integer-like keys.
///
/// Multiply-rotate over each 8-byte word. Not DoS-resistant — only ever
/// used for in-process analysis tables keyed by ids the analysis itself
/// allocates, never by untrusted input.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits (the table index) depend on all input
        // words even for sequential keys.
        mix(self.hash)
    }
}

/// `BuildHasher` for [`FxHasher`].
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — drop-in for the hot analysis tables.
pub(crate) type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `splitmix64` finalizer — the same zero-dependency mixer the corpus
/// generator uses for its PRNG. Good avalanche at two multiplies.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a fact of up to four 64-bit lanes plus a domain tag. The tag
/// keeps structurally identical facts from different domains (e.g. an
/// alias edge and a typestate entry) from cancelling each other out.
#[inline]
pub(crate) fn hash4(tag: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
    mix(tag ^ mix(a ^ mix(b ^ mix(c ^ mix(d)))))
}

#[inline]
pub(crate) fn hash2(tag: u64, a: u64, b: u64) -> u64 {
    hash4(tag, a, b, 0, 0)
}

// Domain tags. Arbitrary distinct constants; never persisted.
pub(crate) const TAG_VAR_PLACED: u64 = 0x01;
pub(crate) const TAG_EDGE: u64 = 0x02;
pub(crate) const TAG_STATE: u64 = 0x03;
pub(crate) const TAG_COND: u64 = 0x04;
pub(crate) const TAG_SYM: u64 = 0x05;
pub(crate) const TAG_FPTR: u64 = 0x06;
pub(crate) const TAG_FRAME: u64 = 0x07;
pub(crate) const TAG_VISIT: u64 = 0x08;
pub(crate) const TAG_HEAP: u64 = 0x09;
pub(crate) const TAG_CONT: u64 = 0x0a;
pub(crate) const TAG_CALLSTACK: u64 = 0x0b;
pub(crate) const TAG_ARG: u64 = 0x0c;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_roundtrip_restores_fingerprint() {
        let mut fp = 0u64;
        let f1 = hash2(TAG_EDGE, 3, 4);
        let f2 = hash4(TAG_STATE, 1, 2, 9, 0);
        fp ^= f1;
        fp ^= f2;
        fp ^= f1; // undo f1
        assert_eq!(fp, hash4(TAG_STATE, 1, 2, 9, 0));
        fp ^= f2;
        assert_eq!(fp, 0);
    }

    #[test]
    fn order_independent() {
        let a = hash2(TAG_SYM, 1, 2);
        let b = hash2(TAG_SYM, 7, 8);
        assert_eq!(a ^ b, b ^ a);
    }

    #[test]
    fn tags_separate_domains() {
        assert_ne!(hash2(TAG_EDGE, 1, 2), hash2(TAG_STATE, 1, 2));
    }

    #[test]
    fn fx_hasher_behaves_like_a_map_hasher() {
        // Deterministic, and sensitive to every word and to order.
        let h = |words: &[u64]| {
            let mut hasher = FxHasher::default();
            for &w in words {
                hasher.write_u64(w);
            }
            hasher.finish()
        };
        assert_eq!(h(&[1, 2]), h(&[1, 2]));
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
        assert_ne!(h(&[0]), h(&[1]));
        // Sequential small keys spread across low bits (no trivial
        // clustering when masked down to a table index).
        let idx: std::collections::HashSet<u64> = (0..64u64).map(|k| h(&[k]) & 63).collect();
        assert!(idx.len() > 32, "low-bit spread too poor: {}", idx.len());

        let mut m: FxHashMap<(u8, u64), u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((3, i), i * 2);
        }
        assert_eq!(m.get(&(3, 500)), Some(&1000));
        assert_eq!(m.len(), 1000);
    }
}
