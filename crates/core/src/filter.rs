//! The bug filter (paper §4, phase P3): cross-root deduplication of
//! repeated bugs, then alias-aware path validation.

use crate::faultinject::{self, FaultPlan};
use crate::report::{BugReport, DegradedRoot, PossibleBug};
use crate::stats::AnalysisStats;
use crate::telemetry::Telemetry;
use crate::validate::{Feasibility, PathValidator, ValidationCache};
use pata_ir::Module;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Output of filtering.
#[derive(Debug)]
pub struct FilterResult {
    /// Validated, rendered reports.
    pub reports: Vec<BugReport>,
    /// The surviving candidates (same order as `reports`).
    pub real_bugs: Vec<PossibleBug>,
    /// Bug groups whose validation panicked (stage `"validate"`): the group
    /// is quarantined — not reported, not counted as a dropped false bug —
    /// and the validator is rebuilt so later groups validate normally.
    pub failures: Vec<DegradedRoot>,
}

/// Deduplicates candidates by problematic-instruction pair and validates
/// each survivor's path feasibility, updating `stats` (dropped repeated /
/// false bugs, reported count, validation-cache counters).
///
/// Validation runs through one [`PathValidator`]: the path snapshots of a
/// group share long constraint prefixes, which the incremental solver keeps
/// asserted between candidates. When `cache` is given, whole conjunctions
/// are additionally memoized by canonical key across groups and runs.
pub fn filter(
    module: &Module,
    candidates: Vec<PossibleBug>,
    validate_paths: bool,
    cache: Option<&ValidationCache>,
    telemetry: Option<&Telemetry>,
    stats: &mut AnalysisStats,
) -> FilterResult {
    filter_with_faults(
        module,
        candidates,
        validate_paths,
        cache,
        telemetry,
        stats,
        None,
    )
}

/// [`filter`] with an active fault plan: the `validate` injection site
/// fires per candidate, labeled with the candidate's root name.
#[allow(clippy::too_many_arguments)]
pub(crate) fn filter_with_faults(
    module: &Module,
    candidates: Vec<PossibleBug>,
    validate_paths: bool,
    cache: Option<&ValidationCache>,
    telemetry: Option<&Telemetry>,
    stats: &mut AnalysisStats,
    fault: Option<&FaultPlan>,
) -> FilterResult {
    let tel_enabled = telemetry.is_some_and(Telemetry::is_enabled);
    let (base_reported, base_repeated, base_false) = (
        stats.reported,
        stats.repeated_bugs_dropped,
        stats.false_bugs_dropped,
    );
    // Group path snapshots by problematic-instruction pair (§4 P3): two
    // candidates with identical instructions are the same bug reached along
    // different paths (possibly from different analysis roots). The bug is
    // real if *any* of its paths is feasible.
    let mut order: Vec<(crate::checkers::BugKind, pata_ir::InstId, pata_ir::InstId)> = Vec::new();
    let mut groups: HashMap<_, Vec<PossibleBug>> = HashMap::new();
    for bug in candidates {
        let key = bug.dedup_key();
        let entry = groups.entry(key).or_default();
        if entry.is_empty() {
            order.push(key);
        } else {
            stats.repeated_bugs_dropped += 1;
        }
        entry.push(bug);
    }

    let mut validator = PathValidator::with_telemetry(cache, tel_enabled);
    let mut reports = Vec::new();
    let mut real = Vec::new();
    let mut failures: Vec<DegradedRoot> = Vec::new();
    'groups: for key in order {
        let paths = groups.remove(&key).expect("grouped");
        let witness = if validate_paths {
            let mut witness = None;
            for bug in paths {
                // Per-candidate quarantine: a panicking validation (SMT
                // bug, injected fault) drops this group only. The
                // incremental solver may be mid-assertion-scope, so the
                // validator is drained and rebuilt before the next group.
                let verdict = catch_unwind(AssertUnwindSafe(|| {
                    faultinject::maybe_panic(fault, "validate", module.function(bug.root).name());
                    validator.validate(&bug)
                }));
                match verdict {
                    Ok(Feasibility::Feasible) => {
                        witness = Some(bug);
                        break;
                    }
                    Ok(_) => {}
                    Err(payload) => {
                        let mut broken = std::mem::replace(
                            &mut validator,
                            PathValidator::with_telemetry(cache, tel_enabled),
                        );
                        drain_validator(&mut broken, stats, telemetry);
                        failures.push(DegradedRoot {
                            root: module.function(bug.root).name().to_string(),
                            stage: "validate".to_string(),
                            reason: crate::driver::panic_reason(payload.as_ref()),
                            action: "quarantined".to_string(),
                        });
                        if let Some(tel) = telemetry {
                            tel.record_direct(|sink| {
                                sink.add_labeled(
                                    "driver.recover.quarantined",
                                    Some("validate".into()),
                                    1,
                                );
                            });
                        }
                        // Neither reported nor a counted false drop: the
                        // verdict is unknown, which is exactly what the
                        // degraded section communicates.
                        continue 'groups;
                    }
                }
            }
            witness
        } else {
            paths.into_iter().next()
        };
        match witness {
            Some(bug) => {
                stats.reported += 1;
                reports.push(BugReport::from_possible(&bug, module));
                real.push(bug);
            }
            None => {
                stats.false_bugs_dropped += 1;
            }
        }
    }
    drain_validator(&mut validator, stats, telemetry);
    if let Some(tel) = telemetry {
        tel.record_direct(|sink| {
            sink.add(
                "filter.groups",
                (stats.reported - base_reported) + (stats.false_bugs_dropped - base_false),
            );
            sink.add(
                "filter.repeated_dropped",
                stats.repeated_bugs_dropped - base_repeated,
            );
            sink.add(
                "filter.false_dropped",
                stats.false_bugs_dropped - base_false,
            );
        });
    }
    FilterResult {
        reports,
        real_bugs: real,
        failures,
    }
}

/// Folds a validator's counters (and buffered telemetry) into the run
/// totals. Called once at the end for the live validator and once for each
/// validator abandoned after a validation panic.
fn drain_validator(
    validator: &mut PathValidator<'_>,
    stats: &mut AnalysisStats,
    telemetry: Option<&Telemetry>,
) {
    let vstats = validator.stats();
    stats.validation_cache_hits += vstats.cache_hits;
    stats.validation_cache_misses += vstats.cache_misses;
    stats.validation_scope_reuse += vstats.scope_reuse;
    if let Some(tel) = telemetry {
        tel.merge(validator.take_telemetry());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::BugKind;
    use pata_ir::{BlockId, FuncId, InstId, Loc};
    use pata_smt::{CmpOp, Constraint, SymId, Term};

    fn module_with_one_fn() -> Module {
        pata_cc::compile_one("f.c", "void f(void) { }").unwrap()
    }

    fn bug(site: usize, constraints: Vec<Constraint>) -> PossibleBug {
        PossibleBug {
            kind: BugKind::NullPointerDeref,
            origin_loc: Loc::default(),
            origin_id: InstId {
                func: FuncId::from_index(0),
                block: BlockId::from_index(0),
                inst: 0,
            },
            site_loc: Loc::default(),
            site_id: InstId {
                func: FuncId::from_index(0),
                block: BlockId::from_index(0),
                inst: site,
            },
            constraints,
            extra: vec![],
            alias_paths: vec![],
            root: FuncId::from_index(0),
        }
    }

    fn contradiction() -> Vec<Constraint> {
        vec![
            Constraint::new(CmpOp::Eq, Term::sym(SymId(0)), Term::int(0)),
            Constraint::new(CmpOp::Ne, Term::sym(SymId(0)), Term::int(0)),
        ]
    }

    #[test]
    fn dedup_drops_repeats() {
        let m = module_with_one_fn();
        let mut stats = AnalysisStats::default();
        let out = filter(
            &m,
            vec![bug(1, vec![]), bug(1, vec![]), bug(2, vec![])],
            true,
            None,
            None,
            &mut stats,
        );
        assert_eq!(out.reports.len(), 2);
        assert_eq!(stats.repeated_bugs_dropped, 1);
    }

    #[test]
    fn infeasible_candidates_dropped() {
        let m = module_with_one_fn();
        let mut stats = AnalysisStats::default();
        let out = filter(
            &m,
            vec![bug(1, contradiction()), bug(2, vec![])],
            true,
            None,
            None,
            &mut stats,
        );
        assert_eq!(out.reports.len(), 1);
        assert_eq!(stats.false_bugs_dropped, 1);
        assert_eq!(stats.reported, 1);
    }

    #[test]
    fn validation_can_be_disabled() {
        let m = module_with_one_fn();
        let mut stats = AnalysisStats::default();
        let out = filter(
            &m,
            vec![bug(1, contradiction())],
            false,
            None,
            None,
            &mut stats,
        );
        assert_eq!(out.reports.len(), 1);
        assert_eq!(stats.false_bugs_dropped, 0);
    }

    #[test]
    fn cache_counters_flow_into_stats() {
        let m = module_with_one_fn();
        let cache = ValidationCache::new();
        let mut stats = AnalysisStats::default();
        // Two distinct bugs with identical (α-equivalent) constraint sets:
        // the second validation hits the cache.
        let out = filter(
            &m,
            vec![bug(1, contradiction()), bug(2, contradiction())],
            true,
            Some(&cache),
            None,
            &mut stats,
        );
        assert_eq!(out.reports.len(), 0);
        assert_eq!(stats.false_bugs_dropped, 2);
        assert_eq!(stats.validation_cache_misses, 1);
        assert_eq!(stats.validation_cache_hits, 1);
    }

    #[test]
    fn cache_on_and_off_agree() {
        let m = module_with_one_fn();
        let mk = || {
            vec![
                bug(1, contradiction()),
                bug(2, vec![]),
                bug(3, contradiction()),
            ]
        };
        let mut s_off = AnalysisStats::default();
        let off = filter(&m, mk(), true, None, None, &mut s_off);
        let cache = ValidationCache::new();
        let mut s_on = AnalysisStats::default();
        let on = filter(&m, mk(), true, Some(&cache), None, &mut s_on);
        assert_eq!(off.reports.len(), on.reports.len());
        assert_eq!(s_off.false_bugs_dropped, s_on.false_bugs_dropped);
        assert_eq!(
            s_off.validation_cache_hits + s_off.validation_cache_misses,
            0
        );
    }
}
