//! An open checker registry: checkers as plugins over the analysis core.
//!
//! STANSE's lesson (and the paper's §5.5 generality claim) is that a
//! bug-finding framework earns its keep by letting new checkers plug into
//! a common engine. The closed [`BugKind`] enum blocks that: everything
//! routes through `BugKind::instantiate()`. This module opens the seam —
//! a [`CheckerFactory`] describes how to build one checker, and a
//! [`CheckerRegistry`] owns a set of factories keyed by stable string id.
//! The seven built-ins pre-register via [`BuiltinChecker`], so
//! `BugKind::instantiate()` is now a thin wrapper over the same path an
//! out-of-tree plugin uses (see `examples/double_unlock_plugin.rs`).
//!
//! Selection policy in [`CheckerRegistry::instantiate_for`]: the
//! `AnalysisConfig::checkers` list selects among *built-in* kinds, while
//! every registered non-built-in factory always runs — a plugin is
//! registered precisely because the caller wants it.

use crate::checkers::BugKind;
use crate::typestate::Checker;
use std::fmt;

/// Builds instances of one checker. Implement this to plug a custom
/// checker into [`CheckerRegistry`]; the built-ins implement it through
/// [`BuiltinChecker`].
pub trait CheckerFactory: Send + Sync {
    /// Stable unique id (the built-ins use their [`BugKind::as_str`] slug,
    /// e.g. `"null-pointer-dereference"`).
    fn id(&self) -> &str;

    /// One-line human description, for listings.
    fn description(&self) -> &str;

    /// Creates a fresh checker instance.
    fn create(&self) -> Box<dyn Checker>;
}

/// Factory for one of the seven built-in checkers. `BugKind::instantiate`
/// delegates here, so built-ins and plugins share one construction path.
#[derive(Debug, Clone, Copy)]
pub struct BuiltinChecker(pub BugKind);

impl CheckerFactory for BuiltinChecker {
    fn id(&self) -> &str {
        self.0.as_str()
    }

    fn description(&self) -> &str {
        self.0.describe()
    }

    fn create(&self) -> Box<dyn Checker> {
        use crate::checkers::{divzero, lock, ml, npd, uaf, underflow, uva};
        match self.0 {
            BugKind::NullPointerDeref => Box::new(npd::NpdChecker),
            BugKind::UninitVarAccess => Box::new(uva::UvaChecker),
            BugKind::MemoryLeak => Box::new(ml::MlChecker),
            BugKind::DoubleLock => Box::new(lock::LockChecker),
            BugKind::ArrayIndexUnderflow => Box::new(underflow::UnderflowChecker),
            BugKind::DivisionByZero => Box::new(divzero::DivZeroChecker),
            BugKind::UseAfterFree => Box::new(uaf::UafChecker),
        }
    }
}

/// Why a [`CheckerRegistry::register`] call was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A factory with the same id is already registered.
    DuplicateId(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateId(id) => {
                write!(f, "a checker with id `{id}` is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A set of checker factories, keyed by stable string id.
pub struct CheckerRegistry {
    entries: Vec<Box<dyn CheckerFactory>>,
}

impl fmt::Debug for CheckerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckerRegistry")
            .field("ids", &self.ids())
            .finish()
    }
}

impl Default for CheckerRegistry {
    fn default() -> Self {
        CheckerRegistry::with_builtins()
    }
}

impl CheckerRegistry {
    /// An empty registry (no built-ins).
    pub fn new() -> Self {
        CheckerRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry pre-loaded with the seven built-in checkers.
    pub fn with_builtins() -> Self {
        let mut r = CheckerRegistry::new();
        for kind in BugKind::ALL {
            r.register(Box::new(BuiltinChecker(kind)))
                .expect("built-in ids are unique");
        }
        r
    }

    /// Registers a factory. Fails if the id is already taken.
    pub fn register(&mut self, factory: Box<dyn CheckerFactory>) -> Result<(), RegistryError> {
        let id = factory.id();
        if self.entries.iter().any(|e| e.id() == id) {
            return Err(RegistryError::DuplicateId(id.to_owned()));
        }
        self.entries.push(factory);
        Ok(())
    }

    /// Looks up a factory by id.
    pub fn get(&self, id: &str) -> Option<&dyn CheckerFactory> {
        self.entries
            .iter()
            .find(|e| e.id() == id)
            .map(|e| e.as_ref())
    }

    /// All registered ids, in registration order.
    pub fn ids(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.id()).collect()
    }

    /// Instantiates the checkers an analysis run should use: the
    /// `selected` built-in kinds (from the registry when registered, from
    /// [`BuiltinChecker`] directly otherwise, so a built-ins-free registry
    /// still honours the config), plus every registered factory whose id
    /// is not a built-in slug — plugins always run.
    pub fn instantiate_for(&self, selected: &[BugKind]) -> Vec<Box<dyn Checker>> {
        let mut checkers: Vec<Box<dyn Checker>> = selected
            .iter()
            .map(|kind| match self.get(kind.as_str()) {
                Some(factory) => factory.create(),
                None => BuiltinChecker(*kind).create(),
            })
            .collect();
        for entry in &self.entries {
            if BugKind::parse(entry.id()).is_none() {
                checkers.push(entry.create());
            }
        }
        checkers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typestate::FsmSpec;

    struct DummyFactory {
        id: &'static str,
    }

    struct DummyChecker;

    impl crate::typestate::Checker for DummyChecker {
        fn kind(&self) -> BugKind {
            BugKind::DoubleLock
        }
        fn fsm(&self) -> FsmSpec {
            FsmSpec {
                states: vec!["S0", "SBUG"],
                events: vec!["e"],
                bug_state: "SBUG",
            }
        }
        fn on_inst(
            &self,
            _cx: &mut crate::typestate::TrackCtx<'_>,
            _inst: &pata_ir::InstKind,
            _info: &crate::typestate::UpdateInfo,
        ) {
        }
    }

    impl CheckerFactory for DummyFactory {
        fn id(&self) -> &str {
            self.id
        }
        fn description(&self) -> &str {
            "a test checker"
        }
        fn create(&self) -> Box<dyn Checker> {
            Box::new(DummyChecker)
        }
    }

    #[test]
    fn builtins_registry_has_seven_unique_ids() {
        let r = CheckerRegistry::with_builtins();
        let ids = r.ids();
        assert_eq!(ids.len(), 7);
        assert!(ids.contains(&"null-pointer-dereference"));
    }

    #[test]
    fn duplicate_id_is_rejected() {
        let mut r = CheckerRegistry::with_builtins();
        let err = r
            .register(Box::new(BuiltinChecker(BugKind::MemoryLeak)))
            .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateId("memory-leak".to_owned()));
        assert_eq!(r.ids().len(), 7);
    }

    #[test]
    fn duplicate_plugin_id_is_rejected() {
        let mut r = CheckerRegistry::new();
        r.register(Box::new(DummyFactory { id: "my-checker" }))
            .unwrap();
        let err = r
            .register(Box::new(DummyFactory { id: "my-checker" }))
            .unwrap_err();
        assert!(matches!(err, RegistryError::DuplicateId(_)));
    }

    #[test]
    fn selection_honours_config_and_always_runs_plugins() {
        let mut r = CheckerRegistry::with_builtins();
        r.register(Box::new(DummyFactory { id: "my-checker" }))
            .unwrap();
        let checkers = r.instantiate_for(&[BugKind::NullPointerDeref]);
        // 1 selected built-in + 1 plugin.
        assert_eq!(checkers.len(), 2);
    }

    #[test]
    fn empty_registry_still_instantiates_builtins() {
        let r = CheckerRegistry::new();
        let checkers = r.instantiate_for(&BugKind::MAIN);
        assert_eq!(checkers.len(), 3);
        assert_eq!(checkers[0].kind(), BugKind::NullPointerDeref);
    }

    #[test]
    fn instantiate_is_thin_wrapper_over_factory() {
        for kind in BugKind::ALL {
            assert_eq!(
                kind.instantiate().kind(),
                BuiltinChecker(kind).create().kind()
            );
        }
    }
}
