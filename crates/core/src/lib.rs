//! # pata-core — the PATA analysis framework
//!
//! This crate implements the three key techniques of *"Path-Sensitive and
//! Alias-Aware Typestate Analysis for Detecting OS Bugs"* (ASPLOS'22):
//!
//! 1. **Path-based alias analysis** (§3.1) — [`alias::AliasGraph`] maintains
//!    one alias graph per control-flow path, updated by the `MOVE` / `STORE`
//!    / `LOAD` / `GEP` rules of Fig. 5, without any points-to information.
//!    Function calls become parameter `MOVE`s (Fig. 6).
//! 2. **Alias-aware typestate tracking** (§3.2) — [`typestate`] keeps *one*
//!    state per alias set (graph node) per checker instead of one state per
//!    variable; the six built-in [`checkers`] cover null-pointer
//!    dereferences, uninitialized-variable accesses, memory leaks (Table 2)
//!    and double lock/unlock, array-index underflow, division by zero
//!    (Table 7).
//! 3. **Alias-aware path validation** (§3.3) — [`validate`] maps every alias
//!    set to a single SMT symbol (Def. 4) and translates the candidate
//!    bug's path to constraints (Table 3), discharging them with
//!    [`pata_smt`]'s conjunction solver to drop infeasible (false) bugs.
//!
//! The pipeline mirrors the paper's three phases (§4): the information
//! collector ([`collector`]) finds *module interface functions* (functions
//! with no explicit caller — e.g. driver `probe` callbacks registered via
//! function-pointer fields, Fig. 1); the code analyzer ([`path`], driven by
//! [`driver::Pata`]) explores paths from those roots while tracking alias
//! graphs and typestates; the bug filter ([`filter`]) deduplicates repeated
//! bugs and validates path feasibility.
//!
//! Everything is reachable through one entry point: build an
//! [`AnalysisConfig`], open an [`AnalysisSession`] (optionally backed by an
//! on-disk store for warm restarts, see [`persist`]), and submit
//! [`AnalysisRequest`]s. The [`serve`] module wraps a session in a
//! newline-delimited JSON protocol (`pata serve`) so concurrent clients
//! share one warm cache.
//!
//! # Quick start
//!
//! ```
//! use pata_core::{AnalysisConfig, AnalysisRequest, AnalysisSession};
//!
//! let mut session = AnalysisSession::new(AnalysisConfig::default());
//! let request = AnalysisRequest::new().file(
//!     "demo.c",
//!     r#"
//!     struct dev { int *res; };
//!     static int demo_probe(struct dev *d) {
//!         if (d->res == NULL) { }
//!         return *d->res;        // NPD when d->res is NULL
//!     }
//!     static struct drv demo_driver = { .probe = demo_probe };
//!     "#,
//! );
//!
//! let outcome = session.analyze(&request).unwrap();
//! assert!(outcome.report.reports.iter().any(|r| r.kind.as_str() == "null-pointer-dereference"));
//!
//! // Submitting the same sources again replays every root from the
//! // session's warm cache — no re-exploration, identical report.
//! let warm = session.analyze(&request).unwrap();
//! assert_eq!(warm.incremental.dirty_roots, 0);
//! assert_eq!(warm.report.to_json(), outcome.report.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod checkers;
pub mod collector;
pub mod config;
pub mod driver;
pub mod faultinject;
pub mod filter;
pub(crate) mod fingerprint;
pub mod json;
pub mod path;
pub mod persist;
pub mod registry;
pub mod report;
pub mod serve;
pub mod session;
pub mod stats;
pub mod telemetry;
pub mod typestate;
pub mod validate;

pub use checkers::BugKind;
pub use config::{AliasMode, AnalysisConfig, AnalysisConfigBuilder, ConfigError, PathBudget};
pub use driver::{AnalysisOutcome, Pata};
pub use faultinject::{FaultAction, FaultPlan, FaultPlanError};
pub use persist::STORE_SCHEMA_VERSION;
pub use registry::{BuiltinChecker, CheckerFactory, CheckerRegistry, RegistryError};
pub use report::{
    BugReport, DegradedRoot, PossibleBug, Report, ReportError, DEGRADED_SECTION_VERSION,
    REPORT_SCHEMA_VERSION,
};
#[cfg(unix)]
pub use serve::{client_request, serve_unix, serve_unix_with};
pub use serve::{
    handle_line, serve_loop, serve_loop_with, ServeOptions, ServeTotals, SERVE_PROTOCOL_VERSION,
};
pub use session::{
    AnalysisRequest, AnalysisSession, IncrementalStats, SessionError, SessionOutcome, SourceFile,
};
pub use stats::{AnalysisStats, BudgetNote};
pub use telemetry::{Telemetry, TelemetrySink, TelemetrySnapshot};
pub use validate::{PathValidator, ValidationCache};
