//! Alias-aware typestate tracking (paper §3.2).
//!
//! A typestate property is an FSM (Definition 2); *all variables in the same
//! alias set share one state* (Definition 3), which is the paper's key cost
//! reduction: `Sm : AS → S` is realized here as a state table keyed by
//! alias-graph node. In the PATA-NA sensitivity mode (Table 6) the key
//! degrades to the variable itself, reproducing traditional per-variable
//! typestate tracking.

use crate::alias::NodeId;
use crate::checkers::BugKind;
use crate::config::AliasMode;
use crate::fingerprint::{hash4, FxHashMap, TAG_STATE};
use crate::report::PossibleBug;
use crate::stats::AnalysisStats;
use pata_ir::{InstId, Loc, VarId};

/// What a typestate (or SMT symbol) is attached to.
///
/// * [`TrackKey::Node`] — an alias set (one abstract object); the paper's
///   alias-aware mode.
/// * [`TrackKey::Var`] — a single variable; the PATA-NA baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrackKey {
    /// An alias-graph node (alias-aware).
    Node(NodeId),
    /// A plain variable (alias-unaware / PATA-NA).
    Var(VarId),
}

/// A state value within one checker's FSM. `0` is reserved for the initial
/// state `S0` and is represented by *absence* from the table.
pub type StateVal = u8;

/// One tracked state with provenance for bug reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateEntry {
    /// The checker-specific state value.
    pub state: StateVal,
    /// Where the state was established (e.g. the `if (!p)` branch).
    pub origin_loc: Loc,
    /// The instruction that established the state.
    pub origin_id: InstId,
}

/// Journal-backed state storage shared by all checkers.
///
/// Mirrors [`crate::alias::AliasGraph`]'s mark/rollback protocol so the path
/// explorer can backtrack states and alias information in lockstep.
#[derive(Debug, Default, Clone)]
pub struct StateTable {
    map: FxHashMap<(u8, TrackKey), StateEntry>,
    journal: Vec<StateOp>,
    /// Incremental XOR fingerprint over live entries (see
    /// [`crate::fingerprint`]).
    fp: u64,
}

/// One journaled state mutation: carries the old value for rollback and
/// the new value for redo (callee-summary replay).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StateOp {
    pub(crate) checker: u8,
    pub(crate) key: TrackKey,
    pub(crate) old: Option<StateEntry>,
    pub(crate) new: Option<StateEntry>,
}

/// Encodes a tracking key into one hashable lane.
#[inline]
fn key_lane(key: TrackKey) -> u64 {
    match key {
        TrackKey::Node(n) => n.index() as u64,
        TrackKey::Var(v) => (1u64 << 32) | v.index() as u64,
    }
}

/// Fingerprint term for one live `(checker, key) -> entry` fact. The
/// origin location is a function of the origin instruction, so hashing
/// the instruction identity suffices.
#[inline]
fn fp_entry(checker: u8, key: TrackKey, entry: StateEntry) -> u64 {
    let origin = (entry.origin_id.func.index() as u64) << 40
        ^ (entry.origin_id.block.index() as u64) << 20
        ^ entry.origin_id.inst as u64;
    hash4(
        TAG_STATE,
        u64::from(checker),
        key_lane(key),
        u64::from(entry.state),
        origin,
    )
}

/// Rollback point for [`StateTable`].
#[derive(Debug, Clone, Copy)]
pub struct StateMark(usize);

impl StateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state for `key` under `checker`, if any transition happened.
    pub fn get(&self, checker: u8, key: TrackKey) -> Option<StateEntry> {
        self.map.get(&(checker, key)).copied()
    }

    /// Sets the state, journaling the old value.
    pub fn set(&mut self, checker: u8, key: TrackKey, entry: StateEntry) {
        let old = self.map.insert((checker, key), entry);
        if let Some(o) = old {
            self.fp ^= fp_entry(checker, key, o);
        }
        self.fp ^= fp_entry(checker, key, entry);
        self.journal.push(StateOp {
            checker,
            key,
            old,
            new: Some(entry),
        });
    }

    /// Clears the state (used when a variable is redefined in PATA-NA mode).
    pub fn clear(&mut self, checker: u8, key: TrackKey) {
        if let Some(old) = self.map.remove(&(checker, key)) {
            self.fp ^= fp_entry(checker, key, old);
            self.journal.push(StateOp {
                checker,
                key,
                old: Some(old),
                new: None,
            });
        }
    }

    /// The incremental fingerprint of the live entries.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// The net mutations since `mark` (rollbacks pop their entries).
    pub(crate) fn ops_since(&self, mark: StateMark) -> &[StateOp] {
        &self.journal[mark.0..]
    }

    /// Redoes a recorded mutation via the journaled primitives, so the
    /// replay rolls back and fingerprints like a live update.
    pub(crate) fn apply_op(&mut self, op: &StateOp) {
        match op.new {
            Some(entry) => self.set(op.checker, op.key, entry),
            None => self.clear(op.checker, op.key),
        }
    }

    /// Number of live state entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Journal length (undo depth since the table was created).
    pub(crate) fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// O(1) estimate of the heap bytes a deep clone of this table copies.
    pub(crate) fn approx_bytes(&self) -> u64 {
        let entry = std::mem::size_of::<((u8, TrackKey), StateEntry)>() as u64;
        let op = std::mem::size_of::<StateOp>() as u64;
        self.map.len() as u64 * entry + self.journal.len() as u64 * op
    }

    /// Whether no states are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Snapshots for rollback.
    pub fn mark(&self) -> StateMark {
        StateMark(self.journal.len())
    }

    /// Rolls back to `mark`.
    pub fn rollback(&mut self, mark: StateMark) {
        while self.journal.len() > mark.0 {
            let StateOp {
                checker,
                key,
                old,
                new,
            } = self.journal.pop().unwrap();
            if let Some(n) = new {
                self.fp ^= fp_entry(checker, key, n);
            }
            match old {
                Some(entry) => {
                    self.map.insert((checker, key), entry);
                    self.fp ^= fp_entry(checker, key, entry);
                }
                None => {
                    self.map.remove(&(checker, key));
                }
            }
        }
    }
}

/// Introspection data describing a checker's FSM (Definition 2 / Table 2).
/// Purely documentary — transitions are implemented in checker code, which
/// is how the paper describes its 100-200-line checkers.
#[derive(Debug, Clone)]
pub struct FsmSpec {
    /// Human-readable state names, indexed by [`StateVal`]; index 0 is `S0`.
    pub states: Vec<&'static str>,
    /// The input alphabet Σ.
    pub events: Vec<&'static str>,
    /// Name of the accepting/bug state.
    pub bug_state: &'static str,
}

/// A resolved operand in a branch predicate.
#[derive(Debug, Clone, Copy)]
pub enum OperandKey {
    /// A variable with its current tracking key.
    Var(VarId, TrackKey),
    /// An integer constant (`NULL` is 0).
    Const(i64),
}

impl OperandKey {
    /// The key if this operand is a variable.
    pub fn key(&self) -> Option<TrackKey> {
        match self {
            OperandKey::Var(_, k) => Some(*k),
            OperandKey::Const(_) => None,
        }
    }

    /// The constant if this operand is one.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            OperandKey::Const(c) => Some(*c),
            OperandKey::Var(..) => None,
        }
    }
}

/// A taken branch with its effective (possibly negated) predicate.
#[derive(Debug, Clone, Copy)]
pub struct BranchEvent {
    /// The comparison that holds along the taken edge.
    pub op: pata_ir::CmpOp,
    /// Left operand with tracking key resolved at branch time.
    pub lhs: OperandKey,
    /// Right operand.
    pub rhs: OperandKey,
    /// Whether the left/right operand has pointer type (for null tests).
    pub lhs_is_pointer: bool,
    /// Location of the branch.
    pub loc: Loc,
    /// Identity of the branch terminator.
    pub inst_id: InstId,
}

/// Alias-resolution results for one instruction, handed to checkers after
/// the alias graph has been updated.
#[derive(Debug, Clone, Default)]
pub struct UpdateInfo {
    /// Tracking key of the defined variable after the update.
    pub dst_key: Option<TrackKey>,
    /// For `MOVE`: `(dst, src)` keys — PATA-NA copies states along these.
    pub move_pair: Option<(TrackKey, TrackKey)>,
    /// Key of a dereferenced pointer (`LOAD` addr / `STORE` addr / `GEP`
    /// base) — the NPD `deref` event target.
    pub deref_key: Option<TrackKey>,
    /// For `STORE`: key of the object `*addr` denoted *before* the store
    /// (the overwritten location — UVA initialization target).
    pub store_old_target: Option<TrackKey>,
    /// For `STORE` of a variable: key of the stored value (ML escape).
    pub stored_val_key: Option<TrackKey>,
    /// For `STORE` of a constant: key of the fresh constant object `*addr`
    /// now denotes, with the constant (NPD `ass_null` through memory).
    pub stored_const: Option<(TrackKey, pata_ir::ConstVal)>,
    /// Keys of value-read operands (UVA `use` events), with the variables.
    pub use_keys: Vec<(VarId, TrackKey)>,
    /// Key of the divisor if this is a division (division-by-zero checker).
    pub divisor_key: Option<TrackKey>,
    /// Constant divisor, when the divisor is immediate.
    pub divisor_const: Option<i64>,
    /// Key + constant view of an array index (underflow checker).
    pub index_key: Option<TrackKey>,
    /// Constant array index, when immediate.
    pub index_const: Option<i64>,
    /// Keys of pointer arguments passed to an opaque (external/indirect)
    /// call — conservative ML escape.
    pub escape_keys: Vec<TrackKey>,
    /// Key of the pointer in a `FREE` (no NPD `deref`: `free(NULL)` is ok).
    pub free_key: Option<TrackKey>,
    /// Key of the lock object in `LOCK`/`UNLOCK`.
    pub lock_key: Option<TrackKey>,
}

impl UpdateInfo {
    /// Resets all fields while keeping the `Vec` allocations, so the
    /// explorer can reuse one scratch `UpdateInfo` per step instead of
    /// allocating a fresh one per instruction.
    pub fn clear(&mut self) {
        self.dst_key = None;
        self.move_pair = None;
        self.deref_key = None;
        self.store_old_target = None;
        self.stored_val_key = None;
        self.stored_const = None;
        self.use_keys.clear();
        self.divisor_key = None;
        self.divisor_const = None;
        self.index_key = None;
        self.index_const = None;
        self.escape_keys.clear();
        self.free_key = None;
        self.lock_key = None;
    }
}

/// One heap allocation recorded in a function frame (for end-of-frame leak
/// detection).
#[derive(Debug, Clone, Copy)]
pub struct HeapObject {
    /// Key the `malloc` event targeted.
    pub key: TrackKey,
    /// Allocation site.
    pub loc: Loc,
    /// Allocation instruction.
    pub inst_id: InstId,
}

/// Data for the frame-return hook (memory-leak finalization).
#[derive(Debug)]
pub struct FrameEndEvent<'a> {
    /// Heap objects allocated in the returning frame.
    pub heap_objects: &'a [HeapObject],
    /// Key of the returned value, if the function returns a variable.
    pub ret_val_key: Option<TrackKey>,
    /// Location of the `return`.
    pub loc: Loc,
    /// Identity of the return terminator.
    pub inst_id: InstId,
}

/// Mutable context handed to checkers: state table, bug sink and counters.
pub struct TrackCtx<'a> {
    /// Shared state table.
    pub states: &'a mut StateTable,
    /// Alias mode (checkers use it for PATA-NA state copying on `MOVE`).
    pub mode: AliasMode,
    /// Candidate-bug sink; the explorer attaches path constraints.
    pub bugs: &'a mut Vec<PendingBug>,
    /// Statistics counters.
    pub stats: &'a mut AnalysisStats,
    /// Size of the alias set behind a key (1 in PATA-NA mode) — used for
    /// the paper's alias-aware vs. unaware typestate accounting (Table 5).
    pub set_size: &'a dyn Fn(TrackKey) -> usize,
    /// Location of the instruction being tracked.
    pub loc: Loc,
    /// Identity of the instruction being tracked.
    pub inst_id: InstId,
}

impl TrackCtx<'_> {
    /// Reads the current state for `key` under `checker`.
    pub fn state(&self, checker: u8, key: TrackKey) -> Option<StateEntry> {
        self.states.get(checker, key)
    }

    /// Transitions `key` to `state`, keeping provenance from `origin` if
    /// given, else using the current instruction. Updates the Table 5
    /// typestate accounting.
    pub fn transition(
        &mut self,
        checker: u8,
        key: TrackKey,
        state: StateVal,
        origin: Option<StateEntry>,
    ) {
        let entry = match origin {
            Some(o) => StateEntry { state, ..o },
            None => StateEntry {
                state,
                origin_loc: self.loc,
                origin_id: self.inst_id,
            },
        };
        self.stats.typestates_aware += 1;
        self.stats.typestates_unaware += (self.set_size)(key).max(1) as u64;
        self.states.set(checker, key, entry);
    }

    /// Copies the state of `src` onto `dst` — the per-variable state
    /// synchronization of traditional typestate tracking (paper Fig. 8a),
    /// used by checkers in PATA-NA mode on `MOVE` instructions.
    pub fn copy_state(&mut self, checker: u8, dst: TrackKey, src: TrackKey) {
        match self.states.get(checker, src) {
            Some(entry) => {
                self.stats.typestates_aware += 1;
                self.stats.typestates_unaware += 1;
                self.states.set(checker, dst, entry);
            }
            None => self.states.clear(checker, dst),
        }
    }

    /// Emits a candidate bug; the path explorer snapshots constraints and,
    /// for alias-aware keys, renders the offending alias set for the
    /// report.
    pub fn report(
        &mut self,
        kind: BugKind,
        key: TrackKey,
        origin: StateEntry,
        extra: Vec<pata_smt::Constraint>,
    ) {
        self.bugs.push(PendingBug {
            kind,
            key: Some(key),
            origin_loc: origin.origin_loc,
            origin_id: origin.origin_id,
            site_loc: self.loc,
            site_id: self.inst_id,
            extra,
        });
    }

    /// Emits a candidate bug whose origin is the current instruction.
    pub fn report_here(&mut self, kind: BugKind, extra: Vec<pata_smt::Constraint>) {
        self.bugs.push(PendingBug {
            kind,
            key: None,
            origin_loc: self.loc,
            origin_id: self.inst_id,
            site_loc: self.loc,
            site_id: self.inst_id,
            extra,
        });
    }
}

/// A candidate bug emitted by a checker during one instruction; the
/// explorer immediately turns it into a [`PossibleBug`] by snapshotting the
/// live constraint trace.
#[derive(Debug, Clone)]
pub struct PendingBug {
    /// Bug type.
    pub kind: BugKind,
    /// The alias set (or variable) the bug is about, for report rendering.
    pub key: Option<TrackKey>,
    /// Where the offending state was established.
    pub origin_loc: Loc,
    /// Establishing instruction.
    pub origin_id: InstId,
    /// Where the bug manifests.
    pub site_loc: Loc,
    /// Manifesting instruction.
    pub site_id: InstId,
    /// Additional bug-condition constraints (e.g. `divisor == 0`).
    pub extra: Vec<pata_smt::Constraint>,
}

impl PendingBug {
    /// Builds a full possible bug by attaching a constraint snapshot and
    /// the rendered alias set.
    pub fn into_possible(
        self,
        constraints: Vec<pata_smt::Constraint>,
        alias_paths: Vec<String>,
        root: pata_ir::FuncId,
    ) -> PossibleBug {
        PossibleBug {
            kind: self.kind,
            origin_loc: self.origin_loc,
            origin_id: self.origin_id,
            site_loc: self.site_loc,
            site_id: self.site_id,
            constraints,
            extra: self.extra,
            alias_paths,
            root,
        }
    }
}

/// A typestate checker: implements one FSM's transitions over instruction,
/// branch and frame-end events. Each built-in checker is 100-200 lines,
/// matching the paper's §5.1/§5.5 claims.
pub trait Checker: Send + Sync {
    /// The bug type this checker detects.
    fn kind(&self) -> BugKind;

    /// The FSM description (Definition 2, Table 2).
    fn fsm(&self) -> FsmSpec;

    /// Instruction hook (after alias-graph update).
    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &pata_ir::InstKind, info: &UpdateInfo);

    /// Taken-branch hook with the resolved predicate.
    fn on_branch(&self, _cx: &mut TrackCtx<'_>, _ev: &BranchEvent) {}

    /// Frame-return hook.
    fn on_frame_end(&self, _cx: &mut TrackCtx<'_>, _ev: &FrameEndEvent<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: usize) -> TrackKey {
        TrackKey::Var(VarId::from_index(i))
    }

    fn entry(state: StateVal) -> StateEntry {
        StateEntry {
            state,
            origin_loc: Loc::default(),
            origin_id: InstId {
                func: pata_ir::FuncId::from_index(0),
                block: pata_ir::BlockId::from_index(0),
                inst: 0,
            },
        }
    }

    #[test]
    fn set_get_clear() {
        let mut t = StateTable::new();
        assert!(t.get(0, key(1)).is_none());
        t.set(0, key(1), entry(2));
        assert_eq!(t.get(0, key(1)).unwrap().state, 2);
        // Checker namespaces are independent.
        assert!(t.get(1, key(1)).is_none());
        t.clear(0, key(1));
        assert!(t.get(0, key(1)).is_none());
    }

    #[test]
    fn rollback_restores_previous_states() {
        let mut t = StateTable::new();
        t.set(0, key(1), entry(1));
        let mark = t.mark();
        t.set(0, key(1), entry(2));
        t.set(0, key(2), entry(3));
        t.clear(0, key(1));
        t.rollback(mark);
        assert_eq!(t.get(0, key(1)).unwrap().state, 1);
        assert!(t.get(0, key(2)).is_none());
    }

    #[test]
    fn fingerprint_tracks_set_clear_rollback() {
        let mut t = StateTable::new();
        t.set(0, key(1), entry(1));
        let fp0 = t.fingerprint();
        let mark = t.mark();
        t.set(0, key(1), entry(2));
        t.set(1, key(2), entry(3));
        let fp1 = t.fingerprint();
        assert_ne!(fp1, fp0);
        t.clear(1, key(2));
        t.rollback(mark);
        assert_eq!(t.fingerprint(), fp0);
        // Replaying the recorded ops reconverges.
        t.set(0, key(1), entry(2));
        t.set(1, key(2), entry(3));
        assert_eq!(t.fingerprint(), fp1);
    }

    #[test]
    fn apply_op_replays_net_journal() {
        let mut t = StateTable::new();
        t.set(0, key(1), entry(1));
        let mark = t.mark();
        t.set(0, key(1), entry(2));
        t.set(1, key(2), entry(3));
        t.clear(0, key(1));
        let ops: Vec<StateOp> = t.ops_since(mark).to_vec();
        let fp_after = t.fingerprint();
        t.rollback(mark);
        for op in &ops {
            t.apply_op(op);
        }
        assert_eq!(t.fingerprint(), fp_after);
        assert!(t.get(0, key(1)).is_none());
        assert_eq!(t.get(1, key(2)).unwrap().state, 3);
    }

    #[test]
    fn nested_rollbacks() {
        let mut t = StateTable::new();
        let m0 = t.mark();
        t.set(0, key(1), entry(1));
        let m1 = t.mark();
        t.set(0, key(1), entry(2));
        t.rollback(m1);
        assert_eq!(t.get(0, key(1)).unwrap().state, 1);
        t.rollback(m0);
        assert!(t.is_empty());
    }
}
