//! A minimal JSON reader/writer for the crate's machine-readable outputs.
//!
//! The workspace is intentionally dependency-free, so the versioned report
//! schema ([`crate::report::Report`]) and the telemetry snapshot
//! ([`crate::telemetry::TelemetrySnapshot`]) serialize through this module
//! instead of an external serde stack. The writer side is a handful of
//! escape/format helpers; the reader side is a small recursive-descent
//! parser producing a [`JsonValue`] tree.
//!
//! The parser accepts standard JSON (RFC 8259) with one simplification:
//! numbers are split into [`JsonValue::Int`] (when the literal is an
//! integer that fits `i64`) and [`JsonValue::Float`] (everything else).
//! That keeps `u32`/`u64` counters exact through a round-trip, which the
//! report and telemetry schemas rely on.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document. The whole input must be one value (plus
    /// surrounding whitespace).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired; the writer never
                            // emits them (it escapes only control chars).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` only ever advances past whole scalars, so it is
                    // always a char boundary of the original &str.
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("bad number literal"))
    }
}

// --------------------------------------------------------------------
// Writer helpers
// --------------------------------------------------------------------

/// Escapes a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted, escaped JSON string.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(JsonValue::parse("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_bool(), Some(false));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn big_counters_survive_exactly() {
        let n = u64::MAX / 2;
        let v = JsonValue::parse(&n.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
    }

    #[test]
    fn escape_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let parsed = JsonValue::parse(&quote(original)).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn unicode_escape() {
        let v = JsonValue::parse(r#""\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn object_lookup_misses() {
        let v = JsonValue::parse(r#"{"a": 1}"#).unwrap();
        assert!(v.get("b").is_none());
        assert!(JsonValue::Null.get("a").is_none());
    }
}
