//! The information collector (paper §4, phase P1).
//!
//! Scans the module's call graph and marks *module interface functions* —
//! functions with no explicit caller in the OS code. These arise from the
//! multi-module, application-driven structure of OSes: driver callbacks are
//! registered through function-pointer struct fields (`.probe =
//! s5p_mfc_probe`, Fig. 1) and are never called directly. They are the
//! roots of PATA's top-down analysis, and the reason points-to analyses
//! miss aliases there (their parameters have empty points-to sets — the
//! paper's difficulty D1).

use pata_ir::{Callee, FuncId, InstKind, Module};

/// The module's direct-call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]` = functions directly called by `f`.
    pub callees: Vec<Vec<FuncId>>,
    /// `callers[f]` = functions directly calling `f`.
    pub callers: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the direct-call graph of `module`.
    pub fn build(module: &Module) -> Self {
        let n = module.functions().len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for func in module.functions() {
            for block in func.blocks() {
                for inst in &block.insts {
                    if let InstKind::Call {
                        callee: Callee::Direct(target),
                        ..
                    } = &inst.kind
                    {
                        let from = func.id().index();
                        if !callees[from].contains(target) {
                            callees[from].push(*target);
                        }
                        if !callers[target.index()].contains(&func.id()) {
                            callers[target.index()].push(func.id());
                        }
                    }
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Total number of direct-call edges (deduplicated per caller/callee
    /// pair) — surfaced as the `collect.call_edges` telemetry counter.
    pub fn edge_count(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }

    /// Functions with no direct caller — the analysis roots. A function
    /// whose only caller is *itself* (direct recursion) still counts: no
    /// other code reaches it, so it must be analyzed from its own entry.
    pub fn interface_functions(&self) -> Vec<FuncId> {
        self.callers
            .iter()
            .enumerate()
            .filter(|(i, cs)| cs.iter().all(|c| c.index() == *i))
            .map(|(i, _)| FuncId::from_index(i))
            .collect()
    }
}

/// Builds the call graph and marks interface functions on the module.
/// Returns the analysis roots.
pub fn mark_interfaces(module: &mut Module) -> Vec<FuncId> {
    mark_interfaces_with_graph(module).0
}

/// Like [`mark_interfaces`], but also returns the call graph so callers
/// (the driver's telemetry, external tooling) can inspect its size without
/// rebuilding it.
pub fn mark_interfaces_with_graph(module: &mut Module) -> (Vec<FuncId>, CallGraph) {
    let cg = CallGraph::build(module);
    let roots = cg.interface_functions();
    for &r in &roots {
        module.function_mut(r).set_interface(true);
    }
    (roots, cg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        pata_cc::compile_one("cg.c", src).unwrap()
    }

    #[test]
    fn registered_probe_is_interface() {
        let mut m = compile(
            r#"
            struct pdev { int id; };
            static int my_probe(struct pdev *p) { return p->id; }
            static int helper(int x) { return x + 1; }
            static int my_init(void) { return helper(2); }
            static struct drv my_driver = { .probe = my_probe, .init = my_init };
            "#,
        );
        let roots = mark_interfaces(&mut m);
        let names: Vec<&str> = roots.iter().map(|&r| m.function(r).name()).collect();
        assert!(names.contains(&"my_probe"));
        assert!(names.contains(&"my_init"));
        assert!(!names.contains(&"helper"), "helper has an explicit caller");
        assert!(m
            .function(m.function_by_name("my_probe").unwrap())
            .is_interface());
        assert!(!m
            .function(m.function_by_name("helper").unwrap())
            .is_interface());
    }

    #[test]
    fn call_graph_edges() {
        let m = compile(
            r#"
            int leaf(int x) { return x; }
            int mid(int x) { return leaf(x) + leaf(x + 1); }
            int top(void) { return mid(3); }
            "#,
        );
        let cg = CallGraph::build(&m);
        let top = m.function_by_name("top").unwrap();
        let mid = m.function_by_name("mid").unwrap();
        let leaf = m.function_by_name("leaf").unwrap();
        assert_eq!(cg.callees[top.index()], vec![mid]);
        assert_eq!(cg.callees[mid.index()], vec![leaf]); // deduplicated
        assert_eq!(cg.callers[leaf.index()], vec![mid]);
        assert_eq!(cg.interface_functions(), vec![top]);
    }

    #[test]
    fn mutual_recursion_has_no_interface() {
        let m = compile(
            r#"
            int pong(int x);
            int ping(int x) { if (x > 0) { return pong(x - 1); } return 0; }
            int pong(int x) { if (x > 0) { return ping(x - 1); } return 1; }
            "#,
        );
        let cg = CallGraph::build(&m);
        assert!(cg.interface_functions().is_empty());
    }
}
