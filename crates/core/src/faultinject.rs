//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] names *sites* in the pipeline where a fault should be
//! injected — a panic inside a root's exploration, an IO error around the
//! store's temp+rename save, a simulated budget trip at a fork point — so
//! the fault-containment machinery (per-root quarantine, the demotion
//! ladder, serve-loop survival, store crash recovery) can be driven from
//! tests, benches and `pata analyze --fault-plan` without any nondeterminism.
//!
//! # Plan syntax
//!
//! A plan is a comma-separated list of entries:
//!
//! ```text
//! site[:label][@hit][~percent]
//! seed=N
//! ```
//!
//! - `site` — where the fault fires (see [`FaultPlan::SITES`]). The site
//!   determines the fault kind: exploration/checker/validation/session
//!   sites panic, `deadline`/`live_bytes` trip the matching resource
//!   budget at the next fork point, and the `store.save*` sites produce
//!   IO errors at the named crash point of the store writer.
//! - `label` — restricts the entry to one occurrence of the site (the
//!   root function name for per-root sites). Omitted = every occurrence.
//! - `@hit` — fire only on the N-th hit of the `(site, label)` counter
//!   (1-based). Omitted = fire on every hit. Hit counts for exploration
//!   sites are deterministic per root; for `@N` with `N > 1` they depend
//!   on the cache configuration, so cross-config byte-identity is only
//!   guaranteed for `@1` and for unconditional entries.
//! - `~percent` — fire probabilistically with the given percentage. The
//!   coin is a pure function of `(seed, site, label, hit)` through the
//!   in-crate splitmix64 mixer, so the outcome is reproducible and
//!   independent of thread timing.
//!
//! Example: `explore:probe_a@1,deadline:probe_b,store.save~50,seed=7`.
//!
//! The canonical rendering of a plan ([`FaultPlan::spec`]) participates in
//! the persistent-store configuration fingerprint: two sessions with
//! different fault plans never share cached results.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a deterministic `fault injected: site[:label]` message.
    Panic,
    /// Return an `io::Error` from the instrumented IO operation.
    IoError,
    /// Trip the per-root wall-clock deadline budget.
    Deadline,
    /// Trip the per-root live-bytes ceiling budget.
    LiveBytes,
}

/// One parsed plan entry.
#[derive(Debug, Clone)]
struct FaultRule {
    site: String,
    /// `None` matches every occurrence of the site.
    label: Option<String>,
    /// 1-based hit number this rule fires on; `None` = every hit.
    hit: Option<u64>,
    /// Firing probability in percent; `None` = always.
    percent: Option<u64>,
}

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// An entry names a site that does not exist.
    UnknownSite(String),
    /// An entry could not be parsed; carries the offending entry.
    Malformed(String),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::UnknownSite(s) => write!(
                f,
                "unknown fault site `{s}` (expected one of: {})",
                FaultPlan::SITES.join(", ")
            ),
            FaultPlanError::Malformed(e) => write!(f, "malformed fault-plan entry `{e}`"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic fault-injection plan. See the module docs for syntax.
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
    /// Canonical spec string (normalized entry order preserved), used by
    /// the configuration fingerprint.
    spec: String,
    /// Per-`(site, label)` hit counters. Behind a mutex: fault checks are
    /// rare (plans exist only in tests/benches) and per-root labels make
    /// the counts independent of cross-root thread interleaving.
    counters: Mutex<HashMap<(String, String), u64>>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("spec", &self.spec)
            .finish()
    }
}

/// The splitmix64 finalizer — the crate's zero-dependency mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl FaultPlan {
    /// Every site the pipeline instruments, in documentation order.
    pub const SITES: [&'static str; 11] = [
        // Per-root panic sites (label = root function name).
        "explore",
        "checker",
        "validate",
        // Per-root resource-budget trips at fork points.
        "deadline",
        "live_bytes",
        // Session boundary (panic caught by AnalysisSession::analyze).
        "session.analyze",
        // Store-save IO faults and crash points (serial, unlabeled).
        "store.save",
        "store.save.before_tmp",
        "store.save.mid_tmp",
        "store.save.before_rename",
        "store.save.after_rename",
    ];

    /// Parses a plan from its textual spec. An empty spec is a valid plan
    /// that never fires.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut rules = Vec::new();
        let mut seed = 0u64;
        let mut canonical: Vec<String> = Vec::new();
        for raw in spec.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(v) = entry.strip_prefix("seed=") {
                seed = v
                    .parse()
                    .map_err(|_| FaultPlanError::Malformed(entry.to_string()))?;
                continue;
            }
            let (head, percent) = match entry.split_once('~') {
                Some((h, p)) => {
                    let pct: u64 = p
                        .parse()
                        .map_err(|_| FaultPlanError::Malformed(entry.to_string()))?;
                    if pct == 0 || pct > 100 {
                        return Err(FaultPlanError::Malformed(entry.to_string()));
                    }
                    (h, Some(pct))
                }
                None => (entry, None),
            };
            let (head, hit) = match head.split_once('@') {
                Some((h, n)) => {
                    let hit: u64 = n
                        .parse()
                        .map_err(|_| FaultPlanError::Malformed(entry.to_string()))?;
                    if hit == 0 {
                        return Err(FaultPlanError::Malformed(entry.to_string()));
                    }
                    (h, Some(hit))
                }
                None => (head, None),
            };
            let (site, label) = match head.split_once(':') {
                Some((s, l)) if !l.is_empty() => (s, Some(l.to_string())),
                Some((s, _)) => (s, None),
                None => (head, None),
            };
            if !Self::SITES.contains(&site) {
                return Err(FaultPlanError::UnknownSite(site.to_string()));
            }
            let mut c = site.to_string();
            if let Some(l) = &label {
                c.push(':');
                c.push_str(l);
            }
            if let Some(h) = hit {
                c.push('@');
                c.push_str(&h.to_string());
            }
            if let Some(p) = percent {
                c.push('~');
                c.push_str(&p.to_string());
            }
            canonical.push(c);
            rules.push(FaultRule {
                site: site.to_string(),
                label,
                hit,
                percent,
            });
        }
        if seed != 0 {
            canonical.push(format!("seed={seed}"));
        }
        Ok(FaultPlan {
            rules,
            seed,
            spec: canonical.join(","),
            counters: Mutex::new(HashMap::new()),
        })
    }

    /// The canonical spec string (normalized; stable across parses of
    /// equivalent inputs). Feeds the configuration fingerprint.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The fault the pipeline should act on at the site, derived from the
    /// site name (see the module docs).
    pub fn action_for(site: &str) -> FaultAction {
        match site {
            "deadline" => FaultAction::Deadline,
            "live_bytes" => FaultAction::LiveBytes,
            s if s.starts_with("store.save") => FaultAction::IoError,
            _ => FaultAction::Panic,
        }
    }

    /// Records one hit of `(site, label)` and reports whether any entry of
    /// the plan fires on it. Deterministic: the hit counter is scoped to
    /// the `(site, label)` pair (per-root sites use the root name as the
    /// label, and a root's exploration is single-threaded), and the
    /// probabilistic coin is a pure function of `(seed, site, label, hit)`.
    pub fn should_fire(&self, site: &str, label: &str) -> bool {
        if !self.rules.iter().any(|r| r.site == site) {
            return false;
        }
        let mut counters = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let hit = counters
            .entry((site.to_string(), label.to_string()))
            .or_insert(0);
        *hit += 1;
        let hit = *hit;
        drop(counters);
        self.rules.iter().any(|r| {
            r.site == site
                && r.label.as_deref().is_none_or(|l| l == label)
                && r.hit.is_none_or(|n| n == hit)
                && r.percent.is_none_or(|p| {
                    let coin = splitmix64(
                        self.seed
                            ^ fnv64(site.as_bytes())
                            ^ fnv64(label.as_bytes()).rotate_left(17)
                            ^ hit,
                    );
                    coin % 100 < p
                })
        })
    }

    /// Resets every hit counter — lets one plan drive repeated runs with
    /// identical firing behavior (the fault-matrix suite re-runs a fixed
    /// plan across thread counts and cache configurations).
    pub fn reset(&self) {
        self.counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// Panics with a deterministic message when the plan fires at a
/// panic-action site. No-op for `None` plans — the production path.
pub fn maybe_panic(plan: Option<&FaultPlan>, site: &str, label: &str) {
    if let Some(plan) = plan {
        if plan.should_fire(site, label) {
            if label.is_empty() {
                panic!("fault injected: {site}");
            }
            panic!("fault injected: {site}:{label}");
        }
    }
}

/// Returns an injected IO error when the plan fires at an IO-action site.
pub fn maybe_io(plan: Option<&FaultPlan>, site: &str) -> std::io::Result<()> {
    if let Some(plan) = plan {
        if plan.should_fire(site, "") {
            return Err(std::io::Error::other(format!("fault injected: {site}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(!plan.should_fire("explore", "root_a"));
        assert_eq!(plan.spec(), "");
    }

    #[test]
    fn site_and_label_match() {
        let plan = FaultPlan::parse("explore:root_a").unwrap();
        assert!(plan.should_fire("explore", "root_a"));
        assert!(!plan.should_fire("explore", "root_b"));
        assert!(!plan.should_fire("checker", "root_a"));
        // Unconditional entries fire on every hit.
        assert!(plan.should_fire("explore", "root_a"));
    }

    #[test]
    fn unlabeled_entry_matches_every_label() {
        let plan = FaultPlan::parse("checker").unwrap();
        assert!(plan.should_fire("checker", "a"));
        assert!(plan.should_fire("checker", "b"));
    }

    #[test]
    fn hit_selector_fires_exactly_once() {
        let plan = FaultPlan::parse("deadline:probe@2").unwrap();
        assert!(!plan.should_fire("deadline", "probe"));
        assert!(plan.should_fire("deadline", "probe"));
        assert!(!plan.should_fire("deadline", "probe"));
        plan.reset();
        assert!(!plan.should_fire("deadline", "probe"));
        assert!(plan.should_fire("deadline", "probe"));
    }

    #[test]
    fn hit_counters_are_per_label() {
        let plan = FaultPlan::parse("explore@1").unwrap();
        assert!(plan.should_fire("explore", "a"));
        // A different label has its own counter, still at hit 1.
        assert!(plan.should_fire("explore", "b"));
        assert!(!plan.should_fire("explore", "a"));
    }

    #[test]
    fn probabilistic_entries_are_deterministic() {
        let run = || {
            let plan = FaultPlan::parse("store.save~50,seed=42").unwrap();
            (0..64)
                .map(|_| plan.should_fire("store.save", ""))
                .collect::<Vec<bool>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same outcomes");
        assert!(a.iter().any(|&f| f), "~50 over 64 trials fires sometimes");
        assert!(!a.iter().all(|&f| f), "…but not always");
        let other = FaultPlan::parse("store.save~50,seed=43").unwrap();
        let b: Vec<bool> = (0..64)
            .map(|_| other.should_fire("store.save", ""))
            .collect();
        assert_ne!(a, b, "different seed, different outcomes");
    }

    #[test]
    fn parse_rejects_unknown_site_and_garbage() {
        assert!(matches!(
            FaultPlan::parse("frobnicate"),
            Err(FaultPlanError::UnknownSite(_))
        ));
        assert!(matches!(
            FaultPlan::parse("explore@zero"),
            Err(FaultPlanError::Malformed(_))
        ));
        assert!(matches!(
            FaultPlan::parse("explore@0"),
            Err(FaultPlanError::Malformed(_))
        ));
        assert!(matches!(
            FaultPlan::parse("explore~101"),
            Err(FaultPlanError::Malformed(_))
        ));
        assert!(matches!(
            FaultPlan::parse("seed=xyz"),
            Err(FaultPlanError::Malformed(_))
        ));
    }

    #[test]
    fn canonical_spec_round_trips() {
        let plan = FaultPlan::parse(" explore:probe_a@1 , store.save~50 ,seed=7").unwrap();
        assert_eq!(plan.spec(), "explore:probe_a@1,store.save~50,seed=7");
        let re = FaultPlan::parse(plan.spec()).unwrap();
        assert_eq!(re.spec(), plan.spec());
    }

    #[test]
    fn actions_derive_from_sites() {
        assert_eq!(FaultPlan::action_for("explore"), FaultAction::Panic);
        assert_eq!(FaultPlan::action_for("deadline"), FaultAction::Deadline);
        assert_eq!(FaultPlan::action_for("live_bytes"), FaultAction::LiveBytes);
        assert_eq!(
            FaultPlan::action_for("store.save.mid_tmp"),
            FaultAction::IoError
        );
    }

    #[test]
    fn maybe_helpers() {
        let plan = FaultPlan::parse("store.save@1,explore:r@1").unwrap();
        assert!(maybe_io(Some(&plan), "store.save").is_err());
        assert!(maybe_io(Some(&plan), "store.save").is_ok());
        assert!(maybe_io(None, "store.save").is_ok());
        let caught = std::panic::catch_unwind(|| maybe_panic(Some(&plan), "explore", "r"));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert_eq!(msg, "fault injected: explore:r");
        maybe_panic(Some(&plan), "explore", "r"); // hit 2: no fire
        maybe_panic(None, "explore", "r");
    }
}
