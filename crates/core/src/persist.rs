//! The on-disk analysis store behind [`crate::AnalysisSession`].
//!
//! A store file is one versioned JSON document (written through the same
//! in-crate [`crate::json`] machinery as the report schema) holding
//! everything a later process needs to skip re-exploring unchanged roots:
//!
//! * a **header** — [`STORE_SCHEMA_VERSION`], a fingerprint of the
//!   verdict-relevant configuration, and a corpus fingerprint over every
//!   function's printed IR;
//! * the **function database** (paper §4 P1: "records function information
//!   in a database") — one `(name, fingerprint)` pair per function, the
//!   input to change detection;
//! * **per-root results** — the stage-1 candidates, exploration counters
//!   and budget note of each analysis root, keyed by the root's *closure
//!   fingerprint* (a hash over every function transitively reachable from
//!   it). A root whose closure fingerprint is unchanged is *clean*: its
//!   exploration is deterministic, so the cached candidates are exactly
//!   what re-exploring would produce;
//! * the **validation cache** — stage-2 conjunction verdicts under their
//!   canonical keys (α-equivalent constraint systems share one entry).
//!
//! Loading is infallible by design: a missing file, malformed JSON, a
//! schema-version bump, a configuration change, or a candidate that no
//! longer resolves against the new module all degrade to a cold start
//! (`None`), never an error. Saving goes through a temp file + rename so a
//! crashed writer leaves either the old store or the new one, not a
//! truncated hybrid (which the infallible loader would shrug off anyway).
//!
//! Function fingerprints hash the function's printed IR
//! ([`pata_ir::function_text`]), which includes module-global variable
//! numbers and source line numbers. That makes them *conservative*: an
//! edit early in a file can shift the printed form of later functions and
//! over-invalidate — but never under-invalidate, which is the soundness
//! direction that matters.

use crate::checkers::BugKind;
use crate::collector::CallGraph;
use crate::config::{AliasMode, AnalysisConfig};
use crate::faultinject::{self, FaultPlan};
use crate::json::{quote, JsonValue};
use crate::report::{DegradedRoot, PossibleBug};
use crate::stats::{AnalysisStats, BudgetNote};
use pata_ir::{function_text, BlockId, FileId, FuncId, InstId, Loc, Module};
use pata_smt::{CmpOp, Constraint, OpaqueOp, SatResult, Term};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Version of the on-disk store schema. Bump on any change to the layout
/// or meaning of the document; [`Store::parse`] treats a mismatch as a
/// cold start, so old stores are silently discarded, never misread.
pub const STORE_SCHEMA_VERSION: u64 = 1;

// --------------------------------------------------------------------
// Fingerprints
// --------------------------------------------------------------------

/// FNV-1a over a byte string. Stable across processes and platforms
/// (unlike `std`'s `DefaultHasher`, which documents no such guarantee) —
/// a hard requirement for fingerprints that outlive the process.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The per-function change-detection fingerprint: FNV-1a over the
/// function's printed IR.
pub(crate) fn function_fingerprint(module: &Module, func: FuncId) -> u64 {
    fnv64(function_text(module, module.function(func)).as_bytes())
}

/// Fingerprint of the verdict-relevant configuration. Two configurations
/// with equal fingerprints produce byte-identical reports on the same
/// input, so cached results can be shared between them. Deliberately
/// excluded: `threads`, `telemetry`, and the verdict-neutral cache/fork
/// switches (`validation_cache`, `exploration_cache`, `callee_memo`,
/// `fork_depth`) — the load-bearing determinism invariant says they never
/// change a verdict.
pub(crate) fn config_fingerprint(config: &AnalysisConfig) -> u64 {
    let mut text = String::new();
    for kind in &config.checkers {
        text.push_str(kind.as_str());
        text.push(',');
    }
    text.push_str(match config.alias_mode {
        AliasMode::PathBased => ";alias=path",
        AliasMode::None => ";alias=none",
    });
    let b = &config.budget;
    text.push_str(&format!(
        ";paths={};insts={};depth={};len={};loops={};validate={};fptrs={}",
        b.max_paths,
        b.max_insts,
        b.max_call_depth,
        b.max_path_len,
        b.loop_iterations,
        config.validate_paths,
        config.resolve_fptrs,
    ));
    // Fault-containment knobs are verdict-relevant: a deadline or ceiling
    // can demote/quarantine a root (changing its stored verdicts), and a
    // fault plan injects failures by design — never share cached results
    // across different settings. Zero/none render as the historical empty
    // suffix so existing stores stay warm.
    if config.root_deadline_ms != 0 {
        text.push_str(&format!(";deadline_ms={}", config.root_deadline_ms));
    }
    if config.max_live_bytes != 0 {
        text.push_str(&format!(";max_live_bytes={}", config.max_live_bytes));
    }
    if let Some(plan) = &config.fault_plan {
        if !plan.spec().is_empty() {
            text.push_str(";faults=");
            text.push_str(plan.spec());
        }
    }
    fnv64(text.as_bytes())
}

/// The function database: every function's name mapped to its
/// fingerprint, sorted by name so serialization (and the corpus
/// fingerprint) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct FunctionDb {
    pub(crate) entries: BTreeMap<String, u64>,
}

impl FunctionDb {
    /// Builds the database for `module`. Returns `None` when two functions
    /// share a name — names are the cross-process identity of functions,
    /// so an ambiguous module cannot be persisted (the session then runs
    /// every root cold, which is always safe).
    #[cfg(test)]
    pub(crate) fn build(module: &Module) -> Option<FunctionDb> {
        Self::build_with_reuse(module, None, 0)
    }

    /// Builds the database for `module` with source-prefix reuse:
    /// functions defined in the first `unchanged_files` source files of
    /// the module reuse their fingerprint from `prev` instead of
    /// re-printing their IR. Returns `None` when two functions share a
    /// name — names are the cross-process identity of functions, so an
    /// ambiguous module cannot be persisted (the session then runs every
    /// root cold, which is always safe).
    ///
    /// This is sound because the printed IR of a function depends only on
    /// its own source file and the files lowered before it (module-global
    /// variable numbering): when every file up to index `unchanged_files`
    /// is byte-identical to the previous request, the IR of the functions
    /// in those files is too. The caller establishes that prefix by
    /// comparing per-file source hashes.
    pub(crate) fn build_with_reuse(
        module: &Module,
        prev: Option<&FunctionDb>,
        unchanged_files: usize,
    ) -> Option<FunctionDb> {
        let mut entries = BTreeMap::new();
        for f in module.functions() {
            let fp = prev
                .filter(|_| f.file().index() < unchanged_files)
                .and_then(|db| db.entries.get(f.name()).copied())
                .unwrap_or_else(|| function_fingerprint(module, f.id()));
            if entries.insert(f.name().to_owned(), fp).is_some() {
                return None;
            }
        }
        Some(FunctionDb { entries })
    }

    /// Hash of the whole corpus — the store-header fingerprint.
    pub(crate) fn corpus_fingerprint(&self) -> u64 {
        let mut text = String::new();
        for (name, fp) in &self.entries {
            text.push_str(name);
            text.push_str(&format!("={fp:016x};"));
        }
        fnv64(text.as_bytes())
    }

    /// How many functions changed (different fingerprint) or appeared
    /// relative to `old`.
    pub(crate) fn changed_since(&self, old: &FunctionDb) -> u64 {
        self.entries
            .iter()
            .filter(|(name, fp)| old.entries.get(*name) != Some(fp))
            .count() as u64
    }
}

/// The closure fingerprint of `root`: a hash over the `(name,
/// fingerprint)` pairs of every function transitively reachable from it
/// through direct calls, in name order. With `resolve_fptrs` the explorer
/// can enter *any* function whose address flows along a path, so the
/// closure conservatively widens to the whole module.
pub(crate) fn root_closure_fp(
    module: &Module,
    graph: &CallGraph,
    root: FuncId,
    resolve_fptrs: bool,
    db: &FunctionDb,
) -> u64 {
    let n = module.functions().len();
    let mut reachable = vec![false; n];
    if resolve_fptrs {
        reachable = vec![true; n];
    } else {
        let mut stack = vec![root];
        reachable[root.index()] = true;
        while let Some(f) = stack.pop() {
            for &callee in &graph.callees[f.index()] {
                if !reachable[callee.index()] {
                    reachable[callee.index()] = true;
                    stack.push(callee);
                }
            }
        }
    }
    let mut names: Vec<&str> = module
        .functions()
        .iter()
        .filter(|f| reachable[f.id().index()])
        .map(|f| f.name())
        .collect();
    names.sort_unstable();
    let mut text = String::new();
    for name in names {
        let fp = db.entries.get(name).copied().unwrap_or(0);
        text.push_str(name);
        text.push_str(&format!("={fp:016x};"));
    }
    fnv64(text.as_bytes())
}

// --------------------------------------------------------------------
// Stored candidates
// --------------------------------------------------------------------

/// One source location in module-independent form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StoredLoc {
    pub(crate) file: String,
    pub(crate) line: u32,
}

/// One instruction identity in module-independent form: function *name*
/// plus block/instruction indices. Indices are stable for an unchanged
/// function (the fingerprint covers the printed block structure), and a
/// failed bounds check at resolution time just marks the root dirty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StoredInst {
    pub(crate) func: String,
    pub(crate) block: usize,
    pub(crate) inst: usize,
}

/// A [`PossibleBug`] detached from module-specific ids, so it can be
/// replayed into a freshly compiled module. SMT symbol ids are kept
/// verbatim: exploration is deterministic, so an unchanged root assigns
/// the same `SymId`s it assigned when the bug was recorded.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StoredBug {
    pub(crate) kind: BugKind,
    pub(crate) origin: StoredInst,
    pub(crate) origin_loc: StoredLoc,
    pub(crate) site: StoredInst,
    pub(crate) site_loc: StoredLoc,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) extra: Vec<Constraint>,
    pub(crate) alias_paths: Vec<String>,
}

impl StoredBug {
    pub(crate) fn from_possible(bug: &PossibleBug, module: &Module) -> StoredBug {
        let inst = |id: InstId| StoredInst {
            func: module.function(id.func).name().to_owned(),
            block: id.block.index(),
            inst: id.inst,
        };
        let loc = |l: Loc| StoredLoc {
            file: module.file(l.file).name.clone(),
            line: l.line,
        };
        StoredBug {
            kind: bug.kind,
            origin: inst(bug.origin_id),
            origin_loc: loc(bug.origin_loc),
            site: inst(bug.site_id),
            site_loc: loc(bug.site_loc),
            constraints: bug.constraints.clone(),
            extra: bug.extra.clone(),
            alias_paths: bug.alias_paths.clone(),
        }
    }

    /// Re-binds the bug to `module`. `None` when a function or file named
    /// in the record no longer exists or an index is out of range — the
    /// caller then treats the whole root as dirty.
    pub(crate) fn resolve(&self, module: &Module, root: FuncId) -> Option<PossibleBug> {
        let inst = |s: &StoredInst| -> Option<InstId> {
            let func = module.function_by_name(&s.func)?;
            let blocks = module.function(func).blocks();
            let block = blocks.get(s.block)?;
            // `inst == len` denotes the terminator.
            if s.inst > block.insts.len() {
                return None;
            }
            Some(InstId {
                func,
                block: BlockId::from_index(s.block),
                inst: s.inst,
            })
        };
        let loc = |s: &StoredLoc| -> Option<Loc> {
            let idx = module.files().iter().position(|f| f.name == s.file)?;
            Some(Loc::new(FileId::from_index(idx), s.line))
        };
        Some(PossibleBug {
            kind: self.kind,
            origin_loc: loc(&self.origin_loc)?,
            origin_id: inst(&self.origin)?,
            site_loc: loc(&self.site_loc)?,
            site_id: inst(&self.site)?,
            constraints: self.constraints.clone(),
            extra: self.extra.clone(),
            alias_paths: self.alias_paths.clone(),
            root,
        })
    }
}

/// One root's persisted exploration result.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StoredRoot {
    /// Root function name.
    pub(crate) root: String,
    /// Closure fingerprint at the time the result was recorded.
    pub(crate) closure_fp: u64,
    /// Stage-1 candidates, in exploration order.
    pub(crate) candidates: Vec<StoredBug>,
    /// The root's exploration counters (`time` is not persisted — replayed
    /// roots contribute zero wall-clock, which is the point).
    pub(crate) stats: AnalysisStats,
    /// Budget-exhaustion note, if the root was truncated.
    pub(crate) note: Option<BudgetNote>,
    /// Degraded entry for a root the fault-containment ladder demoted —
    /// persisted so a warm replay reproduces the report's `degraded`
    /// section byte-identically. Quarantined roots are never persisted
    /// (they re-explore on the next request), so this is only ever the
    /// `"demoted"` record. Absent in older stores (parsed as `None`).
    pub(crate) degraded: Option<DegradedRoot>,
}

// --------------------------------------------------------------------
// The store document
// --------------------------------------------------------------------

/// An in-memory image of the on-disk store.
#[derive(Debug, Clone, Default)]
pub(crate) struct Store {
    /// Fingerprint of the verdict-relevant configuration.
    pub(crate) config_fp: u64,
    /// Corpus fingerprint (hash of the function database).
    pub(crate) corpus_fp: u64,
    /// The function database: `(name, fingerprint)`, sorted by name.
    pub(crate) functions: FunctionDb,
    /// Per-source-file `(name, content hash)` in request order — the
    /// basis for fingerprint prefix reuse (see
    /// [`FunctionDb::build_with_reuse`]).
    pub(crate) files: Vec<(String, u64)>,
    /// Per-root cached results, in the recorded root order.
    pub(crate) roots: Vec<StoredRoot>,
    /// Stage-2 verdicts under canonical keys, sorted by key.
    pub(crate) validation: Vec<(Vec<u8>, SatResult)>,
}

impl Store {
    /// Serializes the store to its versioned JSON document.
    pub(crate) fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema_version\": ");
        out.push_str(&STORE_SCHEMA_VERSION.to_string());
        out.push_str(&format!(
            ", \"config_fingerprint\": \"{:016x}\"",
            self.config_fp
        ));
        out.push_str(&format!(
            ", \"corpus_fingerprint\": \"{:016x}\"",
            self.corpus_fp
        ));
        out.push_str(", \"functions\": [");
        for (i, (name, fp)) in self.functions.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"fp\": \"{fp:016x}\"}}",
                quote(name)
            ));
        }
        out.push_str("], \"files\": [");
        for (i, (name, hash)) in self.files.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"hash\": \"{hash:016x}\"}}",
                quote(name)
            ));
        }
        out.push_str("], \"roots\": [");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_root(&mut out, r);
        }
        out.push_str("], \"validation\": [");
        for (i, (key, verdict)) in self.validation.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"key\": \"");
            for b in key {
                out.push_str(&format!("{b:02x}"));
            }
            out.push_str("\", \"verdict\": \"");
            out.push_str(match verdict {
                SatResult::Sat => "sat",
                SatResult::Unsat => "unsat",
                SatResult::Unknown => "unknown",
            });
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a store document written with the *current* schema version
    /// and `expect_config_fp`. Any deviation — malformed JSON, version or
    /// fingerprint mismatch, missing or mistyped field — yields `None`:
    /// the caller starts cold.
    pub(crate) fn parse(text: &str, expect_config_fp: u64) -> Option<Store> {
        let doc = JsonValue::parse(text).ok()?;
        if doc.get("schema_version")?.as_u64()? != STORE_SCHEMA_VERSION {
            return None;
        }
        let config_fp = parse_hex64(doc.get("config_fingerprint")?.as_str()?)?;
        if config_fp != expect_config_fp {
            return None;
        }
        let corpus_fp = parse_hex64(doc.get("corpus_fingerprint")?.as_str()?)?;
        let mut functions = FunctionDb::default();
        for item in doc.get("functions")?.as_array()? {
            let name = item.get("name")?.as_str()?.to_owned();
            let fp = parse_hex64(item.get("fp")?.as_str()?)?;
            functions.entries.insert(name, fp);
        }
        let mut files = Vec::new();
        for item in doc.get("files")?.as_array()? {
            let name = item.get("name")?.as_str()?.to_owned();
            let hash = parse_hex64(item.get("hash")?.as_str()?)?;
            files.push((name, hash));
        }
        let mut roots = Vec::new();
        for item in doc.get("roots")?.as_array()? {
            roots.push(parse_root(item)?);
        }
        let mut validation = Vec::new();
        for item in doc.get("validation")?.as_array()? {
            let key = parse_hex_bytes(item.get("key")?.as_str()?)?;
            let verdict = match item.get("verdict")?.as_str()? {
                "sat" => SatResult::Sat,
                "unsat" => SatResult::Unsat,
                "unknown" => SatResult::Unknown,
                _ => return None,
            };
            validation.push((key, verdict));
        }
        Some(Store {
            config_fp,
            corpus_fp,
            functions,
            files,
            roots,
            validation,
        })
    }

    /// Loads a store from disk. Infallible: any I/O or parse problem is a
    /// cold start.
    pub(crate) fn load(path: &Path, expect_config_fp: u64) -> Option<Store> {
        let text = std::fs::read_to_string(path).ok()?;
        Store::parse(&text, expect_config_fp)
    }

    /// Writes the store atomically (temp file in the same directory, then
    /// rename), so a crash mid-write never leaves a truncated store.
    /// Production callers thread their fault plan through
    /// [`Store::save_with_faults`]; this fault-free spelling serves tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn save(&self, path: &Path) -> io::Result<()> {
        self.save_with_faults(path, None)
    }

    /// [`Store::save`] with fault-injection crash points around the
    /// temp+rename protocol. Each `store.save.*` site simulates a process
    /// killed at that exact instant (a panic the crash-safety tests catch);
    /// the plain `store.save` site yields an IO error the session treats
    /// like any other failed save. Whatever the crash point, the next
    /// [`Store::load`] sees either the old store, the new store, or a
    /// stray `.tmp` it never reads — all of which cold-start cleanly.
    pub(crate) fn save_with_faults(
        &self,
        path: &Path,
        fault: Option<&FaultPlan>,
    ) -> io::Result<()> {
        faultinject::maybe_io(fault, "store.save")?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        faultinject::maybe_panic(fault, "store.save.before_tmp", "");
        let json = self.to_json();
        if fault.is_some_and(|p| p.should_fire("store.save.mid_tmp", "")) {
            // Simulate dying halfway through the temp write: leave a
            // truncated temp file behind, then "crash".
            let _ = std::fs::write(&tmp, &json.as_bytes()[..json.len() / 2]);
            panic!("fault injected: store.save.mid_tmp");
        }
        std::fs::write(&tmp, json)?;
        faultinject::maybe_panic(fault, "store.save.before_rename", "");
        std::fs::rename(&tmp, path)?;
        faultinject::maybe_panic(fault, "store.save.after_rename", "");
        Ok(())
    }
}

// --------------------------------------------------------------------
// JSON helpers (roots, bugs, constraints, stats)
// --------------------------------------------------------------------

fn parse_hex64(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

fn parse_hex_bytes(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok())
        .collect()
}

fn write_root(out: &mut String, r: &StoredRoot) {
    out.push_str("{\"root\": ");
    out.push_str(&quote(&r.root));
    out.push_str(&format!(", \"closure_fp\": \"{:016x}\"", r.closure_fp));
    out.push_str(", \"candidates\": [");
    for (i, b) in r.candidates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_bug(out, b);
    }
    out.push_str("], \"stats\": ");
    write_stats(out, &r.stats);
    match &r.note {
        Some(n) => {
            out.push_str(&format!(
                ", \"note\": {{\"root\": {}, \"reason\": {}, \"caches_disabled\": {}}}",
                quote(&n.root),
                quote(&n.reason),
                n.caches_disabled
            ));
        }
        None => out.push_str(", \"note\": null"),
    }
    // Emitted only when present so zero-fault stores keep their exact
    // pre-existing byte layout (and older readers' parse shape).
    if let Some(d) = &r.degraded {
        out.push_str(&format!(
            ", \"degraded\": {{\"root\": {}, \"stage\": {}, \"reason\": {}, \"action\": {}}}",
            quote(&d.root),
            quote(&d.stage),
            quote(&d.reason),
            quote(&d.action)
        ));
    }
    out.push('}');
}

fn parse_root(v: &JsonValue) -> Option<StoredRoot> {
    let mut candidates = Vec::new();
    for item in v.get("candidates")?.as_array()? {
        candidates.push(parse_bug(item)?);
    }
    let note = match v.get("note")? {
        JsonValue::Null => None,
        n => Some(BudgetNote {
            root: n.get("root")?.as_str()?.to_owned(),
            reason: n.get("reason")?.as_str()?.to_owned(),
            caches_disabled: n.get("caches_disabled")?.as_bool()?,
        }),
    };
    let degraded = match v.get("degraded") {
        None | Some(JsonValue::Null) => None,
        Some(d) => Some(DegradedRoot {
            root: d.get("root")?.as_str()?.to_owned(),
            stage: d.get("stage")?.as_str()?.to_owned(),
            reason: d.get("reason")?.as_str()?.to_owned(),
            action: d.get("action")?.as_str()?.to_owned(),
        }),
    };
    Some(StoredRoot {
        root: v.get("root")?.as_str()?.to_owned(),
        closure_fp: parse_hex64(v.get("closure_fp")?.as_str()?)?,
        candidates,
        stats: parse_stats(v.get("stats")?)?,
        note,
        degraded,
    })
}

/// The per-root exploration counters worth persisting: everything the
/// explorer itself accumulates. Filter-stage counters (candidates,
/// reported, validation hits) are recomputed live on every run.
const STAT_FIELDS: [&str; 11] = [
    "roots",
    "paths_explored",
    "insts_processed",
    "typestates_aware",
    "typestates_unaware",
    "constraints_aware",
    "constraints_unaware",
    "budget_exhausted_roots",
    "exploration_cache_hits",
    "callee_memo_hits",
    "insts_replayed",
];

fn stat_field(s: &AnalysisStats, name: &str) -> u64 {
    match name {
        "roots" => s.roots,
        "paths_explored" => s.paths_explored,
        "insts_processed" => s.insts_processed,
        "typestates_aware" => s.typestates_aware,
        "typestates_unaware" => s.typestates_unaware,
        "constraints_aware" => s.constraints_aware,
        "constraints_unaware" => s.constraints_unaware,
        "budget_exhausted_roots" => s.budget_exhausted_roots,
        "exploration_cache_hits" => s.exploration_cache_hits,
        "callee_memo_hits" => s.callee_memo_hits,
        "insts_replayed" => s.insts_replayed,
        _ => unreachable!("unknown stat field"),
    }
}

fn stat_field_mut<'a>(s: &'a mut AnalysisStats, name: &str) -> &'a mut u64 {
    match name {
        "roots" => &mut s.roots,
        "paths_explored" => &mut s.paths_explored,
        "insts_processed" => &mut s.insts_processed,
        "typestates_aware" => &mut s.typestates_aware,
        "typestates_unaware" => &mut s.typestates_unaware,
        "constraints_aware" => &mut s.constraints_aware,
        "constraints_unaware" => &mut s.constraints_unaware,
        "budget_exhausted_roots" => &mut s.budget_exhausted_roots,
        "exploration_cache_hits" => &mut s.exploration_cache_hits,
        "callee_memo_hits" => &mut s.callee_memo_hits,
        "insts_replayed" => &mut s.insts_replayed,
        _ => unreachable!("unknown stat field"),
    }
}

fn write_stats(out: &mut String, s: &AnalysisStats) {
    out.push('{');
    for (i, name) in STAT_FIELDS.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": {}", stat_field(s, name)));
    }
    out.push('}');
}

fn parse_stats(v: &JsonValue) -> Option<AnalysisStats> {
    let mut s = AnalysisStats::default();
    for name in STAT_FIELDS {
        *stat_field_mut(&mut s, name) = v.get(name)?.as_u64()?;
    }
    Some(s)
}

fn write_bug(out: &mut String, b: &StoredBug) {
    let inst = |s: &StoredInst| {
        format!(
            "{{\"func\": {}, \"block\": {}, \"inst\": {}}}",
            quote(&s.func),
            s.block,
            s.inst
        )
    };
    let loc = |l: &StoredLoc| format!("{{\"file\": {}, \"line\": {}}}", quote(&l.file), l.line);
    out.push_str("{\"kind\": ");
    out.push_str(&quote(b.kind.as_str()));
    out.push_str(", \"origin\": ");
    out.push_str(&inst(&b.origin));
    out.push_str(", \"origin_loc\": ");
    out.push_str(&loc(&b.origin_loc));
    out.push_str(", \"site\": ");
    out.push_str(&inst(&b.site));
    out.push_str(", \"site_loc\": ");
    out.push_str(&loc(&b.site_loc));
    out.push_str(", \"constraints\": [");
    for (i, c) in b.constraints.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_constraint(out, c);
    }
    out.push_str("], \"extra\": [");
    for (i, c) in b.extra.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_constraint(out, c);
    }
    out.push_str("], \"alias_paths\": [");
    for (i, p) in b.alias_paths.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&quote(p));
    }
    out.push_str("]}");
}

fn parse_bug(v: &JsonValue) -> Option<StoredBug> {
    let inst = |v: &JsonValue| -> Option<StoredInst> {
        Some(StoredInst {
            func: v.get("func")?.as_str()?.to_owned(),
            block: usize::try_from(v.get("block")?.as_u64()?).ok()?,
            inst: usize::try_from(v.get("inst")?.as_u64()?).ok()?,
        })
    };
    let loc = |v: &JsonValue| -> Option<StoredLoc> {
        Some(StoredLoc {
            file: v.get("file")?.as_str()?.to_owned(),
            line: u32::try_from(v.get("line")?.as_u64()?).ok()?,
        })
    };
    let constraints = |name: &str| -> Option<Vec<Constraint>> {
        v.get(name)?
            .as_array()?
            .iter()
            .map(parse_constraint)
            .collect()
    };
    let alias_paths = v
        .get("alias_paths")?
        .as_array()?
        .iter()
        .map(|p| p.as_str().map(str::to_owned))
        .collect::<Option<Vec<_>>>()?;
    Some(StoredBug {
        kind: BugKind::parse(v.get("kind")?.as_str()?)?,
        origin: inst(v.get("origin")?)?,
        origin_loc: loc(v.get("origin_loc")?)?,
        site: inst(v.get("site")?)?,
        site_loc: loc(v.get("site_loc")?)?,
        constraints: constraints("constraints")?,
        extra: constraints("extra")?,
        alias_paths,
    })
}

// --------------------------------------------------------------------
// Constraint / term serialization
// --------------------------------------------------------------------

fn cmp_op_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn parse_cmp_op(s: &str) -> Option<CmpOp> {
    Some(match s {
        "==" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        _ => return None,
    })
}

fn opaque_op_str(op: OpaqueOp) -> &'static str {
    match op {
        OpaqueOp::Mul => "mul",
        OpaqueOp::Div => "div",
        OpaqueOp::Rem => "rem",
        OpaqueOp::And => "and",
        OpaqueOp::Or => "or",
        OpaqueOp::Xor => "xor",
        OpaqueOp::Shl => "shl",
        OpaqueOp::Shr => "shr",
    }
}

fn parse_opaque_op(s: &str) -> Option<OpaqueOp> {
    Some(match s {
        "mul" => OpaqueOp::Mul,
        "div" => OpaqueOp::Div,
        "rem" => OpaqueOp::Rem,
        "and" => OpaqueOp::And,
        "or" => OpaqueOp::Or,
        "xor" => OpaqueOp::Xor,
        "shl" => OpaqueOp::Shl,
        "shr" => OpaqueOp::Shr,
        _ => return None,
    })
}

fn write_constraint(out: &mut String, c: &Constraint) {
    out.push_str(&format!("{{\"op\": \"{}\", \"l\": ", cmp_op_str(c.op)));
    write_term(out, &c.lhs);
    out.push_str(", \"r\": ");
    write_term(out, &c.rhs);
    out.push('}');
}

fn parse_constraint(v: &JsonValue) -> Option<Constraint> {
    Some(Constraint::new(
        parse_cmp_op(v.get("op")?.as_str()?)?,
        parse_term(v.get("l")?)?,
        parse_term(v.get("r")?)?,
    ))
}

fn write_term(out: &mut String, t: &Term) {
    match t {
        Term::Const(v) => out.push_str(&format!("{{\"c\": {v}}}")),
        Term::Sym(s) => out.push_str(&format!("{{\"s\": {}}}", s.0)),
        Term::Add(a, b) => write_binary(out, "+", a, b),
        Term::Sub(a, b) => write_binary(out, "-", a, b),
        Term::Mul(a, b) => write_binary(out, "*", a, b),
        Term::Opaque(op, a, b) => write_binary(out, opaque_op_str(*op), a, b),
        Term::Neg(a) => {
            out.push_str("{\"o\": \"neg\", \"a\": ");
            write_term(out, a);
            out.push('}');
        }
    }
}

fn write_binary(out: &mut String, op: &str, a: &Term, b: &Term) {
    out.push_str(&format!("{{\"o\": \"{op}\", \"a\": "));
    write_term(out, a);
    out.push_str(", \"b\": ");
    write_term(out, b);
    out.push('}');
}

fn parse_term(v: &JsonValue) -> Option<Term> {
    if let Some(c) = v.get("c") {
        return Some(Term::Const(c.as_i64()?));
    }
    if let Some(s) = v.get("s") {
        return Some(Term::Sym(pata_smt::SymId(u32::try_from(s.as_u64()?).ok()?)));
    }
    let op = v.get("o")?.as_str()?;
    let a = parse_term(v.get("a")?)?;
    if op == "neg" {
        return Some(Term::Neg(Box::new(a)));
    }
    let b = parse_term(v.get("b")?)?;
    Some(match op {
        "+" => Term::Add(Box::new(a), Box::new(b)),
        "-" => Term::Sub(Box::new(a), Box::new(b)),
        "*" => Term::Mul(Box::new(a), Box::new(b)),
        other => Term::Opaque(parse_opaque_op(other)?, Box::new(a), Box::new(b)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pata_smt::SymId;

    fn sample_constraint() -> Constraint {
        Constraint::new(
            CmpOp::Le,
            Term::sym(SymId(3)).add(Term::int(-2)).neg(),
            Term::opaque(OpaqueOp::Shr, Term::sym(SymId(1)), Term::int(4))
                .mul(Term::sym(SymId(0)).sub(Term::int(7))),
        )
    }

    fn sample_store() -> Store {
        let mut functions = FunctionDb::default();
        functions.entries.insert("probe".into(), 0xdead_beef);
        functions.entries.insert("helper".into(), 42);
        let corpus_fp = functions.corpus_fingerprint();
        Store {
            config_fp: 7,
            corpus_fp,
            functions,
            files: vec![("a.c".into(), 0xfeed_f00d), ("dir/b.c".into(), 3)],
            roots: vec![StoredRoot {
                root: "probe".into(),
                closure_fp: 0x1234,
                candidates: vec![StoredBug {
                    kind: BugKind::NullPointerDeref,
                    origin: StoredInst {
                        func: "probe".into(),
                        block: 0,
                        inst: 2,
                    },
                    origin_loc: StoredLoc {
                        file: "a.c".into(),
                        line: 10,
                    },
                    site: StoredInst {
                        func: "helper".into(),
                        block: 1,
                        inst: 0,
                    },
                    site_loc: StoredLoc {
                        file: "a.c".into(),
                        line: 14,
                    },
                    constraints: vec![sample_constraint()],
                    extra: vec![],
                    alias_paths: vec!["probe:p".into()],
                }],
                stats: AnalysisStats {
                    roots: 1,
                    paths_explored: 9,
                    insts_processed: 100,
                    ..AnalysisStats::default()
                },
                note: Some(BudgetNote {
                    root: "probe".into(),
                    reason: "max_paths".into(),
                    caches_disabled: false,
                }),
                degraded: Some(DegradedRoot {
                    root: "probe".into(),
                    stage: "explore".into(),
                    reason: "deadline".into(),
                    action: "demoted".into(),
                }),
            }],
            validation: vec![
                (vec![0u8, 255, 16], SatResult::Unsat),
                (vec![1u8], SatResult::Sat),
                (vec![2u8], SatResult::Unknown),
            ],
        }
    }

    #[test]
    fn store_round_trips() {
        let store = sample_store();
        let back = Store::parse(&store.to_json(), store.config_fp).expect("parses");
        assert_eq!(back.config_fp, store.config_fp);
        assert_eq!(back.corpus_fp, store.corpus_fp);
        assert_eq!(back.functions, store.functions);
        assert_eq!(back.files, store.files);
        assert_eq!(back.roots, store.roots);
        assert_eq!(back.validation, store.validation);
        // Byte-stable: serializing the parsed image reproduces the text.
        assert_eq!(back.to_json(), store.to_json());
    }

    #[test]
    fn wrong_config_fingerprint_is_cold_start() {
        let store = sample_store();
        assert!(Store::parse(&store.to_json(), store.config_fp + 1).is_none());
    }

    #[test]
    fn wrong_schema_version_is_cold_start() {
        let text = sample_store()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        assert!(Store::parse(&text, 7).is_none());
    }

    #[test]
    fn truncated_document_is_cold_start() {
        let text = sample_store().to_json();
        for cut in [1, text.len() / 2, text.len() - 1] {
            assert!(
                Store::parse(&text[..cut], 7).is_none(),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: the fingerprint format is part of the store schema.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn config_fingerprint_tracks_verdict_relevant_fields_only() {
        let base = AnalysisConfig::default();
        let base_fp = config_fingerprint(&base);
        // Verdict-neutral switches share the fingerprint…
        let mut neutral = base.clone();
        neutral.threads = 7;
        neutral.telemetry = true;
        neutral.validation_cache = false;
        neutral.exploration_cache = false;
        neutral.callee_memo = false;
        neutral.fork_depth = 0;
        assert_eq!(config_fingerprint(&neutral), base_fp);
        // …verdict-relevant knobs do not.
        let mut relevant = base.clone();
        relevant.budget.loop_iterations = 2;
        assert_ne!(config_fingerprint(&relevant), base_fp);
        let mut relevant = base.clone();
        relevant.validate_paths = false;
        assert_ne!(config_fingerprint(&relevant), base_fp);
        let mut relevant = base.clone();
        relevant.checkers = vec![BugKind::MemoryLeak];
        assert_ne!(config_fingerprint(&relevant), base_fp);
        // Fault-containment knobs are verdict-relevant too…
        let mut relevant = base.clone();
        relevant.root_deadline_ms = 100;
        assert_ne!(config_fingerprint(&relevant), base_fp);
        let mut relevant = base.clone();
        relevant.max_live_bytes = 1 << 20;
        assert_ne!(config_fingerprint(&relevant), base_fp);
        let mut relevant = base.clone();
        relevant.fault_plan = Some(std::sync::Arc::new(
            crate::faultinject::FaultPlan::parse("explore:r@1").unwrap(),
        ));
        assert_ne!(config_fingerprint(&relevant), base_fp);
        // …but an empty plan renders as the historical fingerprint so
        // existing stores stay warm.
        let mut empty = base;
        empty.fault_plan = Some(std::sync::Arc::new(
            crate::faultinject::FaultPlan::parse("").unwrap(),
        ));
        assert_eq!(config_fingerprint(&empty), base_fp);
    }

    #[test]
    fn degraded_field_is_optional_and_backward_compatible() {
        let mut store = sample_store();
        store.roots[0].degraded = None;
        let json = store.to_json();
        assert!(!json.contains("\"degraded\""), "omitted when None");
        let back = Store::parse(&json, store.config_fp).expect("parses");
        assert_eq!(back.roots[0].degraded, None);
    }

    /// Satellite: the store crash-safety matrix. A save killed at any
    /// crash point of the temp+rename protocol leaves the path in a state
    /// the next cold start handles: either the old store, the new store,
    /// or nothing readable — never a truncated document that parses.
    #[test]
    fn save_crash_points_cold_start_cleanly() {
        use crate::faultinject::FaultPlan;
        let dir = std::env::temp_dir().join(format!("pata-crash-matrix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let old = sample_store();
        let mut new = sample_store();
        new.roots[0].closure_fp ^= 0x5555;
        let old_json = old.to_json();
        let new_json = new.to_json();

        for (site, survives_as_new) in [
            ("store.save.before_tmp", false),
            ("store.save.mid_tmp", false),
            ("store.save.before_rename", false),
            ("store.save.after_rename", true),
        ] {
            let path = dir.join(format!("{site}.store"));
            // Baseline: the previous save landed intact.
            old.save(&path).unwrap();
            let plan = FaultPlan::parse(site).unwrap();
            let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                new.save_with_faults(&path, Some(&plan))
            }));
            assert!(killed.is_err(), "{site}: crash point fires");
            // Cold start after the "kill": load never errors, and the
            // surviving content is exactly old-or-new, never a hybrid.
            let text = std::fs::read_to_string(&path).unwrap();
            if survives_as_new {
                assert_eq!(text, new_json, "{site}: rename completed");
            } else {
                assert_eq!(text, old_json, "{site}: old store intact");
            }
            let loaded = Store::load(&path, old.config_fp);
            assert!(loaded.is_some(), "{site}: cold start parses");
            // A retry with no plan finishes the interrupted save.
            new.save(&path).unwrap();
            assert_eq!(std::fs::read_to_string(&path).unwrap(), new_json);
        }

        // The plain `store.save` site is an IO error, not a crash: the
        // caller sees `Err`, the old store is untouched.
        let path = dir.join("ioerror.store");
        old.save(&path).unwrap();
        let plan = FaultPlan::parse("store.save@1").unwrap();
        assert!(new.save_with_faults(&path, Some(&plan)).is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), old_json);
        // Second attempt (hit 2) succeeds.
        new.save_with_faults(&path, Some(&plan)).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), new_json);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn closure_fp_only_reacts_to_reachable_changes() {
        let src = r#"
            int leaf(int x) { return x; }
            int mid(int x) { return leaf(x); }
            int top(void) { return mid(3); }
            int lonely(void) { return 5; }
        "#;
        let m = pata_cc::compile_one("cf.c", src).unwrap();
        let db = FunctionDb::build(&m).unwrap();
        let cg = CallGraph::build(&m);
        let top = m.function_by_name("top").unwrap();
        let lonely = m.function_by_name("lonely").unwrap();
        let top_fp = root_closure_fp(&m, &cg, top, false, &db);
        let lonely_fp = root_closure_fp(&m, &cg, lonely, false, &db);

        // Change `leaf` by pretending its fingerprint moved: top's closure
        // reacts, lonely's does not.
        let mut db2 = db.clone();
        *db2.entries.get_mut("leaf").unwrap() ^= 1;
        assert_ne!(root_closure_fp(&m, &cg, top, false, &db2), top_fp);
        assert_eq!(root_closure_fp(&m, &cg, lonely, false, &db2), lonely_fp);

        // With fptr resolution the closure is the whole module.
        assert_ne!(
            root_closure_fp(&m, &cg, lonely, true, &db2),
            root_closure_fp(&m, &cg, lonely, true, &db)
        );
    }

    #[test]
    fn prefix_reuse_matches_fresh_fingerprints() {
        let first = "int alpha(int x) { return x + 1; }\n";
        let second = "int beta(int *p) { if (p == NULL) { } return *p; }\n";
        let compile = |second_text: &str| {
            let mut cc = pata_cc::Compiler::new();
            cc.add_source("a.c", first);
            cc.add_source("b.c", second_text);
            cc.compile().unwrap()
        };
        let m1 = compile(second);
        let fresh = FunctionDb::build(&m1).unwrap();

        // Unchanged prefix of 2 (both files identical): reused fingerprints
        // equal freshly computed ones even when `prev` holds poison values
        // for functions outside the prefix.
        let reused = FunctionDb::build_with_reuse(&m1, Some(&fresh), 2).unwrap();
        assert_eq!(reused, fresh);

        // Edit the second file: with prefix 1, alpha's fingerprint is
        // reused verbatim and beta's is recomputed, matching a fresh build
        // of the edited module.
        let m2 = compile("int beta(int *p) { if (p == NULL) { return 0; } return *p; }\n");
        let fresh2 = FunctionDb::build(&m2).unwrap();
        let reused2 = FunctionDb::build_with_reuse(&m2, Some(&fresh), 1).unwrap();
        assert_eq!(reused2, fresh2);
        assert_eq!(reused2.entries["alpha"], fresh.entries["alpha"]);
        assert_ne!(reused2.entries["beta"], fresh.entries["beta"]);
    }
}
