//! The path-based alias analysis' central data structure (paper §3.1).
//!
//! An [`AliasGraph`] is the paper's Definition 1: nodes are *alias classes*
//! (sets of variables denoting one abstract object) and edges are labeled
//! with struct fields or the dereference operator, describing how abstract
//! objects are reached from variables — i.e. *access paths*. Variables whose
//! access paths end at the same node are aliases.
//!
//! The graph supports the four update rules of Fig. 5 (`MOVE`, `STORE`,
//! `LOAD`, `GEP`) plus `&x` (address-of) and constant assignment, and an
//! **undo journal**: the path explorer snapshots a [`Mark`] before each
//! branch and rolls the graph back when backtracking, giving each
//! control-flow path its own alias graph without cloning (the paper's
//! "COPY" at branches, Fig. 7, implemented as copy-on-return).

use crate::fingerprint::{hash2, hash4, TAG_EDGE, TAG_VAR_PLACED};
use pata_ir::{Symbol, VarId};
use std::fmt;

/// A node in the alias graph — one alias class / abstract object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An edge label: a struct field, the dereference operator `*`, or an
/// array-element access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Pointer dereference.
    Deref,
    /// Struct-field access (field sensitivity, §3.2).
    Field(Symbol),
    /// Array element with a constant index (`a[0]`).
    ElemConst(i64),
    /// Array element indexed by a variable (`a[i]`). PATA is
    /// array-insensitive (§5.2): the label carries the index *variable*,
    /// so `a[i]` and `a[i]` alias but `a[i+1]` (a fresh temporary each
    /// occurrence) and `a[j]` do not — even when `j == i + 1`, the
    /// paper's documented false-positive source.
    ElemVar(u32),
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Deref => write!(f, "*"),
            Label::Field(s) => write!(f, ".{s}"),
            Label::ElemConst(c) => write!(f, "[{c}]"),
            Label::ElemVar(v) => write!(f, "[%{v}]"),
        }
    }
}

#[derive(Debug, Default, Clone)]
struct NodeData {
    vars: Vec<VarId>,
    out: Vec<(Label, NodeId)>,
}

/// Journal entries. Each entry carries enough to *reverse* the mutation
/// (rollback) and enough to *redo* it against a state identical to the one
/// it was first applied to (callee-summary replay, see
/// [`AliasGraph::apply_op`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// `v` was inserted into `to`; it previously resided in `from`.
    VarMoved {
        v: VarId,
        from: Option<NodeId>,
        to: NodeId,
    },
    /// An edge `n --label--> target` was added.
    EdgeAdded {
        n: NodeId,
        label: Label,
        target: NodeId,
    },
    /// The edge `n --label--> old` was removed.
    EdgeRemoved {
        n: NodeId,
        label: Label,
        old: NodeId,
    },
    /// A fresh node was pushed.
    NodeCreated,
}

/// Fingerprint term for "variable `v` resides in node `n`".
#[inline]
fn fp_var(v: VarId, n: NodeId) -> u64 {
    hash2(TAG_VAR_PLACED, v.index() as u64, n.index() as u64)
}

/// Encodes an edge label into two hashable lanes.
#[inline]
fn label_lanes(label: Label) -> (u64, u64) {
    match label {
        Label::Deref => (0, 0),
        Label::Field(s) => (1, s.index() as u64),
        Label::ElemConst(c) => (2, c as u64),
        Label::ElemVar(v) => (3, u64::from(v)),
    }
}

/// Fingerprint term for the edge `n --label--> target`.
#[inline]
fn fp_edge(n: NodeId, label: Label, target: NodeId) -> u64 {
    let (lk, lv) = label_lanes(label);
    hash4(TAG_EDGE, n.index() as u64, lk, lv, target.index() as u64)
}

/// A rollback point returned by [`AliasGraph::mark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark(usize);

/// The alias graph of Definition 1, with journal-based rollback.
///
/// # Example — the paper's Fig. 4
///
/// ```
/// use pata_core::alias::{AliasGraph, Label};
/// use pata_ir::VarId;
///
/// let mut g = AliasGraph::new();
/// let (x, y, p, q) = (VarId::from_index(0), VarId::from_index(1),
///                     VarId::from_index(2), VarId::from_index(3));
/// // p = &x->f; q = &y->g  (GEP rules) — then p and q made aliases via MOVE.
/// let mut interner = pata_ir::Interner::new();
/// let f = interner.intern("f");
/// let g_field = interner.intern("g");
/// g.handle_gep(p, x, f);
/// g.handle_move(q, p); // q joins p's node
/// // &y->g also reaches that node after updating y's edge:
/// g.handle_gep(q, y, g_field); // q moves … (illustrative)
/// assert!(g.node_of_var(p).is_some());
/// ```
#[derive(Debug, Default, Clone)]
pub struct AliasGraph {
    nodes: Vec<NodeData>,
    /// Variable → node placement, dense by `VarId::index()`. Variable ids
    /// are small module-wide integers and this map sits on the hottest
    /// lookup path of the explorer (`node_of` per operand), so a flat
    /// vector beats any hash map; untouched variables cost one `None`.
    var_node: Vec<Option<NodeId>>,
    journal: Vec<Op>,
    /// Incremental XOR fingerprint over placements and edges (see
    /// [`crate::fingerprint`]); maintained by every mutation and rollback.
    fp: u64,
}

/// What a `STORE` update changed — consumed by typestate tracking, which
/// needs the *previous* deref target (the object being overwritten).
#[derive(Debug, Clone, Copy)]
pub struct StoreInfo {
    /// Node of the stored value after the update (`*addr` aliases it now).
    pub new_target: NodeId,
    /// The node `*addr` referred to before the update, if any.
    pub old_target: Option<NodeId>,
    /// Node of the address operand.
    pub addr_node: NodeId,
}

impl AliasGraph {
    /// Creates an empty graph. Per Fig. 6 the paper seeds one isolated node
    /// per program variable; we create nodes lazily on first touch, which is
    /// observationally equivalent (an untouched variable is trivially in a
    /// singleton alias class).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes ever created (including empty ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The incremental fingerprint of the current placements and edges.
    /// Equal fingerprints mean (modulo 64-bit collisions) literally equal
    /// graphs, including node numbering.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// The journal suffix since `mark` — the *net* mutations, because
    /// intervening rollbacks pop their entries. Used to record callee
    /// effect journals.
    pub(crate) fn ops_since(&self, mark: Mark) -> &[Op] {
        &self.journal[mark.0..]
    }

    /// Redoes a recorded op against a state identical (fingerprint-equal)
    /// to the one it was recorded from. Routed through the journaled
    /// primitives, so replays roll back and fingerprint like live updates;
    /// `from`/`old` fields are recomputed from the live state.
    pub(crate) fn apply_op(&mut self, op: &Op) {
        match *op {
            Op::VarMoved { v, to, .. } => self.place_var(v, to),
            Op::EdgeAdded { n, label, target } => self.add_edge(n, label, target),
            Op::EdgeRemoved { n, label, .. } => self.remove_edge(n, label),
            Op::NodeCreated => {
                self.new_node();
            }
        }
    }

    /// The node a variable currently resides in, if it was ever touched.
    pub fn node_of_var(&self, v: VarId) -> Option<NodeId> {
        self.var_node.get(v.index()).copied().flatten()
    }

    /// An O(1) estimate of the live bytes this graph holds — what a
    /// clone-based branch fork would copy. Counts the node and journal
    /// vectors by element size; per-node `vars`/`out` spill is approximated
    /// by the journal (every placement and edge passed through it).
    pub(crate) fn approx_bytes(&self) -> u64 {
        (self.nodes.len() * std::mem::size_of::<NodeData>()
            + self.var_node.len() * std::mem::size_of::<Option<NodeId>>()
            + self.journal.len() * std::mem::size_of::<Op>()) as u64
    }

    /// Journal length — the undo depth a rollback to the graph's creation
    /// would walk. Exposed for fork telemetry.
    pub(crate) fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// The variables residing in `n` — the length-0 access paths of the
    /// alias set `AliasSet(n)`.
    pub fn vars(&self, n: NodeId) -> &[VarId] {
        &self.nodes[n.index()].vars
    }

    /// Number of variables in the alias set of `n` (at least 1 for nodes
    /// a variable resides in; can drop to 0 after strong updates).
    pub fn alias_set_size(&self, n: NodeId) -> usize {
        self.nodes[n.index()].vars.len()
    }

    /// The target of the `label`-edge out of `n`, if present. Definition 1:
    /// at most one outgoing edge per label.
    pub fn out_edge(&self, n: NodeId, label: Label) -> Option<NodeId> {
        self.nodes[n.index()]
            .out
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, t)| *t)
    }

    /// All outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> &[(Label, NodeId)] {
        &self.nodes[n.index()].out
    }

    // --------------------------------------------------------------
    // Journaled primitive mutations
    // --------------------------------------------------------------

    fn new_node(&mut self) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many alias nodes"));
        self.nodes.push(NodeData::default());
        self.journal.push(Op::NodeCreated);
        id
    }

    fn place_var(&mut self, v: VarId, to: NodeId) {
        let from = self.node_of_var(v);
        if from == Some(to) {
            return;
        }
        if let Some(f) = from {
            self.nodes[f.index()].vars.retain(|&x| x != v);
            self.fp ^= fp_var(v, f);
        }
        self.nodes[to.index()].vars.push(v);
        if self.var_node.len() <= v.index() {
            self.var_node.resize(v.index() + 1, None);
        }
        self.var_node[v.index()] = Some(to);
        self.fp ^= fp_var(v, to);
        self.journal.push(Op::VarMoved { v, from, to });
    }

    fn add_edge(&mut self, n: NodeId, label: Label, target: NodeId) {
        debug_assert!(self.out_edge(n, label).is_none(), "duplicate label edge");
        self.nodes[n.index()].out.push((label, target));
        self.fp ^= fp_edge(n, label, target);
        self.journal.push(Op::EdgeAdded { n, label, target });
    }

    fn remove_edge(&mut self, n: NodeId, label: Label) {
        let data = &mut self.nodes[n.index()];
        if let Some(pos) = data.out.iter().position(|(l, _)| *l == label) {
            let (_, old) = data.out.remove(pos);
            self.fp ^= fp_edge(n, label, old);
            self.journal.push(Op::EdgeRemoved { n, label, old });
        }
    }

    /// The node for `v`, creating a fresh singleton lazily.
    pub fn node_of(&mut self, v: VarId) -> NodeId {
        if let Some(n) = self.node_of_var(v) {
            return n;
        }
        let n = self.new_node();
        self.place_var(v, n);
        n
    }

    /// Detaches `v` from its current alias class into a fresh singleton
    /// node — the strong update applied when `v` is redefined.
    pub fn detach_to_fresh(&mut self, v: VarId) -> NodeId {
        let n = self.new_node();
        self.place_var(v, n);
        n
    }

    // --------------------------------------------------------------
    // Fig. 5 rules
    // --------------------------------------------------------------

    /// `HandleMOVE(v1 = v2)`: `v1` leaves its node and joins `v2`'s; they
    /// become aliases. Returns the shared node.
    pub fn handle_move(&mut self, dst: VarId, src: VarId) -> NodeId {
        let n2 = self.node_of(src);
        self.place_var(dst, n2);
        n2
    }

    /// `HandleSTORE(*v2 = v1)`: the `*`-edge out of `v2`'s node is
    /// retargeted to `v1`'s node, so the access path `*v2` aliases `v1`.
    pub fn handle_store(&mut self, addr: VarId, val: VarId) -> StoreInfo {
        let n1 = self.node_of(val);
        let n2 = self.node_of(addr);
        let old = self.out_edge(n2, Label::Deref);
        if old.is_some() {
            self.remove_edge(n2, Label::Deref);
        }
        // Self-edge guard: *p = p collapses; keep the edge anyway (legal in
        // the graph, represents a self-referential object).
        if self.out_edge(n2, Label::Deref).is_none() {
            self.add_edge(n2, Label::Deref, n1);
        }
        StoreInfo {
            new_target: n1,
            old_target: old,
            addr_node: n2,
        }
    }

    /// Stores a constant through a pointer: `*v2 = c`. The target becomes a
    /// fresh node representing the constant object; the caller records the
    /// matching SMT constraint and (for `NULL`) the `ass_null` event.
    pub fn handle_store_const(&mut self, addr: VarId) -> StoreInfo {
        let n2 = self.node_of(addr);
        let old = self.out_edge(n2, Label::Deref);
        if old.is_some() {
            self.remove_edge(n2, Label::Deref);
        }
        let nc = self.new_node();
        self.add_edge(n2, Label::Deref, nc);
        StoreInfo {
            new_target: nc,
            old_target: old,
            addr_node: n2,
        }
    }

    /// `HandleLOAD(v1 = *v2)`: `v1` joins the `*`-target of `v2`'s node
    /// (creating the edge to a fresh node first if absent), so `v1` and
    /// `*v2` are aliases. Returns `v1`'s node.
    pub fn handle_load(&mut self, dst: VarId, addr: VarId) -> NodeId {
        let n2 = self.node_of(addr);
        match self.out_edge(n2, Label::Deref) {
            Some(nx) => {
                self.place_var(dst, nx);
                nx
            }
            None => {
                // Strong update: dst leaves its old class into a fresh node
                // that now also represents *addr (SSA-equivalent of the
                // paper's rule, which assumes a fresh temporary).
                let n1 = self.detach_to_fresh(dst);
                self.add_edge(n2, Label::Deref, n1);
                n1
            }
        }
    }

    /// `HandleGEP(v1 = &v2->f)`: like LOAD but along a field edge.
    pub fn handle_gep(&mut self, dst: VarId, base: VarId, field: Symbol) -> NodeId {
        let n2 = self.node_of(base);
        let label = Label::Field(field);
        match self.out_edge(n2, label) {
            Some(nx) => {
                self.place_var(dst, nx);
                nx
            }
            None => {
                let n1 = self.detach_to_fresh(dst);
                self.add_edge(n2, label, n1);
                n1
            }
        }
    }

    /// `v1 = &v2`: `v1` gets a fresh node with a `*`-edge to `v2`'s node,
    /// so `*v1` aliases `v2`.
    pub fn handle_addr_of(&mut self, dst: VarId, src: VarId) -> NodeId {
        let n_src = self.node_of(src);
        let n1 = self.detach_to_fresh(dst);
        self.add_edge(n1, Label::Deref, n_src);
        n1
    }

    /// `v = c`: `v` leaves its alias class for a fresh node representing
    /// the constant. Returns the fresh node.
    pub fn handle_const(&mut self, dst: VarId) -> NodeId {
        self.detach_to_fresh(dst)
    }

    /// `v1 = &v2[i]`: like GEP, but along an element label derived from
    /// the index *expression* — the paper's array-insensitivity (§5.2):
    /// syntactically identical indices alias, semantically equal but
    /// syntactically distinct ones do not.
    pub fn handle_index(&mut self, dst: VarId, base: VarId, label: Label) -> NodeId {
        let n2 = self.node_of(base);
        match self.out_edge(n2, label) {
            Some(nx) => {
                self.place_var(dst, nx);
                nx
            }
            None => {
                let n1 = self.detach_to_fresh(dst);
                self.add_edge(n2, label, n1);
                n1
            }
        }
    }

    // --------------------------------------------------------------
    // Rollback
    // --------------------------------------------------------------

    /// Snapshots the current state.
    pub fn mark(&self) -> Mark {
        Mark(self.journal.len())
    }

    /// Rolls back every mutation made after `mark`.
    pub fn rollback(&mut self, mark: Mark) {
        while self.journal.len() > mark.0 {
            match self.journal.pop().unwrap() {
                Op::VarMoved { v, from, to } => {
                    self.nodes[to.index()].vars.retain(|&x| x != v);
                    self.fp ^= fp_var(v, to);
                    match from {
                        Some(f) => {
                            self.nodes[f.index()].vars.push(v);
                            self.var_node[v.index()] = Some(f);
                            self.fp ^= fp_var(v, f);
                        }
                        None => {
                            self.var_node[v.index()] = None;
                        }
                    }
                }
                Op::EdgeAdded { n, label, target } => {
                    let data = &mut self.nodes[n.index()];
                    if let Some(pos) = data.out.iter().position(|(l, _)| *l == label) {
                        data.out.remove(pos);
                    }
                    self.fp ^= fp_edge(n, label, target);
                }
                Op::EdgeRemoved { n, label, old } => {
                    self.nodes[n.index()].out.push((label, old));
                    self.fp ^= fp_edge(n, label, old);
                }
                Op::NodeCreated => {
                    let node = self.nodes.pop().expect("journal/node mismatch");
                    debug_assert!(node.vars.is_empty(), "rollback order violated");
                }
            }
        }
    }

    /// Enumerates the access paths of `AliasSet(n)` up to `max_len` labels —
    /// used for human-readable reports (Example 1 / Fig. 4 of the paper).
    pub fn access_paths(&self, n: NodeId, max_len: usize) -> Vec<AccessPath> {
        let mut out = Vec::new();
        // Length 0: variables residing in n.
        for &v in self.vars(n) {
            out.push(AccessPath {
                base: v,
                labels: Vec::new(),
            });
        }
        if max_len == 0 {
            return out;
        }
        // Longer paths: BFS backwards over incoming edges.
        let mut frontier: Vec<(NodeId, Vec<Label>)> = vec![(n, Vec::new())];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (target, suffix) in &frontier {
                for (src_idx, data) in self.nodes.iter().enumerate() {
                    for (label, t) in &data.out {
                        if t == target {
                            let mut labels = vec![*label];
                            labels.extend(suffix.iter().copied());
                            let src = NodeId(src_idx as u32);
                            for &v in &self.nodes[src_idx].vars {
                                out.push(AccessPath {
                                    base: v,
                                    labels: labels.clone(),
                                });
                            }
                            next.push((src, labels));
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }
}

/// An access path: a base variable followed by edge labels (paper §3.1,
/// after Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPath {
    /// The variable the path starts from.
    pub base: VarId,
    /// The labels walked from the base's node.
    pub labels: Vec<Label>,
}

impl AccessPath {
    /// Renders like `*(&x->f)` / `p` given a variable-name resolver.
    pub fn render(
        &self,
        name_of: impl Fn(VarId) -> String,
        interner: &pata_ir::Interner,
    ) -> String {
        let mut s = name_of(self.base);
        for l in &self.labels {
            match l {
                Label::Deref => s = format!("*({s})"),
                Label::Field(f) => s = format!("&({s})->{}", interner.resolve(*f)),
                Label::ElemConst(c) => s = format!("&({s})[{c}]"),
                Label::ElemVar(v) => s = format!("&({s})[%{v}]"),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn move_makes_aliases() {
        let mut g = AliasGraph::new();
        let n = g.handle_move(v(0), v(1));
        assert_eq!(g.node_of_var(v(0)), Some(n));
        assert_eq!(g.node_of_var(v(1)), Some(n));
        assert_eq!(g.alias_set_size(n), 2);
    }

    #[test]
    fn gep_load_chain_matches_fig7() {
        // foo: r = &(p->s); t = *r  — after this, t and *(&p->s) alias.
        let mut g = AliasGraph::new();
        let mut interner = pata_ir::Interner::new();
        let s = interner.intern("s");
        let (p, r, t) = (v(0), v(1), v(2));
        let nr = g.handle_gep(r, p, s);
        let nt = g.handle_load(t, r);
        assert_eq!(g.node_of_var(r), Some(nr));
        assert_eq!(g.out_edge(nr, Label::Deref), Some(nt));
        // A second function's identical chain reaches the SAME nodes
        // (bar: r2 = &(p2->s) with p2 = p; t2 = *r2).
        let (p2, r2, t2) = (v(3), v(4), v(5));
        g.handle_move(p2, p);
        let nr2 = g.handle_gep(r2, p2, s);
        let nt2 = g.handle_load(t2, r2);
        assert_eq!(nr2, nr, "field edge is shared through the alias class");
        assert_eq!(nt2, nt, "t and t2 are aliases — the paper's key insight");
    }

    #[test]
    fn store_retargets_deref() {
        let mut g = AliasGraph::new();
        let (p, a, b, t) = (v(0), v(1), v(2), v(3));
        let info1 = g.handle_store(p, a);
        assert_eq!(info1.old_target, None);
        let info2 = g.handle_store(p, b);
        assert_eq!(info2.old_target, Some(g.node_of(a)));
        // Loading now sees b.
        let nt = g.handle_load(t, p);
        assert_eq!(nt, g.node_of(b));
    }

    #[test]
    fn load_without_edge_creates_fresh_target() {
        let mut g = AliasGraph::new();
        let (p, t) = (v(0), v(1));
        let nt = g.handle_load(t, p);
        let np = g.node_of(p);
        assert_eq!(g.out_edge(np, Label::Deref), Some(nt));
        // Second load through an alias sees the same node.
        let (q, u) = (v(2), v(3));
        g.handle_move(q, p);
        let nu = g.handle_load(u, q);
        assert_eq!(nu, nt);
    }

    #[test]
    fn addr_of_roundtrip() {
        let mut g = AliasGraph::new();
        let (x, p, y) = (v(0), v(1), v(2));
        g.handle_addr_of(p, x);
        let ny = g.handle_load(y, p); // y = *(&x) == x
        assert_eq!(ny, g.node_of(x));
    }

    #[test]
    fn const_detaches() {
        let mut g = AliasGraph::new();
        let (a, b) = (v(0), v(1));
        let shared = g.handle_move(a, b);
        let fresh = g.handle_const(a);
        assert_ne!(shared, fresh);
        assert_eq!(g.alias_set_size(shared), 1); // only b remains
    }

    #[test]
    fn one_edge_per_label_invariant() {
        let mut g = AliasGraph::new();
        let mut interner = pata_ir::Interner::new();
        let f = interner.intern("f");
        let (p, a, b) = (v(0), v(1), v(2));
        g.handle_gep(a, p, f);
        g.handle_gep(b, p, f);
        let n = g.node_of(p);
        let count = g
            .out_edges(n)
            .iter()
            .filter(|(l, _)| matches!(l, Label::Field(_)))
            .count();
        assert_eq!(count, 1);
        // And both a and b live at the single target.
        assert_eq!(g.node_of_var(a), g.node_of_var(b));
    }

    #[test]
    fn rollback_restores_everything() {
        let mut g = AliasGraph::new();
        let mut interner = pata_ir::Interner::new();
        let f = interner.intern("f");
        let (p, q, r) = (v(0), v(1), v(2));
        g.handle_move(q, p);
        let mark = g.mark();
        let nodes_before = g.node_count();
        let q_node = g.node_of_var(q);

        g.handle_gep(r, q, f);
        g.handle_const(q);
        g.handle_store(p, r);
        assert_ne!(g.node_of_var(q), q_node);

        g.rollback(mark);
        assert_eq!(g.node_count(), nodes_before);
        assert_eq!(g.node_of_var(q), q_node);
        assert_eq!(g.node_of_var(r), None);
        assert_eq!(g.out_edges(q_node.unwrap()).len(), 0);
    }

    #[test]
    fn rollback_to_empty() {
        let mut g = AliasGraph::new();
        let mark = g.mark();
        g.handle_move(v(0), v(1));
        g.handle_store(v(0), v(2));
        g.rollback(mark);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.node_of_var(v(0)), None);
    }

    #[test]
    fn access_paths_of_fig4() {
        // x --f--> n3 <-- p,q ; n3 --*--> n4 {s}
        let mut g = AliasGraph::new();
        let mut interner = pata_ir::Interner::new();
        let f = interner.intern("f");
        let (x, p, q, s) = (v(0), v(1), v(2), v(3));
        g.handle_gep(p, x, f);
        g.handle_move(q, p);
        g.handle_store(p, s);
        let n4 = g.node_of(s);
        let paths = g.access_paths(n4, 2);
        // s itself, *p, *q, *(&x->f)
        assert!(paths.iter().any(|ap| ap.base == s && ap.labels.is_empty()));
        assert!(paths
            .iter()
            .any(|ap| ap.base == p && ap.labels == vec![Label::Deref]));
        assert!(paths
            .iter()
            .any(|ap| ap.base == q && ap.labels == vec![Label::Deref]));
        assert!(paths
            .iter()
            .any(|ap| ap.base == x && ap.labels == vec![Label::Field(f), Label::Deref]));
    }

    #[test]
    fn fingerprint_tracks_rollback_and_reconvergence() {
        let mut g = AliasGraph::new();
        let mut interner = pata_ir::Interner::new();
        let f = interner.intern("f");
        g.handle_move(v(1), v(0));
        let fp_before = g.fingerprint();
        let mark = g.mark();
        g.handle_gep(v(2), v(1), f);
        g.handle_store(v(0), v(2));
        assert_ne!(g.fingerprint(), fp_before);
        g.rollback(mark);
        assert_eq!(g.fingerprint(), fp_before);
        // Re-applying the same mutations reconverges to the same value.
        g.handle_gep(v(2), v(1), f);
        g.handle_store(v(0), v(2));
        let fp_redo = g.fingerprint();
        g.rollback(mark);
        g.handle_gep(v(2), v(1), f);
        g.handle_store(v(0), v(2));
        assert_eq!(g.fingerprint(), fp_redo);
    }

    #[test]
    fn apply_op_replays_recorded_journal() {
        let mut interner = pata_ir::Interner::new();
        let f = interner.intern("f");
        // Record the net effect of a callee-like mutation burst.
        let mut g = AliasGraph::new();
        g.handle_move(v(1), v(0));
        let entry = g.mark();
        g.handle_gep(v(2), v(1), f);
        g.handle_store(v(0), v(2));
        let ops: Vec<Op> = g.ops_since(entry).to_vec();
        let fp_after = g.fingerprint();
        // Roll back to the entry state and replay the recorded ops.
        g.rollback(entry);
        for op in &ops {
            g.apply_op(op);
        }
        assert_eq!(g.fingerprint(), fp_after);
        let n1 = g.node_of(v(1));
        assert_eq!(g.node_of_var(v(2)), g.out_edge(n1, Label::Field(f)));
        // The replay journaled like live updates: rollback restores entry.
        let fp_entry = {
            let mut h = AliasGraph::new();
            h.handle_move(v(1), v(0));
            h.fingerprint()
        };
        g.rollback(entry);
        assert_eq!(g.fingerprint(), fp_entry);
    }

    #[test]
    fn store_self_reference() {
        let mut g = AliasGraph::new();
        let p = v(0);
        let info = g.handle_store(p, p); // *p = p
        let np = g.node_of(p);
        assert_eq!(info.new_target, np);
        assert_eq!(g.out_edge(np, Label::Deref), Some(np));
    }
}
