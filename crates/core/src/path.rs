//! The path explorer: depth-first control-flow-path enumeration with
//! in-lockstep alias-graph updates (§3.1, Fig. 6), typestate tracking
//! (§3.2) and SMT-constraint collection for later path validation (§3.3).
//!
//! ## Traversal (paper Fig. 6)
//!
//! Analysis starts at a *module interface function* and walks the CFG
//! depth-first. At a conditional branch the current state (alias graph,
//! typestates, condition definitions, symbols, constraint trace) is marked,
//! one successor is fully explored, and the state is rolled back before the
//! other successor — the paper's per-path "COPY" of the alias graph (Fig. 7)
//! implemented with undo journals instead of clones.
//!
//! Loops and recursion are unrolled once: a successor block already on the
//! current within-frame DFS stack is not re-entered, and a callee already on
//! the call stack is treated as opaque (the paper's Fig. 6 lines 32-38 and
//! §3.1 soundness discussion).
//!
//! ## Calls (paper Fig. 6, HandleCALL)
//!
//! A direct call is inlined: actual arguments `MOVE` into formal parameters
//! (making them aliases), the callee is explored as a continuation of the
//! same path, and its `return` value `MOVE`s into the caller's destination.
//! External and indirect callees are opaque (PATA does not resolve
//! function pointers, §7); their pointer arguments conservatively escape.
//!
//! ## Constraints (paper §3.3, Table 3)
//!
//! Every alias set maps to one SMT symbol (Def. 4). `MOVE`/`LOAD`/`GEP`
//! therefore emit *no* constraints — the symbol identity makes the explicit
//! copy equalities and the implicit field equalities of Fig. 9 hold by
//! construction; the explorer counts what an alias-unaware encoding would
//! have emitted instead (Table 5's "SMT constraints unaware" column).

use crate::alias::{AliasGraph, Label, Mark as GraphMark, NodeId};
use crate::checkers::ml;
use crate::config::{AliasMode, AnalysisConfig};
use crate::report::PossibleBug;
use crate::stats::AnalysisStats;
use crate::typestate::{
    BranchEvent, Checker, FrameEndEvent, HeapObject, OperandKey, PendingBug, StateMark, StateTable,
    TrackCtx, TrackKey,
};
use pata_ir::{
    BlockId, Callee, CmpOp, ConstVal, FuncId, Inst, InstId, InstKind, Loc, Module, Operand,
    Terminator, VarId,
};
use pata_smt::{CmpOp as SmtOp, Constraint, SymId, Term};
use std::collections::HashMap;

/// The definition of a branch-condition temporary (`c = a < b`).
#[derive(Debug, Clone, Copy)]
struct PredDef {
    op: CmpOp,
    lhs: Operand,
    rhs: Operand,
}

/// One inlined function activation.
#[derive(Debug)]
struct Frame {
    func: FuncId,
    /// Per-block visit counts on the current DFS stack within this frame
    /// (the loop cut: a block may appear `loop_iterations + 1` times on a
    /// path, letting a loop body run `loop_iterations` times and the path
    /// still leave through the header's exit edge).
    visited: HashMap<BlockId, u32>,
    /// Heap objects allocated while this frame was active.
    heap_objects: Vec<HeapObject>,
}

impl Frame {
    fn new(func: FuncId) -> Self {
        Frame {
            func,
            visited: HashMap::new(),
            heap_objects: Vec::new(),
        }
    }
}

/// A pending return site while a callee is being explored.
#[derive(Debug, Clone, Copy)]
struct Cont {
    func: FuncId,
    block: BlockId,
    next_inst: usize,
    dst: Option<VarId>,
}

/// A combined rollback point across all journaled structures.
#[derive(Debug, Clone)]
struct FullMark {
    graph: GraphMark,
    states: StateMark,
    conds: usize,
    syms: usize,
    fptrs: usize,
    trace: usize,
    heap_lens: Vec<usize>,
}

/// The per-root path explorer. Construct one per analysis root via
/// [`Explorer::new`] and run [`Explorer::explore`].
pub struct Explorer<'a> {
    module: &'a Module,
    config: &'a AnalysisConfig,
    checkers: &'a [Box<dyn Checker>],

    graph: AliasGraph,
    states: StateTable,
    cond_defs: HashMap<VarId, PredDef>,
    cond_journal: Vec<(VarId, Option<PredDef>)>,
    syms: HashMap<TrackKey, SymId>,
    sym_journal: Vec<(TrackKey, Option<SymId>)>,
    /// Function addresses pinned to alias sets along the current path
    /// (the §7 function-pointer extension; populated by `FuncAddr`).
    fptrs: HashMap<TrackKey, FuncId>,
    fptr_journal: Vec<(TrackKey, Option<FuncId>)>,
    next_sym: u32,
    trace: Vec<Constraint>,

    frames: Vec<Frame>,
    call_stack: Vec<FuncId>,

    root: FuncId,
    exhausted: bool,
    pending: Vec<PendingBug>,
    seen: HashMap<(crate::checkers::BugKind, InstId, InstId), u8>,
    candidates: Vec<PossibleBug>,
    /// Counters for this root (merged by the driver).
    pub stats: AnalysisStats,
    /// Telemetry gate, latched once from `config.telemetry` at
    /// construction: the per-instruction cost when disabled is one branch.
    tel_enabled: bool,
    /// Alias-graph updates by rule, indexed by [`ALIAS_OP_NAMES`].
    alias_ops: [u64; ALIAS_OP_NAMES.len()],
}

/// Labels for the `alias.op` telemetry counter, in `alias_ops` index order.
pub(crate) const ALIAS_OP_NAMES: [&str; 7] =
    ["move", "const", "load", "store", "gep", "addr", "index"];

/// The output of exploring one root.
pub struct ExploreResult {
    /// Candidate bugs (already path-locally deduplicated).
    pub candidates: Vec<PossibleBug>,
    /// This root's statistics.
    pub stats: AnalysisStats,
    /// Alias-graph updates by rule, in move/const/load/store/gep/addr/index
    /// order; all zero unless [`crate::AnalysisConfig::telemetry`] is set.
    /// Plain counters rather than a sink: the driver sums arrays per worker
    /// and materializes labeled metrics once per run, keeping the per-root
    /// cost away from map operations.
    pub alias_ops: [u64; 7],
}

impl<'a> Explorer<'a> {
    /// Creates an explorer for `root`.
    pub fn new(
        module: &'a Module,
        config: &'a AnalysisConfig,
        checkers: &'a [Box<dyn Checker>],
        root: FuncId,
    ) -> Self {
        Explorer {
            module,
            config,
            checkers,
            graph: AliasGraph::new(),
            states: StateTable::new(),
            cond_defs: HashMap::new(),
            cond_journal: Vec::new(),
            syms: HashMap::new(),
            sym_journal: Vec::new(),
            fptrs: HashMap::new(),
            fptr_journal: Vec::new(),
            next_sym: 0,
            trace: Vec::new(),
            frames: Vec::new(),
            call_stack: Vec::new(),
            root,
            exhausted: false,
            pending: Vec::new(),
            seen: HashMap::new(),
            candidates: Vec::new(),
            stats: AnalysisStats::default(),
            tel_enabled: config.telemetry,
            alias_ops: [0; ALIAS_OP_NAMES.len()],
        }
    }

    /// Runs the exploration and returns candidates plus statistics.
    pub fn explore(mut self) -> ExploreResult {
        self.frames.push(Frame::new(self.root));
        self.call_stack.push(self.root);
        let entry = self.module.function(self.root).entry();
        let mut conts = Vec::new();
        self.exec_block(self.root, entry, &mut conts);
        if self.exhausted {
            self.stats.budget_exhausted_roots += 1;
        }
        self.stats.roots += 1;
        ExploreResult {
            candidates: self.candidates,
            stats: self.stats,
            alias_ops: self.alias_ops,
        }
    }

    /// Counts one alias-graph update of rule `op` (index into
    /// [`ALIAS_OP_NAMES`]). Inlined into the already-taken instruction
    /// arms so the disabled cost is one predicted branch, with no second
    /// dispatch on the instruction kind.
    #[inline]
    fn tally_alias_op(&mut self, op: usize) {
        if self.tel_enabled {
            self.alias_ops[op] += 1;
        }
    }

    // ==============================================================
    // Marks & rollback across all journals
    // ==============================================================

    fn full_mark(&self) -> FullMark {
        FullMark {
            graph: self.graph.mark(),
            states: self.states.mark(),
            conds: self.cond_journal.len(),
            syms: self.sym_journal.len(),
            fptrs: self.fptr_journal.len(),
            trace: self.trace.len(),
            heap_lens: self.frames.iter().map(|f| f.heap_objects.len()).collect(),
        }
    }

    fn full_rollback(&mut self, mark: &FullMark) {
        self.graph.rollback(mark.graph);
        self.states.rollback(mark.states);
        while self.cond_journal.len() > mark.conds {
            let (v, old) = self.cond_journal.pop().unwrap();
            match old {
                Some(p) => {
                    self.cond_defs.insert(v, p);
                }
                None => {
                    self.cond_defs.remove(&v);
                }
            }
        }
        while self.sym_journal.len() > mark.syms {
            let (k, old) = self.sym_journal.pop().unwrap();
            match old {
                Some(s) => {
                    self.syms.insert(k, s);
                }
                None => {
                    self.syms.remove(&k);
                }
            }
        }
        while self.fptr_journal.len() > mark.fptrs {
            let (k, old) = self.fptr_journal.pop().unwrap();
            match old {
                Some(f) => {
                    self.fptrs.insert(k, f);
                }
                None => {
                    self.fptrs.remove(&k);
                }
            }
        }
        self.trace.truncate(mark.trace);
        for (frame, &len) in self.frames.iter_mut().zip(&mark.heap_lens) {
            frame.heap_objects.truncate(len);
        }
    }

    // ==============================================================
    // Keys, symbols, terms
    // ==============================================================

    fn key_of(&mut self, v: VarId) -> TrackKey {
        match self.config.alias_mode {
            AliasMode::PathBased => TrackKey::Node(self.graph.node_of(v)),
            AliasMode::None => TrackKey::Var(v),
        }
    }

    fn sym_for(&mut self, key: TrackKey) -> SymId {
        if let Some(&s) = self.syms.get(&key) {
            return s;
        }
        let s = SymId(self.next_sym);
        self.next_sym += 1;
        let old = self.syms.insert(key, s);
        self.sym_journal.push((key, old));
        s
    }

    /// Gives `key` a fresh symbol (used on variable redefinition in PATA-NA
    /// mode, where keys are variables and must be versioned explicitly; in
    /// alias mode fresh nodes provide versioning for free).
    fn fresh_sym_for(&mut self, key: TrackKey) -> SymId {
        let s = SymId(self.next_sym);
        self.next_sym += 1;
        let old = self.syms.insert(key, s);
        self.sym_journal.push((key, old));
        s
    }

    fn operand_term(&mut self, op: Operand) -> Term {
        match op {
            Operand::Const(c) => Term::int(c.as_int()),
            Operand::Var(v) => {
                let key = self.key_of(v);
                Term::sym(self.sym_for(key))
            }
        }
    }

    fn push_constraint(&mut self, c: Constraint) {
        self.stats.constraints_aware += 1;
        self.stats.constraints_unaware += 1;
        self.trace.push(c);
    }

    /// Counts what an alias-unaware encoding would have emitted for an
    /// aliasing operation on `v`: one explicit copy equality plus one
    /// implicit equality per (transitively reachable, depth-2) struct
    /// field (paper Fig. 9: `R'(p1)==R'(p2) → R'(p1->f)==R'(p2->f)`).
    fn count_unaware_alias_op(&mut self, v: VarId) {
        let mut fields = 0u64;
        if let Some(sid) = self.module.var(v).ty.struct_id() {
            let def = self.module.struct_def(sid);
            fields += def.field_count() as u64;
            for (_, fty) in &def.fields {
                if let Some(inner) = fty.struct_id() {
                    fields += self.module.struct_def(inner).field_count() as u64;
                }
            }
        }
        self.stats.constraints_unaware += 1 + fields;
    }

    /// Counts the per-variable state synchronizations an alias-unaware
    /// tracker would perform when `dst` joins a node carrying states
    /// (paper Fig. 8a's explicit "sync" transitions).
    fn count_unaware_sync(&mut self, key: TrackKey) {
        for c in self.checkers {
            if self.states.get(c.kind().id(), key).is_some() {
                self.stats.typestates_unaware += 1;
            }
        }
    }

    // ==============================================================
    // Checker dispatch
    // ==============================================================

    fn run_checkers_inst(
        &mut self,
        kind: &InstKind,
        info: &crate::typestate::UpdateInfo,
        loc: Loc,
        inst_id: InstId,
    ) {
        let graph = &self.graph;
        let set_size = |k: TrackKey| match k {
            TrackKey::Node(n) => graph.alias_set_size(n),
            TrackKey::Var(_) => 1,
        };
        let mut cx = TrackCtx {
            states: &mut self.states,
            mode: self.config.alias_mode,
            bugs: &mut self.pending,
            stats: &mut self.stats,
            set_size: &set_size,
            loc,
            inst_id,
        };
        for c in self.checkers {
            c.on_inst(&mut cx, kind, info);
        }
        self.flush_pending();
    }

    fn run_checkers_branch(&mut self, ev: &BranchEvent) {
        let graph = &self.graph;
        let set_size = |k: TrackKey| match k {
            TrackKey::Node(n) => graph.alias_set_size(n),
            TrackKey::Var(_) => 1,
        };
        let mut cx = TrackCtx {
            states: &mut self.states,
            mode: self.config.alias_mode,
            bugs: &mut self.pending,
            stats: &mut self.stats,
            set_size: &set_size,
            loc: ev.loc,
            inst_id: ev.inst_id,
        };
        for c in self.checkers {
            c.on_branch(&mut cx, ev);
        }
        self.flush_pending();
    }

    fn run_checkers_frame_end(&mut self, ev: &FrameEndEvent<'_>) {
        let graph = &self.graph;
        let set_size = |k: TrackKey| match k {
            TrackKey::Node(n) => graph.alias_set_size(n),
            TrackKey::Var(_) => 1,
        };
        let mut cx = TrackCtx {
            states: &mut self.states,
            mode: self.config.alias_mode,
            bugs: &mut self.pending,
            stats: &mut self.stats,
            set_size: &set_size,
            loc: ev.loc,
            inst_id: ev.inst_id,
        };
        for c in self.checkers {
            c.on_frame_end(&mut cx, ev);
        }
        self.flush_pending();
    }

    /// How many distinct path snapshots are kept per problematic
    /// instruction pair: one would lose a real bug whose first discovered
    /// path happens to be infeasible (the validator then sees only the
    /// unsatisfiable snapshot), while unbounded snapshots explode on loopy
    /// code. Stage 2 reports the bug if *any* kept path validates.
    const MAX_PATHS_PER_BUG: u8 = 4;

    /// Converts pending checker reports into candidates, deduplicating by
    /// problematic-instruction pair (§4 P3) *before* cloning the trace.
    fn flush_pending(&mut self) {
        while let Some(pb) = self.pending.pop() {
            let key = (pb.kind, pb.origin_id, pb.site_id);
            let count = self.seen.entry(key).or_insert(0);
            if *count >= Self::MAX_PATHS_PER_BUG {
                self.stats.repeated_bugs_dropped += 1;
                continue;
            }
            *count += 1;
            self.stats.candidates += 1;
            let alias_paths = self.render_alias_paths(pb.key);
            self.candidates
                .push(pb.into_possible(self.trace.clone(), alias_paths, self.root));
        }
    }

    /// Renders up to four access paths of the offending alias set in the
    /// paper's `func:var` notation (Fig. 7) for the human-readable report.
    fn render_alias_paths(&self, key: Option<TrackKey>) -> Vec<String> {
        const MAX_PATHS: usize = 4;
        let module = self.module;
        let name_of = |v: VarId| {
            let info = module.var(v);
            match info.func {
                Some(f) => format!("{}:{}", module.function(f).name(), info.name),
                None => info.name.clone(),
            }
        };
        match key {
            Some(TrackKey::Node(n)) => self
                .graph
                .access_paths(n, 1)
                .into_iter()
                .filter(|ap| {
                    // Skip compiler temporaries; they mean nothing to users.
                    module.var(ap.base).kind != pata_ir::VarKind::Temp
                })
                .take(MAX_PATHS)
                .map(|ap| ap.render(&name_of, &module.interner))
                .collect(),
            Some(TrackKey::Var(v)) => vec![name_of(v)],
            None => Vec::new(),
        }
    }

    /// Clears states for a redefined variable in PATA-NA mode.
    fn na_clear_def(&mut self, dst: VarId) {
        if self.config.alias_mode != AliasMode::None {
            return;
        }
        for c in self.checkers {
            self.states.clear(c.kind().id(), TrackKey::Var(dst));
        }
        self.fresh_sym_for(TrackKey::Var(dst));
    }

    // ==============================================================
    // Execution
    // ==============================================================

    fn budget_ok(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        let b = &self.config.budget;
        if self.stats.insts_processed >= b.max_insts as u64
            || self.stats.paths_explored >= b.max_paths as u64
        {
            self.exhausted = true;
            return false;
        }
        true
    }

    fn path_end(&mut self) {
        self.stats.paths_explored += 1;
    }

    /// Whether the loop cut still allows entering `block` in this frame.
    fn may_enter(&self, block: BlockId) -> bool {
        let limit = self.config.budget.loop_iterations as u32 + 1;
        let frame = self.frames.last().expect("frame");
        frame.visited.get(&block).copied().unwrap_or(0) < limit
    }

    fn exec_block(&mut self, func: FuncId, block: BlockId, conts: &mut Vec<Cont>) {
        if !self.budget_ok() {
            return;
        }
        let frame = self.frames.last_mut().expect("frame");
        debug_assert_eq!(frame.func, func);
        *frame.visited.entry(block).or_insert(0) += 1;
        self.exec_from(func, block, 0, conts);
        let frame = self.frames.last_mut().expect("frame");
        if let Some(count) = frame.visited.get_mut(&block) {
            *count -= 1;
            if *count == 0 {
                frame.visited.remove(&block);
            }
        }
    }

    fn exec_from(&mut self, func: FuncId, block: BlockId, start: usize, conts: &mut Vec<Cont>) {
        let f = self.module.function(func);
        let b = f.block(block);
        for i in start..b.insts.len() {
            if !self.budget_ok() {
                return;
            }
            self.stats.insts_processed += 1;
            let inst = &b.insts[i];
            let inst_id = InstId {
                func,
                block,
                inst: i,
            };
            match self.apply_inst(func, inst_id, inst, conts) {
                Flow::Continue => {}
                Flow::EnteredCall => return, // rest ran via continuation
            }
        }
        self.stats.insts_processed += 1;
        self.exec_terminator(func, block, conts);
    }

    fn exec_terminator(&mut self, func: FuncId, block: BlockId, conts: &mut Vec<Cont>) {
        let f = self.module.function(func);
        let b = f.block(block);
        let term_id = InstId {
            func,
            block,
            inst: b.insts.len(),
        };
        let term_loc = b.term_loc;
        match b.term.clone() {
            Terminator::Jump(target) => {
                if !self.may_enter(target) {
                    // Loop cut reached: the path ends here (§3.1).
                    self.path_end();
                } else {
                    self.exec_block(func, target, conts);
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let pred = self.cond_defs.get(&cond).copied();
                let mut any = false;
                for (succ, taken) in [(then_bb, true), (else_bb, false)] {
                    if !self.may_enter(succ) {
                        continue;
                    }
                    // Constant-foldable branches prune trivially dead edges.
                    if let Some(p) = pred {
                        if let (Operand::Const(l), Operand::Const(r)) = (p.lhs, p.rhs) {
                            let holds = p.op.eval(l.as_int(), r.as_int());
                            if holds != taken {
                                continue;
                            }
                        }
                    }
                    any = true;
                    let mark = self.full_mark();
                    if let Some(p) = pred {
                        self.assert_branch(p, taken, term_loc, term_id);
                    }
                    if !self.exhausted {
                        self.exec_block(func, succ, conts);
                    }
                    self.full_rollback(&mark);
                }
                if !any {
                    self.path_end();
                }
            }
            Terminator::Ret(value) => {
                self.handle_ret(value, term_loc, term_id, conts);
            }
            Terminator::Unreachable => {
                self.path_end();
            }
        }
    }

    fn assert_branch(&mut self, p: PredDef, taken: bool, loc: Loc, inst_id: InstId) {
        // Normalize the variable (if any) to the lhs.
        let (mut op, mut lhs, mut rhs) = (p.op, p.lhs, p.rhs);
        if lhs.as_var().is_none() && rhs.as_var().is_some() {
            std::mem::swap(&mut lhs, &mut rhs);
            op = op.swap();
        }
        let eff_op = if taken { op } else { op.negate() };

        // Table 3: brt(e) / brf(e) constraints.
        let lt = self.operand_term(lhs);
        let rt = self.operand_term(rhs);
        let smt_op = to_smt_op(eff_op);
        self.push_constraint(Constraint::new(smt_op, lt, rt));

        // Checker branch events.
        let lhs_is_pointer = match lhs {
            Operand::Var(v) => self.module.var(v).ty.is_pointer(),
            Operand::Const(_) => false,
        };
        let lhs_key = match lhs {
            Operand::Var(v) => OperandKey::Var(v, self.key_of(v)),
            Operand::Const(c) => OperandKey::Const(c.as_int()),
        };
        let rhs_key = match rhs {
            Operand::Var(v) => OperandKey::Var(v, self.key_of(v)),
            Operand::Const(c) => OperandKey::Const(c.as_int()),
        };
        let ev = BranchEvent {
            op: eff_op,
            lhs: lhs_key,
            rhs: rhs_key,
            lhs_is_pointer,
            loc,
            inst_id,
        };
        self.run_checkers_branch(&ev);
    }

    fn handle_ret(
        &mut self,
        value: Option<Operand>,
        loc: Loc,
        inst_id: InstId,
        conts: &mut Vec<Cont>,
    ) {
        // Frame-end events (memory-leak finalization).
        let ret_val_key = match value {
            Some(Operand::Var(v)) => Some(self.key_of(v)),
            _ => None,
        };
        let frame_objects = std::mem::take(&mut self.frames.last_mut().unwrap().heap_objects);
        {
            let ev = FrameEndEvent {
                heap_objects: &frame_objects,
                ret_val_key,
                loc,
                inst_id,
            };
            self.run_checkers_frame_end(&ev);
        }
        self.frames.last_mut().unwrap().heap_objects = frame_objects;

        // UVA `use` of the returned value.
        if let Some(Operand::Var(v)) = value {
            let key = self.key_of(v);
            let info = crate::typestate::UpdateInfo {
                use_keys: vec![(v, key)],
                ..Default::default()
            };
            // Reuse the Move shape so checkers treat it as a plain use.
            let kind = InstKind::Move { dst: v, src: v };
            self.run_checkers_inst(&kind, &info, loc, inst_id);
        }

        if conts.is_empty() {
            // Root return: the path is complete.
            self.path_end();
            return;
        }

        // Return into the caller's continuation.
        let cont = conts.pop().unwrap();
        let frame = self.frames.pop().unwrap();
        let callee = self.call_stack.pop().unwrap();

        if let Some(dst) = cont.dst {
            self.bind_value(dst, value, loc, inst_id);
            // Re-own heap objects transferred by `return p` (ML RETURNED →
            // SNF in the caller's frame).
            let dst_key = self.key_of(dst);
            let ml_id = crate::checkers::BugKind::MemoryLeak.id();
            if let Some(entry) = self.states.get(ml_id, dst_key) {
                if entry.state == ml::S_RETURNED {
                    let graph = &self.graph;
                    let set_size = |k: TrackKey| match k {
                        TrackKey::Node(n) => graph.alias_set_size(n),
                        TrackKey::Var(_) => 1,
                    };
                    let mut cx = TrackCtx {
                        states: &mut self.states,
                        mode: self.config.alias_mode,
                        bugs: &mut self.pending,
                        stats: &mut self.stats,
                        set_size: &set_size,
                        loc,
                        inst_id,
                    };
                    cx.transition(ml_id, dst_key, ml::S_NF, Some(entry));
                    drop(cx);
                    self.frames
                        .last_mut()
                        .unwrap()
                        .heap_objects
                        .push(HeapObject {
                            key: dst_key,
                            loc: entry.origin_loc,
                            inst_id: entry.origin_id,
                        });
                }
            }
        }

        self.exec_from(cont.func, cont.block, cont.next_inst, conts);

        // Restore structural stacks for sibling paths in the callee.
        self.call_stack.push(callee);
        self.frames.push(frame);
        conts.push(cont);
    }

    /// Binds `value` into `dst` as the paper's return-MOVE (Fig. 6 line 20).
    fn bind_value(&mut self, dst: VarId, value: Option<Operand>, loc: Loc, inst_id: InstId) {
        match value {
            Some(Operand::Var(src)) => {
                self.na_clear_def(dst);
                let info = match self.config.alias_mode {
                    AliasMode::PathBased => {
                        let n = self.graph.handle_move(dst, src);
                        self.count_unaware_alias_op(src);
                        self.count_unaware_sync(nkey(n));
                        crate::typestate::UpdateInfo {
                            dst_key: Some(nkey(n)),
                            move_pair: Some((nkey(n), nkey(n))),
                            ..Default::default()
                        }
                    }
                    AliasMode::None => {
                        let dk = TrackKey::Var(dst);
                        let sk = TrackKey::Var(src);
                        let d = self.sym_for(dk);
                        let s = self.sym_for(sk);
                        self.push_constraint(Constraint::new(
                            SmtOp::Eq,
                            Term::sym(d),
                            Term::sym(s),
                        ));
                        crate::typestate::UpdateInfo {
                            dst_key: Some(dk),
                            move_pair: Some((dk, sk)),
                            ..Default::default()
                        }
                    }
                };
                let kind = InstKind::Move { dst, src };
                self.run_checkers_inst(&kind, &info, loc, inst_id);
            }
            Some(Operand::Const(c)) => {
                self.na_clear_def(dst);
                let key = match self.config.alias_mode {
                    AliasMode::PathBased => nkey(self.graph.handle_const(dst)),
                    AliasMode::None => TrackKey::Var(dst),
                };
                let s = self.sym_for(key);
                self.push_constraint(Constraint::new(
                    SmtOp::Eq,
                    Term::sym(s),
                    Term::int(c.as_int()),
                ));
                let kind = InstKind::Const { dst, value: c };
                let info = crate::typestate::UpdateInfo {
                    dst_key: Some(key),
                    ..Default::default()
                };
                self.run_checkers_inst(&kind, &info, loc, inst_id);
            }
            None => {
                // void return into a destination: havoc.
                self.na_clear_def(dst);
                if self.config.alias_mode == AliasMode::PathBased {
                    self.graph.handle_const(dst);
                }
            }
        }
    }

    // ==============================================================
    // Instructions
    // ==============================================================

    fn apply_inst(
        &mut self,
        func: FuncId,
        inst_id: InstId,
        inst: &Inst,
        conts: &mut Vec<Cont>,
    ) -> Flow {
        use crate::typestate::UpdateInfo;
        let loc = inst.loc;
        let alias = self.config.alias_mode == AliasMode::PathBased;
        let mut info = UpdateInfo::default();
        match &inst.kind {
            InstKind::Move { dst, src } => {
                info.use_keys.push((*src, self.key_of(*src)));
                self.na_clear_def(*dst);
                if alias {
                    self.tally_alias_op(0);
                    let n = self.graph.handle_move(*dst, *src);
                    self.count_unaware_alias_op(*src);
                    self.count_unaware_sync(nkey(n));
                    info.dst_key = Some(nkey(n));
                    info.move_pair = Some((nkey(n), nkey(n)));
                } else {
                    let dk = TrackKey::Var(*dst);
                    let sk = TrackKey::Var(*src);
                    let d = self.sym_for(dk);
                    let s = self.sym_for(sk);
                    self.push_constraint(Constraint::new(SmtOp::Eq, Term::sym(d), Term::sym(s)));
                    info.dst_key = Some(dk);
                    info.move_pair = Some((dk, sk));
                }
            }
            InstKind::Const { dst, value } => {
                self.na_clear_def(*dst);
                let key = if alias {
                    self.tally_alias_op(1);
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                let s = self.sym_for(key);
                self.push_constraint(Constraint::new(
                    SmtOp::Eq,
                    Term::sym(s),
                    Term::int(value.as_int()),
                ));
                info.dst_key = Some(key);
            }
            InstKind::Load { dst, addr } => {
                info.use_keys.push((*addr, self.key_of(*addr)));
                info.deref_key = Some(self.key_of(*addr));
                self.na_clear_def(*dst);
                if alias {
                    self.tally_alias_op(2);
                    let n = self.graph.handle_load(*dst, *addr);
                    self.count_unaware_alias_op(*dst);
                    self.count_unaware_sync(nkey(n));
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::Store { addr, val } => {
                info.use_keys.push((*addr, self.key_of(*addr)));
                info.deref_key = Some(self.key_of(*addr));
                if let Operand::Var(v) = val {
                    info.use_keys.push((*v, self.key_of(*v)));
                }
                if alias {
                    self.tally_alias_op(3);
                    match val {
                        Operand::Var(v) => {
                            // A stored function pointer keeps its binding:
                            // the value's node IS the new deref target, so
                            // the fptr map needs no update in alias mode.
                            let si = self.graph.handle_store(*addr, *v);
                            self.count_unaware_alias_op(*v);
                            info.stored_val_key = Some(nkey(si.new_target));
                            info.store_old_target = si.old_target.map(|n| nkey(n));
                        }
                        Operand::Const(c) => {
                            let si = self.graph.handle_store_const(*addr);
                            let key = nkey(si.new_target);
                            let s = self.sym_for(key);
                            self.push_constraint(Constraint::new(
                                SmtOp::Eq,
                                Term::sym(s),
                                Term::int(c.as_int()),
                            ));
                            info.stored_const = Some((key, *c));
                            info.store_old_target = si.old_target.map(|n| nkey(n));
                        }
                    }
                }
            }
            InstKind::Gep { dst, base, field } => {
                info.use_keys.push((*base, self.key_of(*base)));
                info.deref_key = Some(self.key_of(*base));
                self.na_clear_def(*dst);
                if alias {
                    self.tally_alias_op(4);
                    let n = self.graph.handle_gep(*dst, *base, *field);
                    self.count_unaware_alias_op(*dst);
                    self.count_unaware_sync(nkey(n));
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::AddrOf { dst, src } => {
                self.na_clear_def(*dst);
                if alias {
                    self.tally_alias_op(5);
                    let n = self.graph.handle_addr_of(*dst, *src);
                    self.count_unaware_alias_op(*dst);
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::Index { dst, base, index } => {
                info.use_keys.push((*base, self.key_of(*base)));
                info.deref_key = Some(self.key_of(*base));
                if let Operand::Var(v) = index {
                    info.use_keys.push((*v, self.key_of(*v)));
                    info.index_key = Some(self.key_of(*v));
                }
                info.index_const = index.as_const().map(|c| c.as_int());
                self.na_clear_def(*dst);
                if alias {
                    // Element access paths are keyed by the index operand
                    // (paper §5.2: array-insensitive access paths).
                    let label = match index {
                        Operand::Const(c) => Label::ElemConst(c.as_int()),
                        Operand::Var(v) => Label::ElemVar(v.index() as u32),
                    };
                    self.tally_alias_op(6);
                    let n = self.graph.handle_index(*dst, *base, label);
                    self.count_unaware_alias_op(*dst);
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::Bin { dst, op, lhs, rhs } => {
                for o in [lhs, rhs] {
                    if let Operand::Var(v) = o {
                        info.use_keys.push((*v, self.key_of(*v)));
                    }
                }
                if op.traps_on_zero() {
                    if let Operand::Var(v) = rhs {
                        info.divisor_key = Some(self.key_of(*v));
                    }
                    info.divisor_const = rhs.as_const().map(|c| c.as_int());
                }
                let lt = self.operand_term(*lhs);
                let rt = self.operand_term(*rhs);
                self.na_clear_def(*dst);
                let key = if alias {
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                let s = self.sym_for(key);
                let rhs_term = bin_term(*op, lt, rt);
                self.push_constraint(Constraint::new(SmtOp::Eq, Term::sym(s), rhs_term));
                info.dst_key = Some(key);
            }
            InstKind::Cmp { dst, op, lhs, rhs } => {
                for o in [lhs, rhs] {
                    if let Operand::Var(v) = o {
                        info.use_keys.push((*v, self.key_of(*v)));
                    }
                }
                // Remember the predicate for the branch that consumes dst.
                let old = self.cond_defs.insert(
                    *dst,
                    PredDef {
                        op: *op,
                        lhs: *lhs,
                        rhs: *rhs,
                    },
                );
                self.cond_journal.push((*dst, old));
                self.na_clear_def(*dst);
                if alias {
                    let n = self.graph.handle_const(*dst);
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::Call { dst, callee, args } => {
                return self.apply_call(func, inst_id, loc, *dst, *callee, args, conts);
            }
            InstKind::FuncAddr { dst, func: target } => {
                self.na_clear_def(*dst);
                let key = if alias {
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                let old = self.fptrs.insert(key, *target);
                self.fptr_journal.push((key, old));
                info.dst_key = Some(key);
            }
            InstKind::Alloca { dst, .. } => {
                self.na_clear_def(*dst);
                let key = if alias {
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                info.dst_key = Some(key);
            }
            InstKind::Malloc { dst } => {
                self.na_clear_def(*dst);
                let key = if alias {
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                info.dst_key = Some(key);
                self.frames
                    .last_mut()
                    .unwrap()
                    .heap_objects
                    .push(HeapObject { key, loc, inst_id });
            }
            InstKind::Free { ptr } => {
                info.use_keys.push((*ptr, self.key_of(*ptr)));
                info.free_key = Some(self.key_of(*ptr));
            }
            InstKind::Memset { ptr } => {
                info.use_keys.push((*ptr, self.key_of(*ptr)));
                info.deref_key = Some(self.key_of(*ptr));
            }
            InstKind::Lock { obj } | InstKind::Unlock { obj } => {
                info.use_keys.push((*obj, self.key_of(*obj)));
                info.lock_key = Some(self.key_of(*obj));
            }
        }
        self.run_checkers_inst(&inst.kind, &info, loc, inst_id);
        Flow::Continue
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_call(
        &mut self,
        func: FuncId,
        inst_id: InstId,
        loc: Loc,
        dst: Option<VarId>,
        callee: Callee,
        args: &[Operand],
        conts: &mut Vec<Cont>,
    ) -> Flow {
        use crate::typestate::UpdateInfo;
        let mut info = UpdateInfo::default();
        for a in args {
            if let Operand::Var(v) = a {
                info.use_keys.push((*v, self.key_of(*v)));
            }
        }

        // §7 extension: an indirect call whose function pointer's alias set
        // is pinned to a FuncAddr along this path resolves like a direct
        // call (e.g. `d->ops = my_handler; … d->ops(d);`).
        let effective = match callee {
            Callee::Indirect(v) if self.config.resolve_fptrs => {
                let key = self.key_of(v);
                match self.fptrs.get(&key) {
                    Some(&f) => Callee::Direct(f),
                    None => callee,
                }
            }
            other => other,
        };
        let inline_target = match effective {
            Callee::Direct(f)
                if !self.call_stack.contains(&f)
                    && self.call_stack.len() < self.config.budget.max_call_depth =>
            {
                Some(f)
            }
            _ => None,
        };

        if inline_target.is_none() {
            // Opaque call (external, indirect, recursion cut, depth cap):
            // pointer arguments escape; the result is havoced.
            for a in args {
                if let Operand::Var(v) = a {
                    if self.module.var(*v).ty.is_pointer() {
                        info.escape_keys.push(self.key_of(*v));
                    }
                }
            }
            if let Some(d) = dst {
                self.na_clear_def(d);
                let key = if self.config.alias_mode == AliasMode::PathBased {
                    nkey(self.graph.handle_const(d))
                } else {
                    TrackKey::Var(d)
                };
                info.dst_key = Some(key);
            }
            let kind = InstKind::Call {
                dst,
                callee,
                args: args.to_vec(),
            };
            self.run_checkers_inst(&kind, &info, loc, inst_id);
            return Flow::Continue;
        }

        let f = inline_target.unwrap();
        // Report uses (e.g. passing an uninitialized value) before binding.
        let kind = InstKind::Call {
            dst,
            callee,
            args: args.to_vec(),
        };
        self.run_checkers_inst(&kind, &info, loc, inst_id);

        // HandleCALL (Fig. 6): parameter passing is a sequence of MOVEs.
        let params: Vec<VarId> = self.module.function(f).params().to_vec();
        for (i, &param) in params.iter().enumerate() {
            let arg = args
                .get(i)
                .copied()
                .unwrap_or(Operand::Const(ConstVal::Int(0)));
            self.bind_value(param, Some(arg), loc, inst_id);
        }

        conts.push(Cont {
            func,
            block: inst_id.block,
            next_inst: inst_id.inst + 1,
            dst,
        });
        self.call_stack.push(f);
        self.frames.push(Frame::new(f));
        let entry = self.module.function(f).entry();
        self.exec_block(f, entry, conts);
        self.frames.pop();
        self.call_stack.pop();
        conts.pop();
        Flow::EnteredCall
    }
}

enum Flow {
    Continue,
    EnteredCall,
}

fn nkey(n: NodeId) -> TrackKey {
    TrackKey::Node(n)
}

fn to_smt_op(op: CmpOp) -> SmtOp {
    match op {
        CmpOp::Eq => SmtOp::Eq,
        CmpOp::Ne => SmtOp::Ne,
        CmpOp::Lt => SmtOp::Lt,
        CmpOp::Le => SmtOp::Le,
        CmpOp::Gt => SmtOp::Gt,
        CmpOp::Ge => SmtOp::Ge,
    }
}

fn bin_term(op: pata_ir::BinOp, lhs: Term, rhs: Term) -> Term {
    use pata_ir::BinOp as B;
    use pata_smt::OpaqueOp as O;
    match op {
        B::Add => lhs.add(rhs),
        B::Sub => lhs.sub(rhs),
        B::Mul => lhs.mul(rhs),
        B::Div => Term::opaque(O::Div, lhs, rhs),
        B::Rem => Term::opaque(O::Rem, lhs, rhs),
        B::And => Term::opaque(O::And, lhs, rhs),
        B::Or => Term::opaque(O::Or, lhs, rhs),
        B::Xor => Term::opaque(O::Xor, lhs, rhs),
        B::Shl => Term::opaque(O::Shl, lhs, rhs),
        B::Shr => Term::opaque(O::Shr, lhs, rhs),
    }
}
