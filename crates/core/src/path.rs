//! The path explorer: depth-first control-flow-path enumeration with
//! in-lockstep alias-graph updates (§3.1, Fig. 6), typestate tracking
//! (§3.2) and SMT-constraint collection for later path validation (§3.3).
//!
//! ## Traversal (paper Fig. 6)
//!
//! Analysis starts at a *module interface function* and walks the CFG
//! depth-first. At a conditional branch the current state (alias graph,
//! typestates, condition definitions, symbols, constraint trace) is marked,
//! one successor is fully explored, and the state is rolled back before the
//! other successor — the paper's per-path "COPY" of the alias graph (Fig. 7)
//! implemented with undo journals instead of clones. The copy-on-write
//! discipline is switchable ([`crate::AnalysisConfig::cow_state`], DESIGN.md
//! "Copy-on-write path state"): with it off, every branch arm restores by
//! deep-cloning the live state at the fork — the paper's literal COPY
//! semantics — which doubles as the differential oracle for the journaled
//! mode and as the baseline the `driver.explore.fork.*` telemetry (forks,
//! bytes copied vs shared, undo-journal depth) quantifies the win against.
//!
//! Loops and recursion are unrolled once: a successor block already on the
//! current within-frame DFS stack is not re-entered, and a callee already on
//! the call stack is treated as opaque (the paper's Fig. 6 lines 32-38 and
//! §3.1 soundness discussion).
//!
//! ## Calls (paper Fig. 6, HandleCALL)
//!
//! A direct call is inlined: actual arguments `MOVE` into formal parameters
//! (making them aliases), the callee is explored as a continuation of the
//! same path, and its `return` value `MOVE`s into the caller's destination.
//! External and indirect callees are opaque (PATA does not resolve
//! function pointers, §7); their pointer arguments conservatively escape.
//!
//! ## Constraints (paper §3.3, Table 3)
//!
//! Every alias set maps to one SMT symbol (Def. 4). `MOVE`/`LOAD`/`GEP`
//! therefore emit *no* constraints — the symbol identity makes the explicit
//! copy equalities and the implicit field equalities of Fig. 9 hold by
//! construction; the explorer counts what an alias-unaware encoding would
//! have emitted instead (Table 5's "SMT constraints unaware" column).

use crate::alias::{AliasGraph, Label, Mark as GraphMark, NodeId, Op as GraphOp};
use crate::checkers::ml;
use crate::config::{AliasMode, AnalysisConfig};
use crate::faultinject::{self, FaultPlan};
use crate::fingerprint::{
    hash2, hash4, mix, FxHashMap, TAG_ARG, TAG_CALLSTACK, TAG_COND, TAG_CONT, TAG_FPTR, TAG_FRAME,
    TAG_HEAP, TAG_SYM, TAG_VISIT,
};
use crate::report::PossibleBug;
use crate::stats::{AnalysisStats, BudgetNote};
use crate::typestate::{
    BranchEvent, Checker, FrameEndEvent, HeapObject, OperandKey, PendingBug, StateMark, StateOp,
    StateTable, TrackCtx, TrackKey, UpdateInfo,
};
use pata_ir::{
    BlockId, Callee, CmpOp, ConstVal, FuncId, Inst, InstId, InstKind, Loc, Module, Operand,
    Terminator, VarId,
};
use pata_smt::{CmpOp as SmtOp, Constraint, SymId, Term};
use std::sync::{Arc, Mutex};

/// The definition of a branch-condition temporary (`c = a < b`).
#[derive(Debug, Clone, Copy)]
struct PredDef {
    op: CmpOp,
    lhs: Operand,
    rhs: Operand,
}

/// One inlined function activation.
#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    /// Explorer-unique id; heap-journal entries name their frame by serial
    /// so rollback can tell a dead frame's leftover entries (nothing to
    /// undo — the frame's facts left `frames_fp` when it was popped) from
    /// entries of the frame currently at that depth.
    serial: u64,
    /// Per-block visit counts on the current DFS stack within this frame
    /// (the loop cut: a block may appear `loop_iterations + 1` times on a
    /// path, letting a loop body run `loop_iterations` times and the path
    /// still leave through the header's exit edge). Dense, indexed by
    /// `BlockId::index()`: block ids are small per-function integers, and
    /// this counter is hit on every block entry/exit, so an array beats a
    /// hash map on both lookup cost and allocation churn.
    visited: Vec<u32>,
    /// Which blocks lie on a CFG cycle (shared per function; see
    /// [`Explorer::cyclic_mask`]). Visit counts of non-cyclic blocks are
    /// pure path history — `may_enter` can never consult them again — so
    /// the subsumption fingerprint omits them; without this, the arm blocks
    /// of every diamond would poison the fingerprint at the join and two
    /// converging states could never be recognized as equal.
    cyclic: Arc<Vec<bool>>,
    /// Heap objects allocated while this frame was active.
    heap_objects: Vec<HeapObject>,
    /// Incremental XOR of this frame's fingerprint facts (frame identity at
    /// its depth, cyclic visit counts, heap objects). Kept current by the
    /// mutation helpers; valid as long as the frame sits at the depth it
    /// was created for (frames are only ever re-pushed at the same depth).
    fp: u64,
}

impl Frame {
    fn new(
        func: FuncId,
        serial: u64,
        block_count: usize,
        cyclic: Arc<Vec<bool>>,
        depth: usize,
    ) -> Self {
        Frame {
            func,
            serial,
            visited: vec![0; block_count],
            cyclic,
            heap_objects: Vec::new(),
            fp: hash2(TAG_FRAME, depth as u64, func.index() as u64),
        }
    }

    /// Rough heap footprint of one deep-cloned frame.
    fn approx_bytes(&self) -> u64 {
        (self.visited.len() * std::mem::size_of::<u32>()
            + self.heap_objects.len() * std::mem::size_of::<HeapObject>()) as u64
    }
}

/// One journaled heap-object push: which frame (by serial, see
/// [`Frame::serial`]) received an object, and at which depth it sat. The
/// journal makes [`Explorer::full_mark`] O(1) — the old design snapshotted
/// every frame's heap-object count into a `Vec`, making every branch fork
/// O(call depth) with an allocation.
#[derive(Debug, Clone, Copy)]
struct HeapPush {
    serial: u64,
    depth: u32,
}

/// A pending return site while a callee is being explored.
#[derive(Debug, Clone, Copy)]
struct Cont {
    func: FuncId,
    block: BlockId,
    next_inst: usize,
    dst: Option<VarId>,
}

/// A combined rollback point across all journaled structures. `Copy` and
/// fixed-size by design: taking one allocates nothing, so a branch fork
/// costs O(changed) regardless of call depth or path length.
#[derive(Debug, Clone, Copy)]
struct FullMark {
    graph: GraphMark,
    states: StateMark,
    conds: usize,
    syms: usize,
    fptrs: usize,
    /// Symbol counter at the mark. Restoring it makes symbol allocation a
    /// pure function of (state, remaining program): sibling branch arms
    /// allocate identical ids for identical work, so converging states
    /// carry equal `next_sym` / symbol maps and can hit the subsumption
    /// table. (Constraints never escape their path, so reuse across
    /// rolled-back siblings cannot collide.)
    next_sym: u32,
    trace: usize,
    heap: usize,
}

/// A deep copy of every forkable structure, taken per branch arm when
/// [`crate::AnalysisConfig::cow_state`] is off — the paper's literal
/// per-successor COPY of the live state (Fig. 7). Restoring move-assigns
/// the clones back, which is observationally identical to the journal
/// rollback CoW mode performs (the equivalence tests assert byte-identical
/// reports across both). It exists as the measured baseline for the
/// `driver.explore.fork.*` telemetry and as a differential oracle for the
/// journaled mode. The continuation stack is deliberately absent: branch
/// arms are call-balanced, so `conts` (and its accumulator) return to their
/// fork-time values on their own.
struct CloneSnapshot {
    graph: AliasGraph,
    states: StateTable,
    cond_defs: FxHashMap<VarId, PredDef>,
    cond_journal: Vec<(VarId, Option<PredDef>)>,
    syms: FxHashMap<TrackKey, SymId>,
    sym_journal: Vec<(TrackKey, Option<SymId>)>,
    fptrs: FxHashMap<TrackKey, FuncId>,
    fptr_journal: Vec<(TrackKey, Option<FuncId>)>,
    heap_journal: Vec<HeapPush>,
    next_sym: u32,
    trace: Vec<Constraint>,
    frames: Vec<Frame>,
    maps_fp: u64,
    frames_fp: u64,
}

// ==================================================================
// Exploration reuse: subsumption table & callee-summary cache
// ==================================================================
//
// Both caches rely on the same soundness argument (DESIGN.md): table keys
// embed a fingerprint of the *exact* live analysis state with literal
// identifiers, plus `next_sym` and the alias-graph node count. Key equality
// therefore means the recorded trajectory — every id it mentions, every
// fresh id it would allocate — denotes the same objects in the replaying
// state, so replaying the recorded effects is bit-identical to re-running
// the subtree. Anything that breaks the argument (budget exhaustion mid
// subtree, forced fork prefixes, event overflow) poisons the recording
// instead of inserting an unsound entry.

/// A bug emitted somewhere inside a recorded subtree: everything needed to
/// re-emit it at replay time. `suffix` holds the constraints the subtree
/// pushed after the recorder's entry point; the replaying path prepends its
/// own live trace prefix, which is exactly what a re-run would have cloned.
/// The bug body and rendered alias paths are `Arc`-shared: every recorder
/// observing the emission (nested subsumption recorders plus the callee
/// recorder) holds the same allocation, and replay re-emits by bumping a
/// refcount instead of deep-cloning strings.
#[derive(Debug, Clone)]
struct RecordedBug {
    pb: Arc<PendingBug>,
    alias_paths: Arc<Vec<String>>,
    suffix: Vec<Constraint>,
}

/// Subsumption key: block entered, dynamic state fingerprint (graph, states,
/// condition/symbol/fptr maps, frames with visit counts and heap objects,
/// pending continuations), symbol counter, and node count (two states with
/// equal fingerprints but different node-vector lengths would allocate
/// different fresh `NodeId`s during the subtree).
type SubKey = (FuncId, BlockId, u64, u32, u64);

/// A fully explored `(block, state)` subtree: replaying it re-emits the
/// recorded bugs through the live dedup filter and adds the exploration
/// volume the subtree cost, without touching any journaled state — a
/// completed subtree's net state effect is nil (its enclosing branch arm
/// rolls it back), and everything it leaves behind is write-only.
struct SubEntry {
    d_stats: AnalysisStats,
    d_alias_ops: [u64; ALIAS_OP_NAMES.len()],
    d_next_sym: u32,
    events: Vec<RecordedBug>,
}

/// In-flight subsumption recording; one per live `exec_block` activation.
struct SubRecorder {
    key: SubKey,
    base_stats: AnalysisStats,
    base_alias_ops: [u64; ALIAS_OP_NAMES.len()],
    base_next_sym: u32,
    trace_len: usize,
    events: Vec<RecordedBug>,
    poisoned: bool,
}

/// Callee-memo key: callee, state fingerprint over graph/states/maps (the
/// structural stacks are irrelevant to a callee's behavior), symbol counter,
/// node count, and a call-stack fingerprint (the stack decides recursion
/// cuts and the depth cap for nested inlining).
type MemoKey = (FuncId, u64, u32, u64, u64);

/// One return path through a memoized callee: the net journal effects from
/// the call site to the `Ret`, the constraint suffix, the recorded bugs, and
/// the return value to bind. The caller continuation after each `Ret` is
/// *not* recorded — it re-runs live at replay (it belongs to the caller, and
/// its exploration depends on caller context the key does not cover).
struct MemoSegment {
    graph_ops: Vec<GraphOp>,
    state_ops: Vec<StateOp>,
    cond_delta: Vec<(VarId, Option<PredDef>)>,
    sym_delta: Vec<(TrackKey, Option<SymId>)>,
    fptr_delta: Vec<(TrackKey, Option<FuncId>)>,
    trace_suffix: Vec<Constraint>,
    d_stats: AnalysisStats,
    d_alias_ops: [u64; ALIAS_OP_NAMES.len()],
    d_next_sym: u32,
    events: Vec<RecordedBug>,
    /// `Some` for a real return path: (returned operand, ret loc, ret inst).
    /// `None` for the trailing segment covering dead-end exploration after
    /// the last `Ret` (budget-relevant work with no caller continuation).
    ret: Option<(Option<Operand>, Loc, InstId)>,
}

/// A recorded callee exploration: segments in discovery order.
struct MemoEntry {
    segments: Vec<MemoSegment>,
}

/// In-flight callee-summary recording. Recording *suspends* while the live
/// caller continuation runs after each `Ret` (that work belongs to the
/// caller) and resumes when the callee's DFS backtracks past the return.
struct MemoRecorder {
    key: MemoKey,
    entry_mark: FullMark,
    /// `conts.len()` at the call site; a `Ret` popping back to this depth is
    /// a segment boundary.
    base_conts: usize,
    seg_base_stats: AnalysisStats,
    seg_base_alias_ops: [u64; ALIAS_OP_NAMES.len()],
    seg_events: Vec<RecordedBug>,
    segments: Vec<MemoSegment>,
    suspended: bool,
    poisoned: bool,
}

/// Cap on recorded bugs per recording; noisier subtrees are cheaper to
/// re-run than to record.
const EVENT_CAP: usize = 256;
/// Cap on return paths per callee recording.
const SEGMENT_CAP: usize = 64;
/// Cap on subsumption-table entries (per table or per shard).
const SUB_TABLE_CAP: usize = 1 << 16;
/// Cap on callee-memo entries (per table or per shard).
const MEMO_TABLE_CAP: usize = 1 << 12;
/// Lock shards for the shared (fork-mode) tables.
const SHARDS: usize = 8;

/// Fingerprint-sharded tables shared between a root's owner explorer and
/// its fork helpers. Entries are `Arc`'d so a lookup copies a pointer, not
/// a journal.
pub(crate) struct SharedTables {
    sub: Vec<Mutex<FxHashMap<SubKey, Arc<SubEntry>>>>,
    memo: Vec<Mutex<FxHashMap<MemoKey, Arc<MemoEntry>>>>,
}

impl SharedTables {
    /// Creates empty shared tables.
    pub(crate) fn new() -> Self {
        SharedTables {
            sub: (0..SHARDS).map(|_| Mutex::default()).collect(),
            memo: (0..SHARDS).map(|_| Mutex::default()).collect(),
        }
    }
}

fn shard_of(fp: u64) -> usize {
    (fp as usize) % SHARDS
}

/// Recovers a shared-table shard guard from a poisoned lock. Safe because
/// every entry is a fully-constructed `Arc` inserted by move under a plain
/// `HashMap::insert` of a `u64`-tuple key — a panicking explorer (the
/// quarantine path) can never leave a half-written value behind, so the
/// other explorers may keep using the shard.
fn poison_ok<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Where this explorer's cache entries live: thread-local maps for the
/// common case, lock-sharded shared maps when fork helpers warm the caches
/// for a heavy root.
enum Tables {
    Local {
        sub: FxHashMap<SubKey, Arc<SubEntry>>,
        memo: FxHashMap<MemoKey, Arc<MemoEntry>>,
    },
    Shared(Arc<SharedTables>),
}

/// The per-root path explorer. Construct one per analysis root via
/// [`Explorer::new`] and run [`Explorer::explore`].
pub struct Explorer<'a> {
    module: &'a Module,
    config: &'a AnalysisConfig,
    checkers: &'a [Box<dyn Checker>],

    graph: AliasGraph,
    states: StateTable,
    cond_defs: FxHashMap<VarId, PredDef>,
    cond_journal: Vec<(VarId, Option<PredDef>)>,
    syms: FxHashMap<TrackKey, SymId>,
    sym_journal: Vec<(TrackKey, Option<SymId>)>,
    /// Function addresses pinned to alias sets along the current path
    /// (the §7 function-pointer extension; populated by `FuncAddr`).
    fptrs: FxHashMap<TrackKey, FuncId>,
    fptr_journal: Vec<(TrackKey, Option<FuncId>)>,
    /// Journal of heap-object pushes (see [`HeapPush`]); gives the combined
    /// mark a single O(1) length instead of a per-frame length vector.
    heap_journal: Vec<HeapPush>,
    /// Next frame serial (see [`Frame::serial`]).
    frame_serial: u64,
    next_sym: u32,
    trace: Vec<Constraint>,

    /// Incremental XOR accumulators mirroring the slow fingerprint folds
    /// (see [`Explorer::slow_dyn_fp`]): path-local maps, frame facts, and
    /// pending-continuation facts. Every mutation of the underlying data
    /// funnels through the `set_*` / `push_*` / `pop_*` / `bump_visited` /
    /// `push_heap` helpers, which keep these current; `dyn_fp` cross-checks
    /// them against the slow folds under `debug_assert`, so the whole test
    /// suite verifies the incremental maintenance.
    maps_fp: u64,
    frames_fp: u64,
    conts_fp: u64,

    frames: Vec<Frame>,
    call_stack: Vec<FuncId>,

    root: FuncId,
    exhausted: bool,
    pending: Vec<PendingBug>,
    seen: FxHashMap<(crate::checkers::BugKind, InstId, InstId), u8>,
    candidates: Vec<PossibleBug>,
    /// Counters for this root (merged by the driver).
    pub stats: AnalysisStats,
    /// Telemetry gate, latched once from `config.telemetry` at
    /// construction: the per-instruction cost when disabled is one branch.
    tel_enabled: bool,
    /// Alias-graph updates by rule, indexed by [`ALIAS_OP_NAMES`].
    alias_ops: [u64; ALIAS_OP_NAMES.len()],

    /// Subsumption/memo tables (thread-local or fork-shared).
    tables: Tables,
    /// Active subsumption recordings, one per live `exec_block` activation.
    sub_recs: Vec<SubRecorder>,
    /// Active callee-summary recording (outermost memoizable call wins; at
    /// most one at a time so segment boundaries stay unambiguous).
    memo_rec: Option<MemoRecorder>,
    /// Forced branch directions for the first `len()` eligible branches —
    /// empty for owner explorers, a distinct prefix per fork helper.
    fork_prefix: Vec<bool>,
    /// Eligible branches taken so far (index into `fork_prefix`).
    fork_taken: usize,
    /// Fork helper mode: explore only to warm the shared tables; candidates
    /// are not collected and results are discarded by the driver.
    discard: bool,
    /// Hard-disables both caches regardless of config — set for the
    /// deterministic cache-free re-run of a budget-exhausted root.
    caches_off: bool,
    /// Which budget tripped first ("max_insts" / "max_paths" /
    /// "deadline" / "live_bytes"), if any.
    budget_reason: Option<&'static str>,
    /// Wall-clock deadline for this root, armed at `run_root` entry when
    /// [`AnalysisConfig::root_deadline_ms`] is non-zero; checked at fork
    /// points by `check_resource_budgets`.
    deadline: Option<std::time::Instant>,
    /// Cached per-function cyclic-block masks (see [`Explorer::cyclic_mask`]).
    cyclic_masks: FxHashMap<FuncId, Arc<Vec<bool>>>,
    /// Reusable per-instruction alias-resolution scratch; cleared (keeping
    /// its `Vec` capacity) instead of reallocated on every instruction.
    info_scratch: UpdateInfo,
    /// Runs the slow fingerprint fold against the incremental accumulators
    /// at every block entry, independent of `debug_assert` — lets a release
    /// -mode test exercise the cross-check (see `fingerprint_cross_check`).
    verify_fp: bool,
    /// Branch-fork telemetry (`driver.explore.fork.*`), tallied only when
    /// telemetry is enabled.
    fork_stats: ForkStats,
}

/// Branch-fork cost counters for one root, merged into the
/// `driver.explore.fork.*` telemetry family by the driver. Kept out of
/// [`AnalysisStats`] on purpose: fork cost depends on the CoW knob and the
/// cache configuration, while `AnalysisStats` must stay bit-identical
/// across all of them (the equivalence tests compare it directly).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ForkStats {
    /// Branch arms explored through a state fork (mark/rollback or clone).
    pub(crate) forks: u64,
    /// Bytes materialized per fork: the fixed-size mark in CoW mode, the
    /// deep-clone estimate in clone mode.
    pub(crate) bytes_copied: u64,
    /// Bytes left shared (journal-backed) at fork points in CoW mode.
    pub(crate) bytes_shared: u64,
    /// Deepest combined undo-journal length observed at a fork.
    pub(crate) journal_depth_max: u64,
    /// Largest live-state estimate observed at a fork.
    pub(crate) live_bytes_max: u64,
}

impl ForkStats {
    pub(crate) fn merge(&mut self, other: &ForkStats) {
        self.forks += other.forks;
        self.bytes_copied += other.bytes_copied;
        self.bytes_shared += other.bytes_shared;
        self.journal_depth_max = self.journal_depth_max.max(other.journal_depth_max);
        self.live_bytes_max = self.live_bytes_max.max(other.live_bytes_max);
    }
}

/// Labels for the `alias.op` telemetry counter, in `alias_ops` index order.
pub(crate) const ALIAS_OP_NAMES: [&str; 7] =
    ["move", "const", "load", "store", "gep", "addr", "index"];

/// The output of exploring one root.
pub struct ExploreResult {
    /// Candidate bugs (already path-locally deduplicated).
    pub candidates: Vec<PossibleBug>,
    /// This root's statistics.
    pub stats: AnalysisStats,
    /// Alias-graph updates by rule, in move/const/load/store/gep/addr/index
    /// order; all zero unless [`crate::AnalysisConfig::telemetry`] is set.
    /// Plain counters rather than a sink: the driver sums arrays per worker
    /// and materializes labeled metrics once per run, keeping the per-root
    /// cost away from map operations.
    pub alias_ops: [u64; 7],
    /// Set when this root hit an exploration budget (which budget, and
    /// whether the caches were disabled for the run that produced the
    /// verdicts).
    pub budget_note: Option<BudgetNote>,
    /// Branch-fork cost counters (all zero unless telemetry is enabled).
    pub(crate) fork_stats: ForkStats,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer for `root`.
    pub fn new(
        module: &'a Module,
        config: &'a AnalysisConfig,
        checkers: &'a [Box<dyn Checker>],
        root: FuncId,
    ) -> Self {
        Explorer {
            module,
            config,
            checkers,
            graph: AliasGraph::new(),
            states: StateTable::new(),
            cond_defs: FxHashMap::default(),
            cond_journal: Vec::new(),
            syms: FxHashMap::default(),
            sym_journal: Vec::new(),
            fptrs: FxHashMap::default(),
            fptr_journal: Vec::new(),
            heap_journal: Vec::new(),
            frame_serial: 0,
            next_sym: 0,
            trace: Vec::new(),
            maps_fp: 0,
            frames_fp: 0,
            conts_fp: 0,
            frames: Vec::new(),
            call_stack: Vec::new(),
            root,
            exhausted: false,
            pending: Vec::new(),
            seen: FxHashMap::default(),
            candidates: Vec::new(),
            stats: AnalysisStats::default(),
            tel_enabled: config.telemetry,
            alias_ops: [0; ALIAS_OP_NAMES.len()],
            tables: Tables::Local {
                sub: FxHashMap::default(),
                memo: FxHashMap::default(),
            },
            sub_recs: Vec::new(),
            memo_rec: None,
            fork_prefix: Vec::new(),
            fork_taken: 0,
            discard: false,
            caches_off: false,
            budget_reason: None,
            deadline: None,
            cyclic_masks: FxHashMap::default(),
            info_scratch: UpdateInfo::default(),
            verify_fp: false,
            fork_stats: ForkStats::default(),
        }
    }

    /// Switches the explorer onto fork-shared tables (see
    /// [`SharedTables`]); called by the driver when spare workers warm a
    /// root's caches.
    pub(crate) fn use_shared_tables(&mut self, tables: Arc<SharedTables>) {
        self.tables = Tables::Shared(tables);
    }

    /// Marks this explorer as a fork helper: its first branches are forced
    /// along `prefix` (steering it into a different DFS region than the
    /// owner) and its results are discarded — it exists only to populate
    /// the shared tables.
    pub(crate) fn set_fork_helper(&mut self, prefix: Vec<bool>) {
        self.fork_prefix = prefix;
        self.discard = true;
    }

    /// Runs the exploration and returns candidates plus statistics.
    ///
    /// Determinism fallback: a root that exhausts an exploration budget
    /// with caches enabled is re-explored cache-free. Replay consumes
    /// budget in recorded-subtree chunks (a hit is refused unless it fits
    /// strictly, which can declare exhaustion earlier than live stepping
    /// would), so truncated verdicts are only bit-identical across cache
    /// configurations if the truncated exploration itself ran cache-free.
    /// Budget exhaustion is rare and already the slow path; correctness
    /// wins over the wasted first attempt.
    pub fn explore(self) -> ExploreResult {
        let (module, config, checkers, root) = (self.module, self.config, self.checkers, self.root);
        let caches_usable = !self.caches_off && (config.exploration_cache || config.callee_memo);
        let rerun_on_exhaustion = caches_usable && !self.discard;
        let verify_fp = self.verify_fp;
        let result = self.run_root();
        // Resource-budget trips (deadline / live-bytes) do NOT take the
        // internal cache-free rerun: re-exploring at full budget would trip
        // again (and burn the deadline twice). The driver's demotion ladder
        // handles them with a *bounded* re-run instead.
        let resource_trip = matches!(
            result.budget_note.as_ref().map(|n| n.reason.as_str()),
            Some("deadline" | "live_bytes")
        );
        if rerun_on_exhaustion && !resource_trip && result.stats.budget_exhausted_roots > 0 {
            let mut fresh = Explorer::new(module, config, checkers, root);
            fresh.caches_off = true;
            fresh.verify_fp = verify_fp;
            return fresh.run_root();
        }
        result
    }

    /// The active fault plan at this explorer's injection sites. Fork
    /// helpers explore the same roots concurrently with owners and their
    /// results are discarded, so faults are suppressed for them — hit
    /// counters stay deterministic (a root's owning exploration is
    /// single-threaded) and a helper can never panic a root the owner
    /// completes.
    fn fault(&self) -> Option<&'a FaultPlan> {
        if self.discard {
            None
        } else {
            self.config.fault_plan.as_deref()
        }
    }

    fn run_root(mut self) -> ExploreResult {
        faultinject::maybe_panic(
            self.fault(),
            "explore",
            self.module.function(self.root).name(),
        );
        if self.config.root_deadline_ms > 0 {
            self.deadline = Some(
                std::time::Instant::now()
                    + std::time::Duration::from_millis(self.config.root_deadline_ms),
            );
        }
        let nblocks = self.module.function(self.root).blocks().len();
        let cyclic = self.cyclic_mask(self.root);
        let frame = self.new_frame(self.root, nblocks, cyclic, 0);
        self.push_frame(frame);
        self.call_stack.push(self.root);
        let entry = self.module.function(self.root).entry();
        let mut conts = Vec::new();
        self.exec_block(self.root, entry, &mut conts);
        if self.exhausted {
            self.stats.budget_exhausted_roots += 1;
        }
        self.stats.roots += 1;
        let budget_note = self.budget_reason.map(|reason| BudgetNote {
            root: self.module.function(self.root).name().to_string(),
            reason: reason.to_string(),
            caches_disabled: self.caches_off
                || !(self.config.exploration_cache || self.config.callee_memo),
        });
        ExploreResult {
            candidates: self.candidates,
            stats: self.stats,
            alias_ops: self.alias_ops,
            budget_note,
            fork_stats: self.fork_stats,
        }
    }

    /// Allocates a frame with a fresh serial (see [`Frame::serial`]).
    fn new_frame(
        &mut self,
        func: FuncId,
        block_count: usize,
        cyclic: Arc<Vec<bool>>,
        depth: usize,
    ) -> Frame {
        let serial = self.frame_serial;
        self.frame_serial += 1;
        Frame::new(func, serial, block_count, cyclic, depth)
    }

    /// Counts one alias-graph update of rule `op` (index into
    /// [`ALIAS_OP_NAMES`]). Inlined into the already-taken instruction
    /// arms so the disabled cost is one predicted branch, with no second
    /// dispatch on the instruction kind.
    #[inline]
    fn tally_alias_op(&mut self, op: usize) {
        if self.tel_enabled {
            self.alias_ops[op] += 1;
        }
    }

    // ==============================================================
    // Marks & rollback across all journals
    // ==============================================================

    fn full_mark(&self) -> FullMark {
        FullMark {
            graph: self.graph.mark(),
            states: self.states.mark(),
            conds: self.cond_journal.len(),
            syms: self.sym_journal.len(),
            fptrs: self.fptr_journal.len(),
            next_sym: self.next_sym,
            trace: self.trace.len(),
            heap: self.heap_journal.len(),
        }
    }

    fn full_rollback(&mut self, mark: &FullMark) {
        self.graph.rollback(mark.graph);
        self.states.rollback(mark.states);
        while self.cond_journal.len() > mark.conds {
            let (v, old) = self.cond_journal.pop().unwrap();
            self.set_cond(v, old);
        }
        while self.sym_journal.len() > mark.syms {
            let (k, old) = self.sym_journal.pop().unwrap();
            self.set_sym(k, old);
        }
        while self.fptr_journal.len() > mark.fptrs {
            let (k, old) = self.fptr_journal.pop().unwrap();
            self.set_fptr(k, old);
        }
        self.next_sym = mark.next_sym;
        self.trace.truncate(mark.trace);
        while self.heap_journal.len() > mark.heap {
            let e = self.heap_journal.pop().unwrap();
            let d = e.depth as usize;
            // An entry whose frame has since been discarded (a callee frame
            // dropped at its call site, possibly with objects its dead-end
            // paths never released) needs no undo: the frame's facts left
            // `frames_fp` wholesale when the frame was popped. The serial
            // distinguishes that case from the live frame now at depth `d`.
            if let Some(frame) = self.frames.get_mut(d) {
                if frame.serial == e.serial {
                    let h = frame.heap_objects.pop().unwrap();
                    let fact = heap_fact(d, frame.heap_objects.len(), &h);
                    frame.fp ^= fact;
                    self.frames_fp ^= fact;
                }
            }
        }
    }

    // ==============================================================
    // Fingerprint-maintaining mutation helpers
    // ==============================================================
    //
    // All writes to the path-local maps and the structural stacks go
    // through these so the incremental accumulators stay in lockstep.

    /// Sets (or, with `None`, removes) the predicate definition of `v`,
    /// returning the previous value for the caller to journal.
    fn set_cond(&mut self, v: VarId, new: Option<PredDef>) -> Option<PredDef> {
        let old = match new {
            Some(p) => {
                self.maps_fp ^= cond_fact(v, &p);
                self.cond_defs.insert(v, p)
            }
            None => self.cond_defs.remove(&v),
        };
        if let Some(p) = &old {
            self.maps_fp ^= cond_fact(v, p);
        }
        old
    }

    /// Sets (or removes) the symbol binding of `k`, returning the old one.
    fn set_sym(&mut self, k: TrackKey, new: Option<SymId>) -> Option<SymId> {
        let old = match new {
            Some(s) => {
                self.maps_fp ^= hash2(TAG_SYM, key_lane(k), s.index() as u64);
                self.syms.insert(k, s)
            }
            None => self.syms.remove(&k),
        };
        if let Some(s) = old {
            self.maps_fp ^= hash2(TAG_SYM, key_lane(k), s.index() as u64);
        }
        old
    }

    /// Sets (or removes) the function-pointer binding of `k`.
    fn set_fptr(&mut self, k: TrackKey, new: Option<FuncId>) -> Option<FuncId> {
        let old = match new {
            Some(f) => {
                self.maps_fp ^= hash2(TAG_FPTR, key_lane(k), f.index() as u64);
                self.fptrs.insert(k, f)
            }
            None => self.fptrs.remove(&k),
        };
        if let Some(f) = old {
            self.maps_fp ^= hash2(TAG_FPTR, key_lane(k), f.index() as u64);
        }
        old
    }

    fn push_frame(&mut self, frame: Frame) {
        self.frames_fp ^= frame.fp;
        self.frames.push(frame);
    }

    fn pop_frame(&mut self) -> Frame {
        let f = self.frames.pop().expect("frame");
        self.frames_fp ^= f.fp;
        f
    }

    /// Adjusts the top frame's visit count for `block` by ±1. Only cyclic
    /// blocks contribute fingerprint facts (see [`Frame::cyclic`]).
    fn bump_visited(&mut self, block: BlockId, up: bool) {
        let d = self.frames.len() - 1;
        let frame = self.frames.last_mut().expect("frame");
        let b = block.index();
        let old = frame.visited[b];
        let new = if up { old + 1 } else { old - 1 };
        frame.visited[b] = new;
        if frame.cyclic[b] {
            let mut delta = 0u64;
            if old > 0 {
                delta ^= hash4(TAG_VISIT, d as u64, b as u64, old as u64, 0);
            }
            if new > 0 {
                delta ^= hash4(TAG_VISIT, d as u64, b as u64, new as u64, 0);
            }
            frame.fp ^= delta;
            self.frames_fp ^= delta;
        }
    }

    /// Appends a heap object to the top frame's ownership list, journaling
    /// the push so a later [`Explorer::full_rollback`] can undo it without
    /// the mark having snapshotted any per-frame lengths.
    fn push_heap(&mut self, obj: HeapObject) {
        let d = self.frames.len() - 1;
        let frame = self.frames.last_mut().expect("frame");
        let fact = heap_fact(d, frame.heap_objects.len(), &obj);
        self.heap_journal.push(HeapPush {
            serial: frame.serial,
            depth: d as u32,
        });
        frame.heap_objects.push(obj);
        frame.fp ^= fact;
        self.frames_fp ^= fact;
    }

    fn push_cont(&mut self, conts: &mut Vec<Cont>, c: Cont) {
        self.conts_fp ^= cont_fact(conts.len(), &c);
        conts.push(c);
    }

    fn pop_cont(&mut self, conts: &mut Vec<Cont>) -> Cont {
        let c = conts.pop().expect("cont");
        self.conts_fp ^= cont_fact(conts.len(), &c);
        c
    }

    // ==============================================================
    // Keys, symbols, terms
    // ==============================================================

    fn key_of(&mut self, v: VarId) -> TrackKey {
        match self.config.alias_mode {
            AliasMode::PathBased => TrackKey::Node(self.graph.node_of(v)),
            AliasMode::None => TrackKey::Var(v),
        }
    }

    fn sym_for(&mut self, key: TrackKey) -> SymId {
        if let Some(&s) = self.syms.get(&key) {
            return s;
        }
        let s = SymId(self.next_sym);
        self.next_sym += 1;
        let old = self.set_sym(key, Some(s));
        self.sym_journal.push((key, old));
        s
    }

    /// Gives `key` a fresh symbol (used on variable redefinition in PATA-NA
    /// mode, where keys are variables and must be versioned explicitly; in
    /// alias mode fresh nodes provide versioning for free).
    fn fresh_sym_for(&mut self, key: TrackKey) -> SymId {
        let s = SymId(self.next_sym);
        self.next_sym += 1;
        let old = self.set_sym(key, Some(s));
        self.sym_journal.push((key, old));
        s
    }

    fn operand_term(&mut self, op: Operand) -> Term {
        match op {
            Operand::Const(c) => Term::int(c.as_int()),
            Operand::Var(v) => {
                let key = self.key_of(v);
                Term::sym(self.sym_for(key))
            }
        }
    }

    fn push_constraint(&mut self, c: Constraint) {
        self.stats.constraints_aware += 1;
        self.stats.constraints_unaware += 1;
        self.trace.push(c);
    }

    /// Counts what an alias-unaware encoding would have emitted for an
    /// aliasing operation on `v`: one explicit copy equality plus one
    /// implicit equality per (transitively reachable, depth-2) struct
    /// field (paper Fig. 9: `R'(p1)==R'(p2) → R'(p1->f)==R'(p2->f)`).
    fn count_unaware_alias_op(&mut self, v: VarId) {
        let mut fields = 0u64;
        if let Some(sid) = self.module.var(v).ty.struct_id() {
            let def = self.module.struct_def(sid);
            fields += def.field_count() as u64;
            for (_, fty) in &def.fields {
                if let Some(inner) = fty.struct_id() {
                    fields += self.module.struct_def(inner).field_count() as u64;
                }
            }
        }
        self.stats.constraints_unaware += 1 + fields;
    }

    /// Counts the per-variable state synchronizations an alias-unaware
    /// tracker would perform when `dst` joins a node carrying states
    /// (paper Fig. 8a's explicit "sync" transitions).
    fn count_unaware_sync(&mut self, key: TrackKey) {
        for c in self.checkers {
            if self.states.get(c.kind().id(), key).is_some() {
                self.stats.typestates_unaware += 1;
            }
        }
    }

    // ==============================================================
    // Checker dispatch
    // ==============================================================

    fn run_checkers_inst(
        &mut self,
        kind: &InstKind,
        info: &crate::typestate::UpdateInfo,
        loc: Loc,
        inst_id: InstId,
    ) {
        // Checker callbacks are arbitrary user code (CheckerRegistry); this
        // is the site where a misbehaving checker's panic is simulated.
        faultinject::maybe_panic(
            self.fault(),
            "checker",
            self.module.function(self.root).name(),
        );
        let graph = &self.graph;
        let set_size = |k: TrackKey| match k {
            TrackKey::Node(n) => graph.alias_set_size(n),
            TrackKey::Var(_) => 1,
        };
        let mut cx = TrackCtx {
            states: &mut self.states,
            mode: self.config.alias_mode,
            bugs: &mut self.pending,
            stats: &mut self.stats,
            set_size: &set_size,
            loc,
            inst_id,
        };
        for c in self.checkers {
            c.on_inst(&mut cx, kind, info);
        }
        self.flush_pending();
    }

    fn run_checkers_branch(&mut self, ev: &BranchEvent) {
        let graph = &self.graph;
        let set_size = |k: TrackKey| match k {
            TrackKey::Node(n) => graph.alias_set_size(n),
            TrackKey::Var(_) => 1,
        };
        let mut cx = TrackCtx {
            states: &mut self.states,
            mode: self.config.alias_mode,
            bugs: &mut self.pending,
            stats: &mut self.stats,
            set_size: &set_size,
            loc: ev.loc,
            inst_id: ev.inst_id,
        };
        for c in self.checkers {
            c.on_branch(&mut cx, ev);
        }
        self.flush_pending();
    }

    fn run_checkers_frame_end(&mut self, ev: &FrameEndEvent<'_>) {
        let graph = &self.graph;
        let set_size = |k: TrackKey| match k {
            TrackKey::Node(n) => graph.alias_set_size(n),
            TrackKey::Var(_) => 1,
        };
        let mut cx = TrackCtx {
            states: &mut self.states,
            mode: self.config.alias_mode,
            bugs: &mut self.pending,
            stats: &mut self.stats,
            set_size: &set_size,
            loc: ev.loc,
            inst_id: ev.inst_id,
        };
        for c in self.checkers {
            c.on_frame_end(&mut cx, ev);
        }
        self.flush_pending();
    }

    /// How many distinct path snapshots are kept per problematic
    /// instruction pair: one would lose a real bug whose first discovered
    /// path happens to be infeasible (the validator then sees only the
    /// unsatisfiable snapshot), while unbounded snapshots explode on loopy
    /// code. Stage 2 reports the bug if *any* kept path validates.
    const MAX_PATHS_PER_BUG: u8 = 4;

    /// Converts pending checker reports into candidates, deduplicating by
    /// problematic-instruction pair (§4 P3) *before* cloning the trace.
    fn flush_pending(&mut self) {
        while let Some(pb) = self.pending.pop() {
            let alias_paths = self.render_alias_paths(pb.key);
            self.emit_bug(Arc::new(pb), Arc::new(alias_paths), None);
        }
    }

    /// The single bug-emission funnel, shared by live discovery and cache
    /// replay. `replay_suffix` is `Some` when re-emitting a recorded bug:
    /// the bug's path constraints are then the *live* trace (the replaying
    /// path's prefix) plus the constraints the recorded subtree pushed —
    /// exactly what a re-run would have cloned. Active recorders capture
    /// the bug with a suffix relative to their own entry point, so replay
    /// composes across nested recordings.
    fn emit_bug(
        &mut self,
        pb: Arc<PendingBug>,
        alias_paths: Arc<Vec<String>>,
        replay_suffix: Option<&[Constraint]>,
    ) {
        // Every observing recorder shares the same bug body and rendered
        // alias paths by refcount; only the constraint suffix (different
        // per recorder entry point) is materialized per recorder.
        for rec in &mut self.sub_recs {
            if rec.poisoned {
                continue;
            }
            if rec.events.len() >= EVENT_CAP {
                rec.poisoned = true;
                continue;
            }
            let mut suffix = self.trace[rec.trace_len..].to_vec();
            if let Some(s) = replay_suffix {
                suffix.extend_from_slice(s);
            }
            rec.events.push(RecordedBug {
                pb: Arc::clone(&pb),
                alias_paths: Arc::clone(&alias_paths),
                suffix,
            });
        }
        if let Some(m) = &mut self.memo_rec {
            if !m.suspended && !m.poisoned {
                if m.seg_events.len() >= EVENT_CAP {
                    m.poisoned = true;
                } else {
                    let mut suffix = self.trace[m.entry_mark.trace..].to_vec();
                    if let Some(s) = replay_suffix {
                        suffix.extend_from_slice(s);
                    }
                    m.seg_events.push(RecordedBug {
                        pb: Arc::clone(&pb),
                        alias_paths: Arc::clone(&alias_paths),
                        suffix,
                    });
                }
            }
        }

        let key = (pb.kind, pb.origin_id, pb.site_id);
        let count = self.seen.entry(key).or_insert(0);
        if *count >= Self::MAX_PATHS_PER_BUG {
            self.stats.repeated_bugs_dropped += 1;
            return;
        }
        *count += 1;
        self.stats.candidates += 1;
        if self.discard {
            // Fork helper: candidates are thrown away; skip the clones.
            return;
        }
        let mut constraints = self.trace.clone();
        if let Some(s) = replay_suffix {
            constraints.extend_from_slice(s);
        }
        // When no recorder kept a reference, unwrapping recovers the owned
        // values without a deep clone.
        let pb = Arc::try_unwrap(pb).unwrap_or_else(|a| (*a).clone());
        let alias_paths = Arc::try_unwrap(alias_paths).unwrap_or_else(|a| (*a).clone());
        self.candidates
            .push(pb.into_possible(constraints, alias_paths, self.root));
    }

    /// Renders up to four access paths of the offending alias set in the
    /// paper's `func:var` notation (Fig. 7) for the human-readable report.
    fn render_alias_paths(&self, key: Option<TrackKey>) -> Vec<String> {
        const MAX_PATHS: usize = 4;
        let module = self.module;
        let name_of = |v: VarId| {
            let info = module.var(v);
            match info.func {
                Some(f) => format!("{}:{}", module.function(f).name(), info.name),
                None => info.name.clone(),
            }
        };
        match key {
            Some(TrackKey::Node(n)) => self
                .graph
                .access_paths(n, 1)
                .into_iter()
                .filter(|ap| {
                    // Skip compiler temporaries; they mean nothing to users.
                    module.var(ap.base).kind != pata_ir::VarKind::Temp
                })
                .take(MAX_PATHS)
                .map(|ap| ap.render(&name_of, &module.interner))
                .collect(),
            Some(TrackKey::Var(v)) => vec![name_of(v)],
            None => Vec::new(),
        }
    }

    /// Clears states for a redefined variable in PATA-NA mode.
    fn na_clear_def(&mut self, dst: VarId) {
        if self.config.alias_mode != AliasMode::None {
            return;
        }
        for c in self.checkers {
            self.states.clear(c.kind().id(), TrackKey::Var(dst));
        }
        self.fresh_sym_for(TrackKey::Var(dst));
    }

    // ==============================================================
    // State fingerprints
    // ==============================================================

    /// Mask of `func`'s blocks that lie on a CFG cycle, i.e. can be entered
    /// more than once within one frame (recursive calls get a fresh frame).
    /// Computed once per function by successor-set reachability and shared
    /// by every frame running `func`.
    fn cyclic_mask(&mut self, func: FuncId) -> Arc<Vec<bool>> {
        if let Some(m) = self.cyclic_masks.get(&func) {
            return Arc::clone(m);
        }
        let f = self.module.function(func);
        let n = f.blocks().len();
        let succs: Vec<Vec<usize>> = f
            .blocks()
            .iter()
            .map(|b| match &b.term {
                Terminator::Jump(t) => vec![t.index()],
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => vec![then_bb.index(), else_bb.index()],
                Terminator::Ret(_) | Terminator::Unreachable => Vec::new(),
            })
            .collect();
        let mut cyclic = vec![false; n];
        let mut seen = vec![false; n];
        for (b, mask) in cyclic.iter_mut().enumerate() {
            seen.iter_mut().for_each(|s| *s = false);
            let mut stack = succs[b].clone();
            while let Some(x) = stack.pop() {
                if x == b {
                    *mask = true;
                    break;
                }
                if !std::mem::replace(&mut seen[x], true) {
                    stack.extend_from_slice(&succs[x]);
                }
            }
        }
        let mask = Arc::new(cyclic);
        self.cyclic_masks.insert(func, Arc::clone(&mask));
        mask
    }

    /// Slow XOR-fold of the path-local maps (condition definitions,
    /// symbols, function pointers) — the reference implementation for the
    /// incrementally maintained `maps_fp` accumulator, kept for the
    /// `debug_assert` cross-checks.
    fn slow_maps_fp(&self) -> u64 {
        let mut fp = 0u64;
        for (v, p) in &self.cond_defs {
            fp ^= cond_fact(*v, p);
        }
        for (k, s) in &self.syms {
            fp ^= hash2(TAG_SYM, key_lane(*k), s.index() as u64);
        }
        for (k, f) in &self.fptrs {
            fp ^= hash2(TAG_FPTR, key_lane(*k), f.index() as u64);
        }
        fp
    }

    /// The full dynamic-state fingerprint keying the subsumption table:
    /// everything a subtree's exploration can read. O(1): an XOR of the
    /// incrementally maintained accumulators, cross-checked against the
    /// slow recomputation in debug builds.
    fn dyn_fp(&self, conts: &[Cont]) -> u64 {
        let fp = self.graph.fingerprint()
            ^ self.states.fingerprint()
            ^ self.maps_fp
            ^ self.frames_fp
            ^ self.conts_fp;
        debug_assert_eq!(fp, self.slow_dyn_fp(conts));
        fp
    }

    /// Slow recomputation of [`Explorer::dyn_fp`] from first principles.
    /// Structural facts carry their stack index as a hash lane so identical
    /// facts at different positions (or duplicated facts) cannot XOR-cancel.
    fn slow_dyn_fp(&self, conts: &[Cont]) -> u64 {
        let mut fp = self.graph.fingerprint() ^ self.states.fingerprint() ^ self.slow_maps_fp();
        for (d, frame) in self.frames.iter().enumerate() {
            fp ^= hash2(TAG_FRAME, d as u64, frame.func.index() as u64);
            // Only cyclic blocks: an acyclic block can never be re-entered
            // within a frame, so its count is unreadable path history.
            for (b, &count) in frame.visited.iter().enumerate() {
                if count > 0 && frame.cyclic[b] {
                    fp ^= hash4(TAG_VISIT, d as u64, b as u64, count as u64, 0);
                }
            }
            for (i, h) in frame.heap_objects.iter().enumerate() {
                fp ^= heap_fact(d, i, h);
            }
        }
        for (i, c) in conts.iter().enumerate() {
            fp ^= cont_fact(i, c);
        }
        fp
    }

    fn call_stack_fp(&self) -> u64 {
        let mut fp = 0u64;
        for (i, f) in self.call_stack.iter().enumerate() {
            fp ^= hash2(TAG_CALLSTACK, i as u64, f.index() as u64);
        }
        fp
    }

    fn memo_key(&self, callee: FuncId, args: &[Operand]) -> MemoKey {
        // The argument operands are part of the key: the state fingerprint
        // is taken *before* parameter binding, so two sites calling the
        // same callee with different operands (`h(d, 1)` vs `h(d, 2)`)
        // would otherwise collide and replay the wrong binding.
        let mut args_fp = 0u64;
        for (i, a) in args.iter().enumerate() {
            args_fp ^= hash2(TAG_ARG, i as u64, operand_lane(*a));
        }
        debug_assert_eq!(self.maps_fp, self.slow_maps_fp());
        (
            callee,
            self.graph.fingerprint() ^ self.states.fingerprint() ^ self.maps_fp ^ args_fp,
            self.next_sym,
            self.graph.node_count() as u64,
            self.call_stack_fp(),
        )
    }

    // ==============================================================
    // Cache tables & gates
    // ==============================================================

    fn sub_enabled(&self) -> bool {
        self.config.exploration_cache && !self.caches_off
    }

    /// Subsumption lookups are refused while a callee recording is active
    /// and un-suspended: a hit would swallow the `Ret` that delimits the
    /// recording's current segment.
    fn sub_lookup_allowed(&self) -> bool {
        match &self.memo_rec {
            Some(m) => m.suspended,
            None => true,
        }
    }

    /// Callee memoization needs alias mode: in PATA-NA mode state is keyed
    /// by caller-scoped variables, which a callee-local effect journal
    /// cannot name portably.
    fn memo_enabled(&self) -> bool {
        self.config.callee_memo
            && !self.caches_off
            && self.config.alias_mode == AliasMode::PathBased
    }

    fn get_sub(&self, key: &SubKey) -> Option<Arc<SubEntry>> {
        match &self.tables {
            Tables::Local { sub, .. } => sub.get(key).cloned(),
            Tables::Shared(t) => poison_ok(t.sub[shard_of(key.2)].lock()).get(key).cloned(),
        }
    }

    fn insert_sub(&mut self, key: SubKey, entry: SubEntry) {
        match &mut self.tables {
            Tables::Local { sub, .. } => {
                if sub.len() < SUB_TABLE_CAP {
                    sub.insert(key, Arc::new(entry));
                }
            }
            Tables::Shared(t) => {
                let mut shard = poison_ok(t.sub[shard_of(key.2)].lock());
                if shard.len() < SUB_TABLE_CAP / SHARDS {
                    shard.insert(key, Arc::new(entry));
                }
            }
        }
    }

    fn get_memo(&self, key: &MemoKey) -> Option<Arc<MemoEntry>> {
        match &self.tables {
            Tables::Local { memo, .. } => memo.get(key).cloned(),
            Tables::Shared(t) => poison_ok(t.memo[shard_of(key.1)].lock()).get(key).cloned(),
        }
    }

    fn insert_memo(&mut self, key: MemoKey, entry: MemoEntry) {
        match &mut self.tables {
            Tables::Local { memo, .. } => {
                if memo.len() < MEMO_TABLE_CAP {
                    memo.insert(key, Arc::new(entry));
                }
            }
            Tables::Shared(t) => {
                let mut shard = poison_ok(t.memo[shard_of(key.1)].lock());
                if shard.len() < MEMO_TABLE_CAP / SHARDS {
                    shard.insert(key, Arc::new(entry));
                }
            }
        }
    }

    /// Poisons every active recording — called when a forced fork prefix
    /// truncates the subtree the recordings would describe.
    fn poison_recorders(&mut self) {
        for rec in &mut self.sub_recs {
            rec.poisoned = true;
        }
        if let Some(m) = &mut self.memo_rec {
            m.poisoned = true;
        }
    }

    /// Whether a recorded exploration delta fits strictly under the
    /// remaining budget. Strict fit keeps replay deterministic: exhaustion
    /// always trips *between* recorded units, never inside one, and a
    /// subtree that would cross the line re-runs live so the budgeted
    /// truncation lands on the same instruction a cache-free run stops at.
    fn replay_fits(&self, d: &AnalysisStats) -> bool {
        let b = &self.config.budget;
        self.stats.insts_processed + d.insts_processed < b.max_insts as u64
            && self.stats.paths_explored + d.paths_explored < b.max_paths as u64
    }

    // ==============================================================
    // Replay
    // ==============================================================

    /// Replays a completed-subtree entry: pure accounting plus re-emitting
    /// the recorded bugs through the live dedup filter.
    fn replay_sub(&mut self, entry: &SubEntry) {
        self.stats += &entry.d_stats;
        self.stats.insts_replayed += entry.d_stats.insts_processed;
        self.stats.exploration_cache_hits += 1;
        for (a, d) in self.alias_ops.iter_mut().zip(&entry.d_alias_ops) {
            *a += d;
        }
        self.next_sym += entry.d_next_sym;
        for i in 0..entry.events.len() {
            let RecordedBug {
                pb,
                alias_paths,
                suffix,
            } = entry.events[i].clone();
            self.emit_bug(pb, alias_paths, Some(&suffix));
        }
    }

    // ==============================================================
    // Execution
    // ==============================================================

    fn budget_ok(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        let b = &self.config.budget;
        if self.stats.insts_processed >= b.max_insts as u64 {
            self.exhausted = true;
            self.budget_reason.get_or_insert("max_insts");
            return false;
        }
        if self.stats.paths_explored >= b.max_paths as u64 {
            self.exhausted = true;
            self.budget_reason.get_or_insert("max_paths");
            return false;
        }
        true
    }

    fn path_end(&mut self) {
        self.stats.paths_explored += 1;
    }

    /// Resource-budget check at a branch fork point: injected `deadline` /
    /// `live_bytes` faults first (deterministic by construction), then the
    /// real wall-clock deadline and live-bytes ceiling. Returns whether a
    /// budget tripped *now* — the root is then marked exhausted with the
    /// budget reason and the driver's demote-then-quarantine ladder takes
    /// over (the internal cache-free rerun is skipped for these reasons).
    fn check_resource_budgets(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        let mut trip: Option<&'static str> = None;
        if let Some(plan) = self.fault() {
            let name = self.module.function(self.root).name();
            if plan.should_fire("deadline", name) {
                trip = Some("deadline");
            } else if plan.should_fire("live_bytes", name) {
                trip = Some("live_bytes");
            }
        }
        if trip.is_none() {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() >= deadline {
                    trip = Some("deadline");
                }
            }
        }
        if trip.is_none()
            && self.config.max_live_bytes > 0
            && self.live_bytes_estimate() > self.config.max_live_bytes
        {
            trip = Some("live_bytes");
        }
        match trip {
            Some(reason) => {
                self.exhausted = true;
                self.budget_reason.get_or_insert(reason);
                true
            }
            None => false,
        }
    }

    /// Whether the loop cut still allows entering `block` in this frame.
    fn may_enter(&self, block: BlockId) -> bool {
        let limit = self.config.budget.loop_iterations as u32 + 1;
        let frame = self.frames.last().expect("frame");
        frame.visited[block.index()] < limit
    }

    fn exec_block(&mut self, func: FuncId, block: BlockId, conts: &mut Vec<Cont>) {
        if !self.budget_ok() {
            return;
        }

        // Fingerprint cross-check, active independent of `debug_assert` so
        // a release-mode test can drive it (see `tests` below). The hot
        // path pays one predicted branch.
        if self.verify_fp {
            let fast = self.graph.fingerprint()
                ^ self.states.fingerprint()
                ^ self.maps_fp
                ^ self.frames_fp
                ^ self.conts_fp;
            assert_eq!(
                fast,
                self.slow_dyn_fp(conts),
                "incremental fingerprint accumulators diverged from the slow fold"
            );
        }

        // Subsumption: if this exact (block, state) was fully explored
        // before and its recorded volume fits the remaining budget, replay
        // the recorded effects instead of re-walking the subtree. The
        // fingerprint is taken *before* this entry's visit-count bump, the
        // same point the recording keyed on.
        let mut rec_pushed = false;
        if self.sub_enabled() {
            let key = (
                func,
                block,
                self.dyn_fp(conts),
                self.next_sym,
                self.graph.node_count() as u64,
            );
            if self.sub_lookup_allowed() {
                if let Some(entry) = self.get_sub(&key) {
                    if self.replay_fits(&entry.d_stats) {
                        self.replay_sub(&entry);
                        return;
                    }
                }
            }
            self.sub_recs.push(SubRecorder {
                key,
                base_stats: self.stats.clone(),
                base_alias_ops: self.alias_ops,
                base_next_sym: self.next_sym,
                trace_len: self.trace.len(),
                events: Vec::new(),
                poisoned: false,
            });
            rec_pushed = true;
        }

        debug_assert_eq!(self.frames.last().expect("frame").func, func);
        self.bump_visited(block, true);
        self.exec_from(func, block, 0, conts);
        self.bump_visited(block, false);

        if rec_pushed {
            let rec = self.sub_recs.pop().expect("recorder");
            // An exhausted subtree is incomplete; inserting it would let a
            // replay claim exploration that never happened.
            if !self.exhausted && !rec.poisoned {
                let mut d_alias_ops = self.alias_ops;
                for (d, b) in d_alias_ops.iter_mut().zip(&rec.base_alias_ops) {
                    *d -= b;
                }
                self.insert_sub(
                    rec.key,
                    SubEntry {
                        d_stats: self.stats.exploration_delta(&rec.base_stats),
                        d_alias_ops,
                        d_next_sym: self.next_sym - rec.base_next_sym,
                        events: rec.events,
                    },
                );
            }
        }
    }

    fn exec_from(&mut self, func: FuncId, block: BlockId, start: usize, conts: &mut Vec<Cont>) {
        let f = self.module.function(func);
        let b = f.block(block);
        for i in start..b.insts.len() {
            if !self.budget_ok() {
                return;
            }
            self.stats.insts_processed += 1;
            let inst = &b.insts[i];
            let inst_id = InstId {
                func,
                block,
                inst: i,
            };
            match self.apply_inst(func, inst_id, inst, conts) {
                Flow::Continue => {}
                Flow::EnteredCall => return, // rest ran via continuation
            }
        }
        self.stats.insts_processed += 1;
        self.exec_terminator(func, block, conts);
    }

    fn exec_terminator(&mut self, func: FuncId, block: BlockId, conts: &mut Vec<Cont>) {
        let f = self.module.function(func);
        let b = f.block(block);
        let term_id = InstId {
            func,
            block,
            inst: b.insts.len(),
        };
        let term_loc = b.term_loc;
        match b.term.clone() {
            Terminator::Jump(target) => {
                if !self.may_enter(target) {
                    // Loop cut reached: the path ends here (§3.1).
                    self.path_end();
                } else {
                    self.exec_block(func, target, conts);
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                if self.check_resource_budgets() {
                    // A freshly tripped deadline/ceiling truncates here,
                    // exactly like an instruction-budget trip in
                    // `budget_ok` (no `path_end` for a truncated path).
                    return;
                }
                let pred = self.cond_defs.get(&cond).copied();
                // Fork helpers force their first branches along a distinct
                // prefix, steering them into a DFS region the owner reaches
                // late. Forcing truncates the subtree every active recorder
                // would describe, so recordings in flight are poisoned.
                let forced = self.fork_prefix.get(self.fork_taken).copied();
                if forced.is_some() {
                    self.poison_recorders();
                }
                self.fork_taken += 1;
                let mut any = false;
                for (succ, taken) in [(then_bb, true), (else_bb, false)] {
                    if forced.is_some_and(|dir| dir != taken) {
                        continue;
                    }
                    if !self.may_enter(succ) {
                        continue;
                    }
                    // Constant-foldable branches prune trivially dead edges.
                    if let Some(p) = pred {
                        if let (Operand::Const(l), Operand::Const(r)) = (p.lhs, p.rhs) {
                            let holds = p.op.eval(l.as_int(), r.as_int());
                            if holds != taken {
                                continue;
                            }
                        }
                    }
                    any = true;
                    let cow = self.config.cow_state;
                    if self.tel_enabled {
                        self.note_fork(cow);
                    }
                    if cow {
                        // Copy-on-write fork: a fixed-size mark; sibling
                        // arms restore by journal rollback, O(changed).
                        let mark = self.full_mark();
                        self.run_branch_arm(pred, taken, term_loc, term_id, func, succ, conts);
                        self.full_rollback(&mark);
                    } else {
                        // Literal COPY semantics (paper Fig. 7): deep-clone
                        // the live state, restore by move-assignment. The
                        // measured baseline and differential oracle for the
                        // journaled mode.
                        let snap = self.clone_snapshot();
                        self.run_branch_arm(pred, taken, term_loc, term_id, func, succ, conts);
                        self.restore_snapshot(snap);
                    }
                }
                self.fork_taken -= 1;
                if !any {
                    self.path_end();
                }
            }
            Terminator::Ret(value) => {
                self.handle_ret(value, term_loc, term_id, conts);
            }
            Terminator::Unreachable => {
                self.path_end();
            }
        }
    }

    /// One branch successor: assert the effective predicate, then explore.
    /// The caller brackets this with a fork (mark/rollback or clone/restore
    /// depending on [`crate::AnalysisConfig::cow_state`]).
    #[allow(clippy::too_many_arguments)]
    fn run_branch_arm(
        &mut self,
        pred: Option<PredDef>,
        taken: bool,
        loc: Loc,
        inst_id: InstId,
        func: FuncId,
        succ: BlockId,
        conts: &mut Vec<Cont>,
    ) {
        if let Some(p) = pred {
            self.assert_branch(p, taken, loc, inst_id);
        }
        if !self.exhausted {
            self.exec_block(func, succ, conts);
        }
    }

    /// Tallies one branch-arm fork into the `driver.explore.fork.*` family:
    /// what this fork materializes (a fixed-size mark in CoW mode, a deep
    /// clone otherwise), what stays shared, and the journal depth at the
    /// fork point. Only called when telemetry is enabled.
    fn note_fork(&mut self, cow: bool) {
        let journal_depth = (self.graph.journal_len()
            + self.states.journal_len()
            + self.cond_journal.len()
            + self.sym_journal.len()
            + self.fptr_journal.len()
            + self.heap_journal.len()) as u64;
        let live = self.live_bytes_estimate();
        let copied = if cow {
            std::mem::size_of::<FullMark>() as u64
        } else {
            live
        };
        let fs = &mut self.fork_stats;
        fs.forks += 1;
        fs.bytes_copied += copied;
        if cow {
            fs.bytes_shared += live;
        }
        fs.journal_depth_max = fs.journal_depth_max.max(journal_depth);
        fs.live_bytes_max = fs.live_bytes_max.max(live);
    }

    /// Estimate of the live path-state heap bytes a clone-based fork copies.
    /// Everything but the per-frame walk (bounded by call depth) is O(1).
    fn live_bytes_estimate(&self) -> u64 {
        use std::mem::size_of;
        self.graph.approx_bytes()
            + self.states.approx_bytes()
            + (self.cond_defs.len() * size_of::<(VarId, PredDef)>()) as u64
            + (self.cond_journal.len() * size_of::<(VarId, Option<PredDef>)>()) as u64
            + (self.syms.len() * size_of::<(TrackKey, SymId)>()) as u64
            + (self.sym_journal.len() * size_of::<(TrackKey, Option<SymId>)>()) as u64
            + (self.fptrs.len() * size_of::<(TrackKey, FuncId)>()) as u64
            + (self.fptr_journal.len() * size_of::<(TrackKey, Option<FuncId>)>()) as u64
            + (self.heap_journal.len() * size_of::<HeapPush>()) as u64
            + (self.trace.len() * size_of::<Constraint>()) as u64
            + (self.frames.len() * size_of::<Frame>()) as u64
            + self.frames.iter().map(Frame::approx_bytes).sum::<u64>()
    }

    /// Deep-copies every forkable structure (clone-fork mode).
    fn clone_snapshot(&self) -> CloneSnapshot {
        CloneSnapshot {
            graph: self.graph.clone(),
            states: self.states.clone(),
            cond_defs: self.cond_defs.clone(),
            cond_journal: self.cond_journal.clone(),
            syms: self.syms.clone(),
            sym_journal: self.sym_journal.clone(),
            fptrs: self.fptrs.clone(),
            fptr_journal: self.fptr_journal.clone(),
            heap_journal: self.heap_journal.clone(),
            next_sym: self.next_sym,
            trace: self.trace.clone(),
            frames: self.frames.clone(),
            maps_fp: self.maps_fp,
            frames_fp: self.frames_fp,
        }
    }

    /// Restores a clone-fork snapshot by move-assignment. Journals are
    /// restored to their fork-time prefixes, so marks held by recorders
    /// opened before the fork stay valid, exactly as under rollback.
    fn restore_snapshot(&mut self, snap: CloneSnapshot) {
        self.graph = snap.graph;
        self.states = snap.states;
        self.cond_defs = snap.cond_defs;
        self.cond_journal = snap.cond_journal;
        self.syms = snap.syms;
        self.sym_journal = snap.sym_journal;
        self.fptrs = snap.fptrs;
        self.fptr_journal = snap.fptr_journal;
        self.heap_journal = snap.heap_journal;
        self.next_sym = snap.next_sym;
        self.trace = snap.trace;
        self.frames = snap.frames;
        self.maps_fp = snap.maps_fp;
        self.frames_fp = snap.frames_fp;
    }

    fn assert_branch(&mut self, p: PredDef, taken: bool, loc: Loc, inst_id: InstId) {
        // Normalize the variable (if any) to the lhs.
        let (mut op, mut lhs, mut rhs) = (p.op, p.lhs, p.rhs);
        if lhs.as_var().is_none() && rhs.as_var().is_some() {
            std::mem::swap(&mut lhs, &mut rhs);
            op = op.swap();
        }
        let eff_op = if taken { op } else { op.negate() };

        // Table 3: brt(e) / brf(e) constraints.
        let lt = self.operand_term(lhs);
        let rt = self.operand_term(rhs);
        let smt_op = to_smt_op(eff_op);
        self.push_constraint(Constraint::new(smt_op, lt, rt));

        // Checker branch events.
        let lhs_is_pointer = match lhs {
            Operand::Var(v) => self.module.var(v).ty.is_pointer(),
            Operand::Const(_) => false,
        };
        let lhs_key = match lhs {
            Operand::Var(v) => OperandKey::Var(v, self.key_of(v)),
            Operand::Const(c) => OperandKey::Const(c.as_int()),
        };
        let rhs_key = match rhs {
            Operand::Var(v) => OperandKey::Var(v, self.key_of(v)),
            Operand::Const(c) => OperandKey::Const(c.as_int()),
        };
        let ev = BranchEvent {
            op: eff_op,
            lhs: lhs_key,
            rhs: rhs_key,
            lhs_is_pointer,
            loc,
            inst_id,
        };
        self.run_checkers_branch(&ev);
    }

    fn handle_ret(
        &mut self,
        value: Option<Operand>,
        loc: Loc,
        inst_id: InstId,
        conts: &mut Vec<Cont>,
    ) {
        // Frame-end events (memory-leak finalization).
        let ret_val_key = match value {
            Some(Operand::Var(v)) => Some(self.key_of(v)),
            _ => None,
        };
        let frame_objects = std::mem::take(&mut self.frames.last_mut().unwrap().heap_objects);
        {
            let ev = FrameEndEvent {
                heap_objects: &frame_objects,
                ret_val_key,
                loc,
                inst_id,
            };
            self.run_checkers_frame_end(&ev);
        }
        self.frames.last_mut().unwrap().heap_objects = frame_objects;

        // UVA `use` of the returned value.
        if let Some(Operand::Var(v)) = value {
            let key = self.key_of(v);
            let info = crate::typestate::UpdateInfo {
                use_keys: vec![(v, key)],
                ..Default::default()
            };
            // Reuse the Move shape so checkers treat it as a plain use.
            let kind = InstKind::Move { dst: v, src: v };
            self.run_checkers_inst(&kind, &info, loc, inst_id);
        }

        if conts.is_empty() {
            // Root return: the path is complete.
            self.path_end();
            return;
        }

        // Return into the caller's continuation.
        let cont = self.pop_cont(conts);
        let frame = self.pop_frame();
        let callee = self.call_stack.pop().unwrap();

        // Popping back to the memoized call site's depth delimits one
        // return path of the recording: snapshot its net effects, then
        // suspend while the *caller's* continuation runs live (that work
        // belongs to the caller, not the callee summary).
        let memo_boundary = matches!(
            &self.memo_rec,
            Some(m) if !m.suspended && conts.len() == m.base_conts
        );
        if memo_boundary {
            self.memo_end_segment(Some((value, loc, inst_id)));
        }

        self.ret_into_caller(cont.dst, value, loc, inst_id, &cont, conts);

        // Restore structural stacks for sibling paths in the callee. The
        // frame re-enters at the depth it was created for, so its cached
        // fingerprint is still valid.
        self.call_stack.push(callee);
        self.push_frame(frame);
        self.push_cont(conts, cont);
        if memo_boundary {
            self.memo_resume();
        }
    }

    /// The live caller-side tail of a return: bind the value, re-own
    /// returned heap objects, and continue the caller's block. Shared by
    /// normal returns and callee-memo replay (which re-runs this part live
    /// at every replayed return path).
    fn ret_into_caller(
        &mut self,
        dst: Option<VarId>,
        value: Option<Operand>,
        loc: Loc,
        inst_id: InstId,
        cont: &Cont,
        conts: &mut Vec<Cont>,
    ) {
        if let Some(dst) = dst {
            self.bind_value(dst, value, loc, inst_id);
            // Re-own heap objects transferred by `return p` (ML RETURNED →
            // SNF in the caller's frame).
            let dst_key = self.key_of(dst);
            let ml_id = crate::checkers::BugKind::MemoryLeak.id();
            if let Some(entry) = self.states.get(ml_id, dst_key) {
                if entry.state == ml::S_RETURNED {
                    let graph = &self.graph;
                    let set_size = |k: TrackKey| match k {
                        TrackKey::Node(n) => graph.alias_set_size(n),
                        TrackKey::Var(_) => 1,
                    };
                    let mut cx = TrackCtx {
                        states: &mut self.states,
                        mode: self.config.alias_mode,
                        bugs: &mut self.pending,
                        stats: &mut self.stats,
                        set_size: &set_size,
                        loc,
                        inst_id,
                    };
                    cx.transition(ml_id, dst_key, ml::S_NF, Some(entry));
                    drop(cx);
                    self.push_heap(HeapObject {
                        key: dst_key,
                        loc: entry.origin_loc,
                        inst_id: entry.origin_id,
                    });
                }
            }
        }

        self.exec_from(cont.func, cont.block, cont.next_inst, conts);
    }

    // ==============================================================
    // Callee-summary recording & replay
    // ==============================================================

    /// Closes the current recording segment: net journal effects since the
    /// call site, the constraint suffix, exploration volume since the last
    /// resume, and (for a real return path) the value to bind.
    fn memo_end_segment(&mut self, ret: Option<(Option<Operand>, Loc, InstId)>) {
        let Some(mut m) = self.memo_rec.take() else {
            return;
        };
        if m.segments.len() >= SEGMENT_CAP {
            m.poisoned = true;
        }
        if !m.poisoned {
            // Net map deltas: touched keys from the journal suffix, with
            // their *current* values (rollbacks between return paths pop
            // their journal entries, so the suffix is pollution-free).
            let mut cond_delta = Vec::new();
            let mut cond_seen = FxHashMap::default();
            for (v, _) in &self.cond_journal[m.entry_mark.conds..] {
                if cond_seen.insert(*v, ()).is_none() {
                    cond_delta.push((*v, self.cond_defs.get(v).copied()));
                }
            }
            let mut sym_delta = Vec::new();
            let mut sym_seen = FxHashMap::default();
            for (k, _) in &self.sym_journal[m.entry_mark.syms..] {
                if sym_seen.insert(*k, ()).is_none() {
                    sym_delta.push((*k, self.syms.get(k).copied()));
                }
            }
            let mut fptr_delta = Vec::new();
            let mut fptr_seen = FxHashMap::default();
            for (k, _) in &self.fptr_journal[m.entry_mark.fptrs..] {
                if fptr_seen.insert(*k, ()).is_none() {
                    fptr_delta.push((*k, self.fptrs.get(k).copied()));
                }
            }
            let mut d_alias_ops = self.alias_ops;
            for (d, b) in d_alias_ops.iter_mut().zip(&m.seg_base_alias_ops) {
                *d -= b;
            }
            m.segments.push(MemoSegment {
                graph_ops: self.graph.ops_since(m.entry_mark.graph).to_vec(),
                state_ops: self.states.ops_since(m.entry_mark.states).to_vec(),
                cond_delta,
                sym_delta,
                fptr_delta,
                trace_suffix: self.trace[m.entry_mark.trace..].to_vec(),
                d_stats: self.stats.exploration_delta(&m.seg_base_stats),
                d_alias_ops,
                // Entry-relative, like every journaled delta: branch
                // rollbacks inside the callee restore `next_sym`, so the
                // value at each `Ret` is entry + this path's allocations —
                // exactly what the replay's per-segment rollback expects.
                d_next_sym: self.next_sym - m.entry_mark.next_sym,
                events: std::mem::take(&mut m.seg_events),
                ret,
            });
        }
        m.suspended = true;
        self.memo_rec = Some(m);
    }

    /// Resumes recording after the live caller tail of a return path.
    fn memo_resume(&mut self) {
        if let Some(m) = &mut self.memo_rec {
            m.suspended = false;
            m.seg_base_stats = self.stats.clone();
            m.seg_base_alias_ops = self.alias_ops;
        }
    }

    /// Replays a recorded callee exploration at a call site whose entry
    /// state matches the recording's key: per return path, apply the net
    /// effects through the journaled primitives, re-emit recorded bugs, run
    /// the caller continuation live, and roll back for the next path.
    fn replay_memo(
        &mut self,
        entry: &MemoEntry,
        func: FuncId,
        inst_id: InstId,
        dst: Option<VarId>,
        conts: &mut Vec<Cont>,
    ) {
        self.stats.callee_memo_hits += 1;
        let mark = self.full_mark();
        let cont = Cont {
            func,
            block: inst_id.block,
            next_inst: inst_id.inst + 1,
            dst,
        };
        for seg in &entry.segments {
            if self.exhausted {
                break;
            }
            if !self.replay_fits(&seg.d_stats) {
                // The recording would cross a budget line mid-path; stop
                // here. explore() re-runs the root cache-free, so the
                // truncated verdicts never reach the user.
                self.exhausted = true;
                let b = &self.config.budget;
                let reason = if self.stats.insts_processed + seg.d_stats.insts_processed
                    >= b.max_insts as u64
                {
                    "max_insts"
                } else {
                    "max_paths"
                };
                self.budget_reason.get_or_insert(reason);
                break;
            }
            for op in &seg.graph_ops {
                self.graph.apply_op(op);
            }
            for op in &seg.state_ops {
                self.states.apply_op(op);
            }
            for (v, new) in &seg.cond_delta {
                let old = self.set_cond(*v, *new);
                self.cond_journal.push((*v, old));
            }
            for (k, new) in &seg.sym_delta {
                let old = self.set_sym(*k, *new);
                self.sym_journal.push((*k, old));
            }
            for (k, new) in &seg.fptr_delta {
                let old = self.set_fptr(*k, *new);
                self.fptr_journal.push((*k, old));
            }
            self.next_sym += seg.d_next_sym;
            self.stats += &seg.d_stats;
            self.stats.insts_replayed += seg.d_stats.insts_processed;
            for (a, d) in self.alias_ops.iter_mut().zip(&seg.d_alias_ops) {
                *a += d;
            }
            for i in 0..seg.events.len() {
                let RecordedBug {
                    pb,
                    alias_paths,
                    suffix,
                } = seg.events[i].clone();
                self.emit_bug(pb, alias_paths, Some(&suffix));
            }
            self.trace.extend_from_slice(&seg.trace_suffix);
            if let Some((value, rloc, rid)) = seg.ret {
                self.ret_into_caller(dst, value, rloc, rid, &cont, conts);
            }
            self.full_rollback(&mark);
        }
    }

    /// Binds `value` into `dst` as the paper's return-MOVE (Fig. 6 line 20).
    fn bind_value(&mut self, dst: VarId, value: Option<Operand>, loc: Loc, inst_id: InstId) {
        match value {
            Some(Operand::Var(src)) => {
                self.na_clear_def(dst);
                let info = match self.config.alias_mode {
                    AliasMode::PathBased => {
                        let n = self.graph.handle_move(dst, src);
                        self.count_unaware_alias_op(src);
                        self.count_unaware_sync(nkey(n));
                        crate::typestate::UpdateInfo {
                            dst_key: Some(nkey(n)),
                            move_pair: Some((nkey(n), nkey(n))),
                            ..Default::default()
                        }
                    }
                    AliasMode::None => {
                        let dk = TrackKey::Var(dst);
                        let sk = TrackKey::Var(src);
                        let d = self.sym_for(dk);
                        let s = self.sym_for(sk);
                        self.push_constraint(Constraint::new(
                            SmtOp::Eq,
                            Term::sym(d),
                            Term::sym(s),
                        ));
                        crate::typestate::UpdateInfo {
                            dst_key: Some(dk),
                            move_pair: Some((dk, sk)),
                            ..Default::default()
                        }
                    }
                };
                let kind = InstKind::Move { dst, src };
                self.run_checkers_inst(&kind, &info, loc, inst_id);
            }
            Some(Operand::Const(c)) => {
                self.na_clear_def(dst);
                let key = match self.config.alias_mode {
                    AliasMode::PathBased => nkey(self.graph.handle_const(dst)),
                    AliasMode::None => TrackKey::Var(dst),
                };
                let s = self.sym_for(key);
                self.push_constraint(Constraint::new(
                    SmtOp::Eq,
                    Term::sym(s),
                    Term::int(c.as_int()),
                ));
                let kind = InstKind::Const { dst, value: c };
                let info = crate::typestate::UpdateInfo {
                    dst_key: Some(key),
                    ..Default::default()
                };
                self.run_checkers_inst(&kind, &info, loc, inst_id);
            }
            None => {
                // void return into a destination: havoc.
                self.na_clear_def(dst);
                if self.config.alias_mode == AliasMode::PathBased {
                    self.graph.handle_const(dst);
                }
            }
        }
    }

    // ==============================================================
    // Instructions
    // ==============================================================

    fn apply_inst(
        &mut self,
        func: FuncId,
        inst_id: InstId,
        inst: &Inst,
        conts: &mut Vec<Cont>,
    ) -> Flow {
        let loc = inst.loc;
        let alias = self.config.alias_mode == AliasMode::PathBased;
        // Calls carry their own scratch discipline (checker dispatch happens
        // before recursing into the callee); delegate before borrowing ours.
        if let InstKind::Call { dst, callee, args } = &inst.kind {
            return self.apply_call(func, inst_id, loc, *dst, *callee, args, &inst.kind, conts);
        }
        // Reuse one scratch `UpdateInfo` per explorer: `clear` keeps the
        // `use_keys`/`escape_keys` capacity, removing an alloc/free pair
        // from every instruction step.
        let mut info = std::mem::take(&mut self.info_scratch);
        info.clear();
        match &inst.kind {
            InstKind::Move { dst, src } => {
                info.use_keys.push((*src, self.key_of(*src)));
                self.na_clear_def(*dst);
                if alias {
                    self.tally_alias_op(0);
                    let n = self.graph.handle_move(*dst, *src);
                    self.count_unaware_alias_op(*src);
                    self.count_unaware_sync(nkey(n));
                    info.dst_key = Some(nkey(n));
                    info.move_pair = Some((nkey(n), nkey(n)));
                } else {
                    let dk = TrackKey::Var(*dst);
                    let sk = TrackKey::Var(*src);
                    let d = self.sym_for(dk);
                    let s = self.sym_for(sk);
                    self.push_constraint(Constraint::new(SmtOp::Eq, Term::sym(d), Term::sym(s)));
                    info.dst_key = Some(dk);
                    info.move_pair = Some((dk, sk));
                }
            }
            InstKind::Const { dst, value } => {
                self.na_clear_def(*dst);
                let key = if alias {
                    self.tally_alias_op(1);
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                let s = self.sym_for(key);
                self.push_constraint(Constraint::new(
                    SmtOp::Eq,
                    Term::sym(s),
                    Term::int(value.as_int()),
                ));
                info.dst_key = Some(key);
            }
            InstKind::Load { dst, addr } => {
                info.use_keys.push((*addr, self.key_of(*addr)));
                info.deref_key = Some(self.key_of(*addr));
                self.na_clear_def(*dst);
                if alias {
                    self.tally_alias_op(2);
                    let n = self.graph.handle_load(*dst, *addr);
                    self.count_unaware_alias_op(*dst);
                    self.count_unaware_sync(nkey(n));
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::Store { addr, val } => {
                info.use_keys.push((*addr, self.key_of(*addr)));
                info.deref_key = Some(self.key_of(*addr));
                if let Operand::Var(v) = val {
                    info.use_keys.push((*v, self.key_of(*v)));
                }
                if alias {
                    self.tally_alias_op(3);
                    match val {
                        Operand::Var(v) => {
                            // A stored function pointer keeps its binding:
                            // the value's node IS the new deref target, so
                            // the fptr map needs no update in alias mode.
                            let si = self.graph.handle_store(*addr, *v);
                            self.count_unaware_alias_op(*v);
                            info.stored_val_key = Some(nkey(si.new_target));
                            info.store_old_target = si.old_target.map(|n| nkey(n));
                        }
                        Operand::Const(c) => {
                            let si = self.graph.handle_store_const(*addr);
                            let key = nkey(si.new_target);
                            let s = self.sym_for(key);
                            self.push_constraint(Constraint::new(
                                SmtOp::Eq,
                                Term::sym(s),
                                Term::int(c.as_int()),
                            ));
                            info.stored_const = Some((key, *c));
                            info.store_old_target = si.old_target.map(|n| nkey(n));
                        }
                    }
                }
            }
            InstKind::Gep { dst, base, field } => {
                info.use_keys.push((*base, self.key_of(*base)));
                info.deref_key = Some(self.key_of(*base));
                self.na_clear_def(*dst);
                if alias {
                    self.tally_alias_op(4);
                    let n = self.graph.handle_gep(*dst, *base, *field);
                    self.count_unaware_alias_op(*dst);
                    self.count_unaware_sync(nkey(n));
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::AddrOf { dst, src } => {
                self.na_clear_def(*dst);
                if alias {
                    self.tally_alias_op(5);
                    let n = self.graph.handle_addr_of(*dst, *src);
                    self.count_unaware_alias_op(*dst);
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::Index { dst, base, index } => {
                info.use_keys.push((*base, self.key_of(*base)));
                info.deref_key = Some(self.key_of(*base));
                if let Operand::Var(v) = index {
                    info.use_keys.push((*v, self.key_of(*v)));
                    info.index_key = Some(self.key_of(*v));
                }
                info.index_const = index.as_const().map(|c| c.as_int());
                self.na_clear_def(*dst);
                if alias {
                    // Element access paths are keyed by the index operand
                    // (paper §5.2: array-insensitive access paths).
                    let label = match index {
                        Operand::Const(c) => Label::ElemConst(c.as_int()),
                        Operand::Var(v) => Label::ElemVar(v.index() as u32),
                    };
                    self.tally_alias_op(6);
                    let n = self.graph.handle_index(*dst, *base, label);
                    self.count_unaware_alias_op(*dst);
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::Bin { dst, op, lhs, rhs } => {
                for o in [lhs, rhs] {
                    if let Operand::Var(v) = o {
                        info.use_keys.push((*v, self.key_of(*v)));
                    }
                }
                if op.traps_on_zero() {
                    if let Operand::Var(v) = rhs {
                        info.divisor_key = Some(self.key_of(*v));
                    }
                    info.divisor_const = rhs.as_const().map(|c| c.as_int());
                }
                let lt = self.operand_term(*lhs);
                let rt = self.operand_term(*rhs);
                self.na_clear_def(*dst);
                let key = if alias {
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                let s = self.sym_for(key);
                let rhs_term = bin_term(*op, lt, rt);
                self.push_constraint(Constraint::new(SmtOp::Eq, Term::sym(s), rhs_term));
                info.dst_key = Some(key);
            }
            InstKind::Cmp { dst, op, lhs, rhs } => {
                for o in [lhs, rhs] {
                    if let Operand::Var(v) = o {
                        info.use_keys.push((*v, self.key_of(*v)));
                    }
                }
                // Remember the predicate for the branch that consumes dst.
                let old = self.set_cond(
                    *dst,
                    Some(PredDef {
                        op: *op,
                        lhs: *lhs,
                        rhs: *rhs,
                    }),
                );
                self.cond_journal.push((*dst, old));
                self.na_clear_def(*dst);
                if alias {
                    let n = self.graph.handle_const(*dst);
                    info.dst_key = Some(nkey(n));
                } else {
                    info.dst_key = Some(TrackKey::Var(*dst));
                }
            }
            InstKind::Call { .. } => unreachable!("calls are delegated before the scratch borrow"),
            InstKind::FuncAddr { dst, func: target } => {
                self.na_clear_def(*dst);
                let key = if alias {
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                let old = self.set_fptr(key, Some(*target));
                self.fptr_journal.push((key, old));
                info.dst_key = Some(key);
            }
            InstKind::Alloca { dst, .. } => {
                self.na_clear_def(*dst);
                let key = if alias {
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                info.dst_key = Some(key);
            }
            InstKind::Malloc { dst } => {
                self.na_clear_def(*dst);
                let key = if alias {
                    nkey(self.graph.handle_const(*dst))
                } else {
                    TrackKey::Var(*dst)
                };
                info.dst_key = Some(key);
                self.push_heap(HeapObject { key, loc, inst_id });
            }
            InstKind::Free { ptr } => {
                info.use_keys.push((*ptr, self.key_of(*ptr)));
                info.free_key = Some(self.key_of(*ptr));
            }
            InstKind::Memset { ptr } => {
                info.use_keys.push((*ptr, self.key_of(*ptr)));
                info.deref_key = Some(self.key_of(*ptr));
            }
            InstKind::Lock { obj } | InstKind::Unlock { obj } => {
                info.use_keys.push((*obj, self.key_of(*obj)));
                info.lock_key = Some(self.key_of(*obj));
            }
        }
        self.run_checkers_inst(&inst.kind, &info, loc, inst_id);
        self.info_scratch = info;
        Flow::Continue
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_call(
        &mut self,
        func: FuncId,
        inst_id: InstId,
        loc: Loc,
        dst: Option<VarId>,
        callee: Callee,
        args: &[Operand],
        kind: &InstKind,
        conts: &mut Vec<Cont>,
    ) -> Flow {
        let mut info = std::mem::take(&mut self.info_scratch);
        info.clear();
        for a in args {
            if let Operand::Var(v) = a {
                info.use_keys.push((*v, self.key_of(*v)));
            }
        }

        // §7 extension: an indirect call whose function pointer's alias set
        // is pinned to a FuncAddr along this path resolves like a direct
        // call (e.g. `d->ops = my_handler; … d->ops(d);`).
        let effective = match callee {
            Callee::Indirect(v) if self.config.resolve_fptrs => {
                let key = self.key_of(v);
                match self.fptrs.get(&key) {
                    Some(&f) => Callee::Direct(f),
                    None => callee,
                }
            }
            other => other,
        };
        let inline_target = match effective {
            Callee::Direct(f)
                if !self.call_stack.contains(&f)
                    && self.call_stack.len() < self.config.budget.max_call_depth =>
            {
                Some(f)
            }
            _ => None,
        };

        if inline_target.is_none() {
            // Opaque call (external, indirect, recursion cut, depth cap):
            // pointer arguments escape; the result is havoced.
            for a in args {
                if let Operand::Var(v) = a {
                    if self.module.var(*v).ty.is_pointer() {
                        info.escape_keys.push(self.key_of(*v));
                    }
                }
            }
            if let Some(d) = dst {
                self.na_clear_def(d);
                let key = if self.config.alias_mode == AliasMode::PathBased {
                    nkey(self.graph.handle_const(d))
                } else {
                    TrackKey::Var(d)
                };
                info.dst_key = Some(key);
            }
            // Dispatch on the original instruction — no rebuilt `InstKind`
            // (the old path cloned the argument vector just to hand the
            // checkers a value identical to `kind`).
            self.run_checkers_inst(kind, &info, loc, inst_id);
            self.info_scratch = info;
            return Flow::Continue;
        }

        let f = inline_target.unwrap();
        // Report uses (e.g. passing an uninitialized value) before binding.
        self.run_checkers_inst(kind, &info, loc, inst_id);
        self.info_scratch = info;

        // Callee-summary cache: the memoized span runs from parameter
        // binding through the callee's whole exploration (the call-site
        // checker dispatch above stays live — it is common to both).
        let memo_key = if self.memo_enabled() {
            Some(self.memo_key(f, args))
        } else {
            None
        };
        if let Some(key) = &memo_key {
            if let Some(entry) = self.get_memo(key) {
                if entry
                    .segments
                    .first()
                    .is_some_and(|seg| self.replay_fits(&seg.d_stats))
                {
                    self.replay_memo(&entry, func, inst_id, dst, conts);
                    return Flow::EnteredCall;
                }
            }
        }
        // Record only the outermost memoizable call: one recorder at a time
        // keeps segment boundaries unambiguous, and inner calls are covered
        // the next time they are reached directly.
        let record = memo_key.is_some() && self.memo_rec.is_none();
        if record {
            self.memo_rec = Some(MemoRecorder {
                key: memo_key.unwrap(),
                entry_mark: self.full_mark(),
                base_conts: conts.len(),
                seg_base_stats: self.stats.clone(),
                seg_base_alias_ops: self.alias_ops,
                seg_events: Vec::new(),
                segments: Vec::new(),
                suspended: false,
                poisoned: false,
            });
        }

        // HandleCALL (Fig. 6): parameter passing is a sequence of MOVEs.
        // Borrowed straight from the module (its lifetime outlives `self`
        // borrows) — the old copy into a fresh `Vec` was pure churn.
        let module: &Module = self.module;
        let params: &[VarId] = module.function(f).params();
        for (i, &param) in params.iter().enumerate() {
            let arg = args
                .get(i)
                .copied()
                .unwrap_or(Operand::Const(ConstVal::Int(0)));
            self.bind_value(param, Some(arg), loc, inst_id);
        }

        self.push_cont(
            conts,
            Cont {
                func,
                block: inst_id.block,
                next_inst: inst_id.inst + 1,
                dst,
            },
        );
        self.call_stack.push(f);
        let nblocks = self.module.function(f).blocks().len();
        let cyclic = self.cyclic_mask(f);
        let depth = self.frames.len();
        let frame = self.new_frame(f, nblocks, cyclic, depth);
        self.push_frame(frame);
        let entry = self.module.function(f).entry();
        self.exec_block(f, entry, conts);
        self.pop_frame();
        self.call_stack.pop();
        self.pop_cont(conts);

        if record {
            // Close the trailing segment (dead-end exploration after the
            // last return path: budget-relevant, no caller continuation),
            // then publish the recording if it stayed clean.
            self.memo_end_segment(None);
            let m = self.memo_rec.take().expect("memo recorder");
            if !self.exhausted && !m.poisoned {
                self.insert_memo(
                    m.key,
                    MemoEntry {
                        segments: m.segments,
                    },
                );
            }
        }
        Flow::EnteredCall
    }
}

enum Flow {
    Continue,
    EnteredCall,
}

fn nkey(n: NodeId) -> TrackKey {
    TrackKey::Node(n)
}

/// Collapses a tracking key into one hash lane; mirrors the state table's
/// internal lane packing (node ids and variable ids live in disjoint
/// ranges).
fn key_lane(key: TrackKey) -> u64 {
    match key {
        TrackKey::Node(n) => n.index() as u64,
        TrackKey::Var(v) => (1u64 << 32) | v.index() as u64,
    }
}

/// One hash lane per operand; constants and variables in disjoint ranges.
fn operand_lane(op: Operand) -> u64 {
    match op {
        Operand::Const(c) => mix(c.as_int() as u64),
        Operand::Var(v) => mix((1u64 << 63) | v.index() as u64),
    }
}

/// Packs an instruction id into one hash lane.
fn pack_inst(id: InstId) -> u64 {
    ((id.func.index() as u64) << 40) ^ ((id.block.index() as u64) << 20) ^ id.inst as u64
}

/// Fingerprint fact for one predicate definition.
fn cond_fact(v: VarId, p: &PredDef) -> u64 {
    hash4(
        TAG_COND,
        v.index() as u64,
        p.op as u64,
        operand_lane(p.lhs),
        operand_lane(p.rhs),
    )
}

/// Fingerprint fact for heap object `idx` of the frame at `depth`.
fn heap_fact(depth: usize, idx: usize, h: &HeapObject) -> u64 {
    hash4(
        TAG_HEAP,
        ((depth as u64) << 32) | idx as u64,
        key_lane(h.key),
        pack_inst(h.inst_id),
        0,
    )
}

/// Fingerprint fact for the pending continuation at stack index `i`.
fn cont_fact(i: usize, c: &Cont) -> u64 {
    hash4(
        TAG_CONT,
        i as u64,
        c.func.index() as u64,
        ((c.block.index() as u64) << 20) | c.next_inst as u64,
        c.dst.map_or(u64::MAX, |v| v.index() as u64),
    )
}

fn to_smt_op(op: CmpOp) -> SmtOp {
    match op {
        CmpOp::Eq => SmtOp::Eq,
        CmpOp::Ne => SmtOp::Ne,
        CmpOp::Lt => SmtOp::Lt,
        CmpOp::Le => SmtOp::Le,
        CmpOp::Gt => SmtOp::Gt,
        CmpOp::Ge => SmtOp::Ge,
    }
}

fn bin_term(op: pata_ir::BinOp, lhs: Term, rhs: Term) -> Term {
    use pata_ir::BinOp as B;
    use pata_smt::OpaqueOp as O;
    match op {
        B::Add => lhs.add(rhs),
        B::Sub => lhs.sub(rhs),
        B::Mul => lhs.mul(rhs),
        B::Div => Term::opaque(O::Div, lhs, rhs),
        B::Rem => Term::opaque(O::Rem, lhs, rhs),
        B::And => Term::opaque(O::And, lhs, rhs),
        B::Or => Term::opaque(O::Or, lhs, rhs),
        B::Xor => Term::opaque(O::Xor, lhs, rhs),
        B::Shl => Term::opaque(O::Shl, lhs, rhs),
        B::Shr => Term::opaque(O::Shr, lhs, rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;

    /// Forked diamonds with a helper call, a loop, heap traffic and real
    /// bugs on some paths: every fingerprint domain (graph, states,
    /// cond/sym/fptr maps, frames, visit counts, heap objects,
    /// continuations) is exercised, and both fork directions carry
    /// different state.
    const DIAMOND_SRC: &str = r#"
        struct pkt { int len; int mode; int *payload; };

        static int clamp(int n) {
            if (n > 8) { n = 8; }
            if (n < 0) { n = 0; }
            return n;
        }

        static int drain(struct pkt *p) {
            int total = 0;
            int i = 0;
            while (i < 3) {
                if (p->mode > 0) { total = total + clamp(i); } else { total = total - 1; }
                i = i + 1;
            }
            if (p->payload == NULL) { log_warn("drain"); }
            return *p->payload + total;
        }

        static int route(struct pkt *p) {
            int *scratch = malloc(32);
            int acc = 0;
            if (p->len > 0) { acc = clamp(p->len); } else { acc = 1; }
            if (p->mode > 1) { acc = acc + drain(p); } else { acc = acc + 2; }
            if (acc > 4) {
                return acc;
            }
            free(scratch);
            return 0;
        }

        void pkt_entry(struct pkt *p) {
            int r = 0;
            if (p == NULL) { return; }
            r = route(p);
            if (r < 0) { log_warn("entry"); }
        }
    "#;

    fn explore_all(config: &AnalysisConfig, verify_fp: bool) -> (usize, u64, ForkStats) {
        let mut module = pata_cc::compile_one("d.c", DIAMOND_SRC).unwrap();
        let checkers: Vec<Box<dyn Checker>> =
            config.checkers.iter().map(|k| k.instantiate()).collect();
        let roots = crate::collector::mark_interfaces(&mut module);
        assert!(!roots.is_empty());
        let mut candidates = 0;
        let mut paths = 0;
        let mut forks = ForkStats::default();
        for root in roots {
            let mut ex = Explorer::new(&module, config, &checkers, root);
            ex.verify_fp = verify_fp;
            let result = ex.explore();
            candidates += result.candidates.len();
            paths += result.stats.paths_explored;
            forks.merge(&result.fork_stats);
        }
        (candidates, paths, forks)
    }

    /// Satellite of the CoW PR: the fingerprint accumulator cross-check
    /// promoted from `debug_assert` to a real test that runs the slow fold
    /// against the incremental value at every block entry — including in
    /// release mode, where `debug_assert` compiles out (CI runs this test
    /// under `--release` explicitly).
    #[test]
    fn fingerprint_accumulators_match_slow_fold_over_forked_diamonds() {
        let config = AnalysisConfig::default();
        let (candidates, paths, _) = explore_all(&config, true);
        assert!(paths > 8, "diamond corpus should fork: {paths} paths");
        assert!(candidates > 0, "corpus should produce candidate bugs");

        // Same cross-check under clone-based forking: the restore path
        // must leave the accumulators exactly where rollback would.
        let clone_config = AnalysisConfig {
            cow_state: false,
            ..AnalysisConfig::default()
        };
        let (c2, p2, _) = explore_all(&clone_config, true);
        assert_eq!((candidates, paths), (c2, p2));
    }

    /// CoW and clone forking are observationally identical, and the fork
    /// telemetry sees CoW copy fixed-size marks while clone mode copies
    /// the (larger) live state.
    #[test]
    fn cow_and_clone_forking_agree_and_fork_costs_differ() {
        let cow = AnalysisConfig {
            telemetry: true,
            ..AnalysisConfig::default()
        };
        let clone = AnalysisConfig {
            telemetry: true,
            cow_state: false,
            ..AnalysisConfig::default()
        };
        let (c1, p1, f1) = explore_all(&cow, false);
        let (c2, p2, f2) = explore_all(&clone, false);
        assert_eq!((c1, p1), (c2, p2));
        assert_eq!(f1.forks, f2.forks, "same branches explored");
        assert!(f1.forks > 0);
        assert_eq!(
            f1.bytes_copied,
            f1.forks * std::mem::size_of::<FullMark>() as u64,
            "CoW forks copy exactly one fixed-size mark each"
        );
        assert!(
            f2.bytes_copied > f1.bytes_copied,
            "clone forks copy the live state: {} vs {}",
            f2.bytes_copied,
            f1.bytes_copied
        );
        assert!(f1.bytes_shared > 0);
        assert_eq!(f2.bytes_shared, 0);
    }
}
